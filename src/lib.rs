//! Umbrella crate for the DAC 2007 static wear leveling reproduction.
//!
//! This crate re-exports the workspace members so that the examples in
//! `examples/` and the integration tests in `tests/` can exercise the whole
//! stack through one dependency. Library users should depend on the
//! individual crates instead:
//!
//! - [`nand`] — NAND flash device simulator,
//! - [`swl_core`] — the Block Erasing Table and SW Leveler (the paper's
//!   contribution),
//! - [`ftl`] — page-mapping FTL baseline,
//! - [`nftl`] — block-mapping NFTL baseline,
//! - [`flash_trace`] — workload model and trace generation,
//! - [`flash_sim`] — simulation engine and experiment presets.
//!
//! # Example
//!
//! ```
//! use swl_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let geometry = Geometry::mlc2_1gib().with_blocks(256);
//! let device = NandDevice::new(geometry, CellKind::Mlc2.spec());
//! let mut ftl = PageMappedFtl::with_swl(device, FtlConfig::default(), SwlConfig::new(100, 0))?;
//! ftl.write(42, 0xAB)?;
//! assert_eq!(ftl.read(42)?, Some(0xAB));
//! # Ok(())
//! # }
//! ```

pub use flash_sim;
pub use flash_trace;
pub use ftl;
pub use nand;
pub use nftl;
pub use swl_core;

/// Convenient re-exports of the most frequently used types across the stack.
pub mod prelude {
    pub use flash_sim::{SimReport, Simulator};
    pub use flash_trace::{Op, SyntheticTrace, TraceEvent, WorkloadSpec};
    pub use ftl::{FtlConfig, PageMappedFtl};
    pub use nand::{CellKind, Geometry, NandDevice};
    pub use nftl::{BlockMappedNftl, NftlConfig};
    pub use swl_core::{Bet, SwLeveler, SwlConfig};
}
