//! Property-based integration tests: arbitrary operation sequences against
//! shadow models, and SW Leveler invariants under arbitrary erase streams.

use std::collections::HashMap;

use proptest::prelude::*;

use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, FreeBlockLadder, Geometry, NandDevice, VictimIndex};
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::persist::{DualBuffer, PersistError, Snapshot};
use swl_core::{SwLeveler, SwlCleaner, SwlConfig};

fn device(blocks: u32, pages: u32) -> NandDevice {
    NandDevice::new(
        Geometry::new(blocks, pages, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

/// Brute-force replica of the greedy victim scan the incremental
/// [`VictimIndex`] replaces: walk cyclically from `cursor`, return the
/// first block with `invalid > valid`, else the first-in-cyclic-order
/// block with the strictly greatest invalid count (> 0, eligible only).
fn reference_victim(shadow: &[(bool, u32, u32)], cursor: u32) -> Option<u32> {
    let n = shadow.len() as u32;
    let mut fallback: Option<(u32, u32)> = None;
    for step in 0..n {
        let b = (cursor + step) % n;
        let (eligible, invalid, valid) = shadow[b as usize];
        if !eligible || invalid == 0 {
            continue;
        }
        if invalid > valid {
            return Some(b);
        }
        if fallback.is_none_or(|(best, _)| invalid > best) {
            fallback = Some((invalid, b));
        }
    }
    fallback.map(|(_, b)| b)
}

/// An abstract host operation for model-based testing.
#[derive(Debug, Clone)]
enum HostOp {
    Write(u64, u64),
    Read(u64),
    Trim(u64),
}

fn host_ops(max_lba: u64, len: usize) -> impl Strategy<Value = Vec<HostOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..max_lba, any::<u64>()).prop_map(|(lba, data)| HostOp::Write(lba, data)),
            2 => (0..max_lba).prop_map(HostOp::Read),
            1 => (0..max_lba).prop_map(HostOp::Trim),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FTL behaves exactly like a HashMap under arbitrary op sequences
    /// (with trims), including while SWL churns in the background.
    #[test]
    fn ftl_is_a_map(ops in host_ops(150, 400), with_swl in any::<bool>()) {
        let mut ftl = if with_swl {
            PageMappedFtl::with_swl(device(24, 8), FtlConfig::default(), SwlConfig::new(4, 0))
                .unwrap()
        } else {
            PageMappedFtl::new(device(24, 8), FtlConfig::default()).unwrap()
        };
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                HostOp::Write(lba, data) => {
                    // Tiny chips can legitimately over-commit; stop there.
                    if ftl.write(lba, data).is_err() { break; }
                    shadow.insert(lba, data);
                }
                HostOp::Read(lba) => {
                    prop_assert_eq!(ftl.read(lba).unwrap(), shadow.get(&lba).copied());
                }
                HostOp::Trim(lba) => {
                    ftl.trim(lba).unwrap();
                    shadow.remove(&lba);
                }
            }
        }
        for (lba, data) in &shadow {
            prop_assert_eq!(ftl.read(*lba).unwrap(), Some(*data));
        }
    }

    /// NFTL behaves exactly like a HashMap under arbitrary writes/reads.
    #[test]
    fn nftl_is_a_map(ops in host_ops(160, 300), with_swl in any::<bool>()) {
        let mut nftl = if with_swl {
            BlockMappedNftl::with_swl(device(32, 8), NftlConfig::default(), SwlConfig::new(4, 0))
                .unwrap()
        } else {
            BlockMappedNftl::new(device(32, 8), NftlConfig::default()).unwrap()
        };
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                HostOp::Write(lba, data) => {
                    if nftl.write(lba, data).is_err() { break; }
                    shadow.insert(lba, data);
                }
                HostOp::Read(lba) => {
                    prop_assert_eq!(nftl.read(lba).unwrap(), shadow.get(&lba).copied());
                }
                // NFTL has no trim in this implementation; reads instead.
                HostOp::Trim(lba) => {
                    let _ = nftl.read(lba).unwrap();
                }
            }
        }
        for (lba, data) in &shadow {
            prop_assert_eq!(nftl.read(*lba).unwrap(), Some(*data));
        }
    }

    /// After any erase stream, a level() pass with a cooperative cleaner
    /// leaves the unevenness below the threshold (or resets the interval).
    #[test]
    fn leveling_restores_evenness(
        erases in prop::collection::vec(0u32..64, 1..500),
        threshold in 1u64..50,
        k in 0u32..4,
    ) {
        struct Eraser;
        impl SwlCleaner for Eraser {
            type Error = std::convert::Infallible;
            fn erase_block_set(
                &mut self,
                first: u32,
                count: u32,
                erased: &mut Vec<u32>,
            ) -> Result<(), Self::Error> {
                erased.extend(first..first + count);
                Ok(())
            }
        }
        let mut leveler = SwLeveler::new(64, SwlConfig::new(threshold, k)).unwrap();
        for block in erases {
            leveler.note_erase(block);
            leveler.level(&mut Eraser).unwrap();
            prop_assert!(
                !leveler.needs_leveling(),
                "unevenness {:?} still over T={} after level()",
                leveler.unevenness(),
                threshold
            );
        }
    }

    /// ecnt/fcnt bookkeeping matches a recomputation from first principles.
    #[test]
    fn leveler_counters_match_recomputation(
        erases in prop::collection::vec(0u32..256, 0..300),
        k in 0u32..4,
    ) {
        let mut leveler = SwLeveler::new(256, SwlConfig::new(u64::MAX / 2, k)).unwrap();
        for &block in &erases {
            leveler.note_erase(block);
        }
        let expected_fcnt = {
            let mut flags = std::collections::HashSet::new();
            for &b in &erases {
                flags.insert(b >> k);
            }
            flags.len()
        };
        prop_assert_eq!(leveler.ecnt(), erases.len() as u64);
        prop_assert_eq!(leveler.fcnt(), expected_fcnt);
        for &b in &erases {
            prop_assert!(leveler.bet().test((b >> k) as usize));
        }
    }

    /// Snapshots round-trip bit-exactly for arbitrary leveler states, and
    /// any single flipped byte is detected.
    #[test]
    fn snapshot_roundtrip_and_corruption(
        erases in prop::collection::vec(0u32..128, 0..200),
        threshold in 1u64..1000,
        k in 0u32..5,
        flip in any::<prop::sample::Index>(),
    ) {
        let mut leveler = SwLeveler::new(128, SwlConfig::new(threshold, k)).unwrap();
        for block in erases {
            leveler.note_erase(block);
        }
        let snap = Snapshot::capture(&leveler, 42);
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &snap);
        let restored = decoded.into_leveler().unwrap();
        prop_assert_eq!(restored.ecnt(), leveler.ecnt());
        prop_assert_eq!(restored.fcnt(), leveler.fcnt());

        let mut corrupt = bytes.clone();
        let at = flip.index(corrupt.len());
        corrupt[at] ^= 0x5A;
        prop_assert!(Snapshot::decode(&corrupt).is_err(), "flip at {} undetected", at);
    }

    /// The incremental GC victim index agrees with a brute-force linear
    /// rescan after every update in an arbitrary churn sequence — the same
    /// oracle the FTLs assert against in debug builds, here exercised
    /// directly over the full (eligible, invalid, valid) state space.
    #[test]
    fn victim_index_matches_brute_force(
        ops in prop::collection::vec(
            (0u32..96, any::<bool>(), 0u32..24, 0u32..24, 0u32..96),
            1..300,
        ),
    ) {
        let mut index = VictimIndex::new(96);
        let mut shadow = vec![(false, 0u32, 0u32); 96];
        for (key, eligible, invalid, valid, cursor) in ops {
            index.update(key, eligible, invalid, valid);
            shadow[key as usize] = (eligible, invalid, valid);
            prop_assert_eq!(
                index.select(cursor),
                reference_victim(&shadow, cursor),
                "index diverged at cursor {}",
                cursor
            );
        }
    }

    /// The wear-bucket free ladder always pops a block of minimum wear and
    /// tracks membership exactly, under arbitrary push/pop/reposition
    /// interleavings (the full free-pool lifecycle both FTLs drive).
    #[test]
    fn free_ladder_matches_brute_force(
        ops in prop::collection::vec((0u32..4, 0u64..32), 1..300),
    ) {
        let mut ladder = FreeBlockLadder::new();
        let mut shadow: Vec<(u32, u64)> = Vec::new();
        let mut next_id = 0u32;
        for (op, wear) in ops {
            match op {
                // push a fresh block at `wear`
                0 | 1 => {
                    ladder.push(next_id, wear);
                    shadow.push((next_id, wear));
                    next_id += 1;
                }
                // pop: must yield a block whose wear is the shadow minimum
                2 => match ladder.pop_min() {
                    None => prop_assert!(shadow.is_empty(), "ladder empty, shadow not"),
                    Some(block) => {
                        let min = shadow.iter().map(|&(_, w)| w).min();
                        let pos = shadow.iter().position(|&(b, _)| b == block);
                        prop_assert!(pos.is_some(), "popped {} not in shadow", block);
                        let pos = pos.unwrap();
                        prop_assert_eq!(Some(shadow[pos].1), min, "popped non-minimum wear");
                        shadow.remove(pos);
                    }
                },
                // reposition the oldest member to `wear` (SWL erasing a
                // free block in place)
                _ => {
                    if let Some(&(block, old_wear)) = shadow.first() {
                        ladder.reposition(block, old_wear, wear);
                        shadow[0] = (block, wear);
                    }
                }
            }
            prop_assert_eq!(ladder.len(), shadow.len());
        }
        // Drain: what remains must come out in global min-wear order.
        let mut prev = 0u64;
        while let Some(block) = ladder.pop_min() {
            let pos = shadow.iter().position(|&(b, _)| b == block).unwrap();
            let (_, wear) = shadow.remove(pos);
            prop_assert!(wear >= prev, "drain not sorted by wear");
            prev = wear;
        }
        prop_assert!(shadow.is_empty());
    }

    /// The dual buffer always recovers the newest intact generation.
    #[test]
    fn dual_buffer_recovers_newest_intact(
        generations in 1usize..6,
        tear_newest in any::<bool>(),
    ) {
        let mut leveler = SwLeveler::new(32, SwlConfig::new(5, 0)).unwrap();
        let mut nvram = DualBuffer::new();
        for generation in 0..generations {
            leveler.note_erase((generation % 32) as u32);
            nvram.save(&leveler);
        }
        if tear_newest {
            let newest_slot = generations % 2;
            nvram.slot_mut(newest_slot).unwrap().truncate(4);
        }
        let recovered = nvram.recover();
        if generations == 1 && tear_newest {
            prop_assert!(recovered.is_err());
        } else {
            let expected = if tear_newest { generations - 1 } else { generations };
            prop_assert_eq!(recovered.unwrap().sequence(), expected as u64);
        }
    }

    /// A checkpoint torn mid-write in arbitrary ways — byte corruption over
    /// an arbitrary range, truncation at an arbitrary offset, or trailing
    /// garbage — never panics recovery. `recover` yields the previous
    /// generation (one interval stale at most) or a clean
    /// [`PersistError::NoValidSnapshot`], and whatever it yields decodes
    /// into a working leveler.
    #[test]
    fn dual_buffer_survives_arbitrary_torn_writes(
        erases in prop::collection::vec(0u32..32, 0..100),
        start in any::<prop::sample::Index>(),
        len in 1usize..64,
        mode in 0u8..3,
    ) {
        let mut leveler = SwLeveler::new(32, SwlConfig::new(5, 1)).unwrap();
        let mut nvram = DualBuffer::new();
        for &block in &erases {
            leveler.note_erase(block);
        }
        let first_ecnt = leveler.ecnt();
        nvram.save(&leveler); // generation 1 → slot 1
        leveler.note_erase(7);
        nvram.save(&leveler); // generation 2 → slot 0, the newest
        let slot = nvram.slot_mut(0).unwrap();
        let at = start.index(slot.len());
        match mode {
            0 => {
                let end = (at + len).min(slot.len());
                for byte in &mut slot[at..end] {
                    *byte ^= 0xA5;
                }
            }
            1 => slot.truncate(at),
            _ => slot.extend(std::iter::repeat_n(0xA5, len)),
        }
        match nvram.recover() {
            Ok(snapshot) => {
                let sequence = snapshot.sequence();
                prop_assert!(
                    sequence == 1 || sequence == 2,
                    "recovered unknown generation {}",
                    sequence
                );
                let restored = snapshot.into_leveler().unwrap();
                if sequence == 1 {
                    prop_assert_eq!(restored.ecnt(), first_ecnt);
                }
            }
            Err(PersistError::NoValidSnapshot) => {}
            Err(other) => prop_assert!(false, "recover surfaced {:?}", other),
        }
    }
}
