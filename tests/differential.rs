//! Differential oracle for multi-channel striping: a `C`-channel
//! [`StripedLayer`] must behave *exactly* like `C` independent
//! single-channel layers fed the per-channel sub-streams of the same host
//! stream.
//!
//! Striping is pure address routing (`channel = lba % C`, lane page
//! `lba / C`), so with per-channel SWL coordination every lane sees the
//! identical operation sequence a standalone layer would — logical
//! contents, cause-attributed counters, and per-block erase counts must
//! all match lane for lane, and therefore in sum. Global coordination
//! changes *when* SWL runs, so there the oracle is the host's own model of
//! its data: every acked write must read back regardless of leveling
//! schedule.

use std::collections::HashMap;

use flash_sim::{Layer, LayerKind, SimConfig, StripedLayer, SwlCoordination, TranslationLayer};
use nand::{CellKind, CellSpec, ChannelGeometry, Geometry, NandDevice};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

const LANE_BLOCKS: u32 = 32;
const PAGES: u32 = 8;

/// Lane-seed decorrelation stride, mirroring `StripedLayer`'s builder so
/// the oracle lanes get bit-identical levelers.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

fn chip() -> Geometry {
    Geometry::new(LANE_BLOCKS, PAGES, 2048)
}

fn spec() -> CellSpec {
    CellKind::Mlc2.spec().with_endurance(1_000_000)
}

fn lane_seed(base: u64, lane: u32) -> u64 {
    if lane == 0 {
        base
    } else {
        base.wrapping_add(u64::from(lane).wrapping_mul(SEED_STRIDE))
    }
}

enum HostOp {
    Write(u64, u64),
    Read(u64),
}

/// A deterministic hot/cold host stream with interleaved reads: skewed
/// enough to trigger GC and SWL on every lane within a few thousand events.
fn workload(logical_pages: u64, events: usize, seed: u64) -> Vec<HostOp> {
    let mut rng = SplitMix64::new(seed);
    // Touch at most 80% of the logical space so the layers keep enough
    // free headroom to garbage-collect under the update churn.
    let cold = (logical_pages * 4 / 5).max(1);
    let hot = (logical_pages / 8).max(1);
    let mut version = 0u64;
    (0..events)
        .map(|_| {
            let shape = rng.next_u64();
            let lba = if shape.is_multiple_of(4) {
                rng.next_u64() % cold
            } else {
                rng.next_u64() % hot
            };
            if shape.is_multiple_of(5) {
                HostOp::Read(lba)
            } else {
                version += 1;
                HostOp::Write(lba, (lba << 32) | version)
            }
        })
        .collect()
}

/// Drives the striped layer and the lane oracles with the same stream and
/// checks they are indistinguishable.
fn striped_matches_oracles(kind: LayerKind, channels: u32, swl: Option<SwlConfig>) {
    let geometry = ChannelGeometry::new(channels, 1, chip());
    let config = SimConfig::default();
    let mut striped = StripedLayer::build(
        kind,
        geometry,
        spec(),
        swl,
        SwlCoordination::PerChannel,
        &config,
    )
    .unwrap();
    let mut oracles: Vec<Layer> = (0..channels)
        .map(|lane| {
            let lane_swl = swl.map(|base| base.with_seed(lane_seed(base.seed, lane)));
            Layer::build(kind, NandDevice::new(chip(), spec()), lane_swl, &config).unwrap()
        })
        .collect();

    let pages = striped.logical_pages();
    assert_eq!(pages, oracles[0].logical_pages() * u64::from(channels));

    for op in workload(pages, 12_000, 0xD1FF ^ u64::from(channels)) {
        match op {
            HostOp::Write(lba, value) => {
                striped.write(lba, value).unwrap();
                oracles[geometry.channel_of(lba) as usize]
                    .write(geometry.lane_lba(lba), value)
                    .unwrap();
            }
            HostOp::Read(lba) => {
                let got = striped.read(lba).unwrap();
                let want = oracles[geometry.channel_of(lba) as usize]
                    .read(geometry.lane_lba(lba))
                    .unwrap();
                assert_eq!(got, want, "read diverged at lba {lba}");
            }
        }
    }

    // Full logical contents are identical.
    for lba in 0..pages {
        let got = striped.read(lba).unwrap();
        let want = oracles[geometry.channel_of(lba) as usize]
            .read(geometry.lane_lba(lba))
            .unwrap();
        assert_eq!(got, want, "content diverged at lba {lba}");
    }

    // Each lane is bit-identical to its oracle — counters, per-block erase
    // distribution, SWL state — so the array-wide erase sums match exactly.
    let mut striped_erases = 0u64;
    let mut oracle_erases = 0u64;
    for (lane, oracle) in oracles.iter().enumerate() {
        let mirrored = striped.lane(lane as u32);
        assert_eq!(
            mirrored.counters(),
            oracle.counters(),
            "lane {lane} counters diverged"
        );
        assert_eq!(
            mirrored.device().erase_stats(),
            oracle.device().erase_stats(),
            "lane {lane} erase distribution diverged"
        );
        assert_eq!(
            mirrored.swl().map(|s| (s.ecnt(), s.bet().fcnt())),
            oracle.swl().map(|s| (s.ecnt(), s.bet().fcnt())),
            "lane {lane} SWL state diverged"
        );
        striped_erases += mirrored.device().counters().erases;
        oracle_erases += oracle.device().counters().erases;
    }
    assert_eq!(striped_erases, oracle_erases);
}

#[test]
fn ftl_two_channels_match_oracles() {
    striped_matches_oracles(LayerKind::Ftl, 2, Some(SwlConfig::new(8, 0).with_seed(9)));
}

#[test]
fn ftl_four_channels_match_oracles() {
    striped_matches_oracles(LayerKind::Ftl, 4, Some(SwlConfig::new(8, 1).with_seed(9)));
}

#[test]
fn nftl_two_channels_match_oracles() {
    striped_matches_oracles(LayerKind::Nftl, 2, Some(SwlConfig::new(8, 0).with_seed(9)));
}

#[test]
fn nftl_four_channels_match_oracles() {
    striped_matches_oracles(LayerKind::Nftl, 4, None);
}

/// Global coordination reschedules SWL but must never change what the host
/// reads back: the oracle is the host's own write model.
#[test]
fn global_coordination_preserves_host_data() {
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let geometry = ChannelGeometry::new(4, 1, chip());
        let mut striped = StripedLayer::build(
            kind,
            geometry,
            spec(),
            Some(SwlConfig::new(8, 0).with_seed(5)),
            SwlCoordination::Global,
            &SimConfig::default(),
        )
        .unwrap();
        let pages = striped.logical_pages();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in workload(pages, 12_000, 0xC0DE) {
            match op {
                HostOp::Write(lba, value) => {
                    striped.write(lba, value).unwrap();
                    model.insert(lba, value);
                }
                HostOp::Read(lba) => {
                    assert_eq!(striped.read(lba).unwrap(), model.get(&lba).copied());
                }
            }
        }
        for (&lba, &value) in &model {
            assert_eq!(
                striped.read(lba).unwrap(),
                Some(value),
                "{kind:?}: lost write at lba {lba}"
            );
        }
    }
}
