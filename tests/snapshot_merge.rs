//! Bit-for-bit verification of snapshot merge through the served stack.
//!
//! The tentpole guarantee: merging a snapshot into its origin produces
//! exactly *the origin overlaid with the snapshot image* — the snapshot
//! wins every page it images, the origin keeps everything else. That must
//! hold through the full service → engine → lane → FTL path, for every
//! channel-fanout and SWL-coordination combination the simulator supports,
//! while GC and the SW Leveler are live and relocating pinned pages
//! underneath the merge.
//!
//! Three suites:
//!
//! 1. **Merge verifier** over {1, 4} channels × {PerChannel, Global} SWL:
//!    build an origin image, snapshot it, diverge (overwrites, fresh LBAs,
//!    advisory trims), merge, and read the entire logical space back
//!    against the overlay model.
//! 2. **Rollback and release**: `snapshot_clone` returns the served device
//!    to the frozen image exactly; deleting the snapshot afterwards while
//!    the head still shares its pages must not disturb the live contents.
//! 3. **Durability**: an acked `snapshot_create` survives service teardown
//!    and per-lane remount, and the snapshot merges correctly *after* the
//!    remount.

use std::collections::HashMap;

use flash_sim::service::{Service, ServiceConfig};
use flash_sim::{EngineConfig, Layer, LayerKind, SimConfig, SwlCoordination, TranslationLayer};
use ftl::{FtlConfig, SnapshotConfig};
use nand::{CellKind, CellSpec, ChannelGeometry, Geometry};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

fn chip() -> Geometry {
    Geometry::new(32, 8, 2048)
}

fn spec() -> CellSpec {
    CellKind::Mlc2.spec().with_endurance(1_000_000)
}

fn geometry(channels: u32) -> ChannelGeometry {
    ChannelGeometry::new(channels, 1, chip())
}

/// Aggressive leveling so the SW Leveler actually relocates snapshot-pinned
/// cold pages during the divergence phase.
fn swl() -> SwlConfig {
    SwlConfig::new(2, 0).with_seed(11)
}

fn sim_config() -> SimConfig {
    SimConfig {
        ftl: FtlConfig::new()
            .with_overprovision_blocks(2)
            .with_snapshots(SnapshotConfig::new().with_manifest_blocks(2)),
        ..SimConfig::default()
    }
}

fn build(channels: u32, coordination: SwlCoordination) -> Service {
    Service::build(
        LayerKind::Ftl,
        geometry(channels),
        spec(),
        Some(swl()),
        coordination,
        &sim_config(),
        ServiceConfig::default()
            .with_engine(EngineConfig::default().with_threads(2).with_queue_depth(8)),
    )
    .unwrap()
}

/// Drives origin → snapshot → divergence → merge and checks the overlay
/// model over the whole logical space.
fn merge_round_trip(channels: u32, coordination: SwlCoordination) {
    let mut service = build(channels, coordination);
    let logical = service.logical_pages();
    let footprint = (logical / 4).max(8);
    let mut rng = SplitMix64::new(0x5EED ^ u64::from(channels));
    // `flash` is the last value ever written per LBA: service trims are a
    // RAM-only read mask that never reaches the FTL, and the merge clears
    // the mask, so the on-flash value is what resurfaces for any trimmed
    // page the snapshot does not image.
    let mut flash: HashMap<u64, u64> = HashMap::new();
    let mut value = 0u64;
    let mut write = |service: &mut Service, flash: &mut HashMap<u64, u64>, lba: u64| {
        value += 1;
        service.write(lba, &[value]).unwrap();
        flash.insert(lba, value);
    };

    // Origin image: cold data written once, then a tiny hot set hammered —
    // the skew the paper's leveler exists for, so SWL provably interleaves
    // with the pin.
    let hot = (footprint / 8).max(4);
    for lba in 0..footprint {
        write(&mut service, &mut flash, lba);
    }
    for _ in 0..footprint * 20 {
        let lba = if rng.chance(0.9) {
            rng.next_below(hot)
        } else {
            rng.next_below(footprint)
        };
        write(&mut service, &mut flash, lba);
    }
    service.snapshot_create(7).unwrap();
    let snap = flash.clone();

    // Diverge: overwrites inside the image, fresh LBAs beyond it, trims.
    let extra = (footprint / 2).min(logical - footprint).max(1);
    for _ in 0..footprint * 8 {
        match rng.next_below(5) {
            0 => {
                let lba = footprint + rng.next_below(extra);
                write(&mut service, &mut flash, lba);
            }
            1 => service.trim(rng.next_below(footprint), 1).unwrap(),
            _ => {
                let lba = rng.next_below(hot);
                write(&mut service, &mut flash, lba);
            }
        }
    }

    service.snapshot_merge(7).unwrap();

    for lba in 0..logical {
        let got = service.read(lba, 1).unwrap()[0];
        let expected = snap.get(&lba).or(flash.get(&lba)).copied();
        assert_eq!(
            got, expected,
            "×{channels}ch {coordination:?}: merged image diverged at lba {lba}"
        );
    }
    let run = service.finish().unwrap().run;
    assert!(
        run.report.counters.swl_erases > 0,
        "×{channels}ch {coordination:?}: the leveler was meant to be live during the merge \
         workload (swl_erases = {}, gc_erases = {})",
        run.report.counters.swl_erases,
        run.report.counters.gc_erases,
    );
}

#[test]
fn merge_is_origin_overlaid_with_snapshot_1ch_per_channel() {
    merge_round_trip(1, SwlCoordination::PerChannel);
}

#[test]
fn merge_is_origin_overlaid_with_snapshot_1ch_global() {
    merge_round_trip(1, SwlCoordination::Global);
}

#[test]
fn merge_is_origin_overlaid_with_snapshot_4ch_per_channel() {
    merge_round_trip(4, SwlCoordination::PerChannel);
}

#[test]
fn merge_is_origin_overlaid_with_snapshot_4ch_global() {
    merge_round_trip(4, SwlCoordination::Global);
}

/// Rollback restores the frozen image exactly, and deleting the snapshot
/// while the rolled-back head still shares every one of its pages must not
/// perturb the live contents.
#[test]
fn rollback_restores_image_and_delete_keeps_shared_pages() {
    let mut service = build(2, SwlCoordination::PerChannel);
    let logical = service.logical_pages();
    let footprint = (logical / 4).max(8);
    let mut value = 0u64;
    let mut image: HashMap<u64, u64> = HashMap::new();
    for lba in 0..footprint {
        value += 1;
        service.write(lba, &[value]).unwrap();
        image.insert(lba, value);
    }
    service.snapshot_create(3).unwrap();

    // Diverge away from the image, including trims and fresh LBAs.
    for lba in 0..footprint {
        value += 1;
        service.write(lba / 2, &[value]).unwrap();
        service.write(footprint + lba / 2, &[value]).unwrap();
    }
    service.trim(0, footprint as usize / 2).unwrap();

    service.snapshot_clone(3).unwrap();
    for lba in 0..logical {
        let got = service.read(lba, 1).unwrap()[0];
        assert_eq!(
            got,
            image.get(&lba).copied(),
            "rollback diverged from the frozen image at lba {lba}"
        );
    }

    // The head now shares every page with snapshot 3; dropping the
    // snapshot must release only its references, never live data.
    service.snapshot_delete(3).unwrap();
    for lba in 0..footprint {
        let got = service.read(lba, 1).unwrap()[0];
        assert_eq!(
            got,
            image.get(&lba).copied(),
            "deleting the donor snapshot corrupted live lba {lba}"
        );
    }

    // And the device still takes writes afterwards.
    for lba in 0..footprint {
        value += 1;
        service.write(lba, &[value]).unwrap();
        assert_eq!(service.read(lba, 1).unwrap()[0], Some(value));
    }
    service.finish().unwrap();
}

/// An acked `snapshot_create` is durable: after tearing the service down
/// and remounting every lane from its bare device, the snapshot is still
/// there and merging it post-remount yields the overlay image.
#[test]
fn acked_snapshot_survives_remount_and_merges_after() {
    let channels = 2u32;
    let mut service = build(channels, SwlCoordination::PerChannel);
    let logical = service.logical_pages();
    let footprint = (logical / 4).max(8);
    let mut value = 0u64;
    let mut flash: HashMap<u64, u64> = HashMap::new();
    for lba in 0..footprint {
        value += 1;
        service.write(lba, &[value]).unwrap();
        flash.insert(lba, value);
    }
    service.snapshot_create(9).unwrap();
    let snap = flash.clone();
    for lba in 0..footprint / 2 {
        value += 1;
        service.write(lba, &[value]).unwrap();
        flash.insert(lba, value);
        value += 1;
        service.write(footprint + lba, &[value]).unwrap();
        flash.insert(footprint + lba, value);
    }
    service.flush().unwrap();

    let geo = geometry(channels);
    let config = sim_config();
    let mut lanes: Vec<Layer<_>> = service
        .into_devices()
        .into_iter()
        .map(|device| Layer::mount(LayerKind::Ftl, device, &config).unwrap())
        .collect();
    for lane in &mut lanes {
        lane.snapshot_merge(9)
            .expect("acked snapshot must survive remount on every lane");
    }
    for lba in 0..logical {
        let got = lanes[geo.channel_of(lba) as usize]
            .read(geo.lane_lba(lba))
            .unwrap();
        let expected = snap.get(&lba).or(flash.get(&lba)).copied();
        assert_eq!(
            got, expected,
            "post-remount merge diverged at lba {lba}"
        );
    }
}

/// The snapshot verbs work over the served (multi-client, real-thread)
/// front-end: one client snapshots, every client keeps writing, a merge
/// brings the imaged pages back, and duplicate/unknown ids error cleanly
/// through the wire without wedging the server.
#[test]
fn served_clients_drive_snapshot_verbs() {
    let service = build(2, SwlCoordination::PerChannel);
    let logical = service.logical_pages();
    let (server, mut handles) = service.serve(2);
    let mut admin = handles.remove(0);
    let mut writer = handles.remove(0);

    // Origin image via the wire.
    let span = (logical / 8).max(8);
    for lba in 0..span {
        admin.write(lba, vec![10_000 + lba]).unwrap();
    }
    admin.snapshot(1).unwrap();
    assert!(
        matches!(admin.snapshot(1), Err(flash_sim::SimError::Ftl(_))),
        "duplicate snapshot id must be rejected over the wire"
    );
    assert!(
        matches!(admin.merge_snapshot(42), Err(flash_sim::SimError::Ftl(_))),
        "unknown snapshot id must be rejected over the wire"
    );

    // A second client diverges the head while the snapshot pins the image.
    for lba in 0..span {
        writer.write(lba, vec![20_000 + lba]).unwrap();
    }
    for lba in 0..span {
        assert_eq!(writer.read(lba, 1).unwrap()[0], Some(20_000 + lba));
    }

    // Merge from the admin client: the snapshot wins every imaged page.
    admin.merge_snapshot(1).unwrap();
    for lba in 0..span {
        assert_eq!(
            admin.read(lba, 1).unwrap()[0],
            Some(10_000 + lba),
            "served merge must restore the imaged value at lba {lba}"
        );
    }

    // The server keeps serving after the admin verbs: rollback round-trip.
    writer.write(0, vec![77]).unwrap();
    writer.snapshot(2).unwrap();
    writer.write(0, vec![88]).unwrap();
    writer.clone_snapshot(2).unwrap();
    assert_eq!(writer.read(0, 1).unwrap()[0], Some(77));
    writer.delete_snapshot(2).unwrap();
    assert_eq!(writer.read(0, 1).unwrap()[0], Some(77));

    drop(admin);
    drop(writer);
    server.join().finish().unwrap();
}
