//! Cross-crate persistence integration: checkpointing the SW Leveler while
//! a translation layer is running, crashing, and resuming.

use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, Geometry, NandDevice};
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::persist::{DualBuffer, PersistError};
use swl_core::SwlConfig;

fn device() -> NandDevice {
    NandDevice::new(
        Geometry::new(48, 16, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

#[test]
fn ftl_leveler_survives_checkpoint_and_reattach() {
    let mut ftl =
        PageMappedFtl::with_swl(device(), FtlConfig::default(), SwlConfig::new(10, 0)).unwrap();
    for lba in 0..200u64 {
        ftl.write(lba, lba).unwrap();
    }
    for round in 0..5_000u64 {
        ftl.write(400 + round % 4, round).unwrap();
    }
    let before = ftl.swl().unwrap();
    let (ecnt, fcnt, findex) = (before.ecnt(), before.fcnt(), before.findex());

    let mut nvram = DualBuffer::new();
    nvram.save(before);

    let restored = nvram.recover().unwrap().into_leveler().unwrap();
    assert_eq!(restored.ecnt(), ecnt);
    assert_eq!(restored.fcnt(), fcnt);
    assert_eq!(restored.findex(), findex);

    // Reattach to the same FTL and keep going: behaviour stays sane.
    ftl.attach_swl(restored);
    for round in 0..5_000u64 {
        ftl.write(400 + round % 4, round).unwrap();
    }
    assert_eq!(
        ftl.counters().total_erases(),
        ftl.device().counters().erases
    );
}

#[test]
fn nftl_leveler_round_trips_through_nvram() {
    let mut nftl =
        BlockMappedNftl::with_swl(device(), NftlConfig::default(), SwlConfig::new(10, 2)).unwrap();
    for lba in 0..300u64 {
        nftl.write(lba, lba).unwrap();
    }
    for round in 0..4_000u64 {
        nftl.write(500 + round % 3, round).unwrap();
    }
    let mut nvram = DualBuffer::new();
    nvram.save(nftl.swl().unwrap());
    let restored = nvram.recover().unwrap().into_leveler().unwrap();
    assert_eq!(restored.config().k, 2);
    assert_eq!(restored.fcnt(), nftl.swl().unwrap().fcnt());
}

#[test]
fn torn_checkpoint_falls_back_one_generation() {
    let mut ftl =
        PageMappedFtl::with_swl(device(), FtlConfig::default(), SwlConfig::new(10, 0)).unwrap();
    let mut nvram = DualBuffer::new();

    for round in 0..2_000u64 {
        ftl.write(round % 50, round).unwrap();
    }
    nvram.save(ftl.swl().unwrap()); // generation 1 → slot 1
    let gen1_ecnt = ftl.swl().unwrap().ecnt();

    for round in 0..2_000u64 {
        ftl.write(round % 50, round).unwrap();
    }
    nvram.save(ftl.swl().unwrap()); // generation 2 → slot 0

    // Crash mid-write of generation 2.
    nvram.slot_mut(0).unwrap().truncate(7);

    let recovered = nvram.recover().unwrap();
    assert_eq!(recovered.sequence(), 1);
    assert_eq!(recovered.into_leveler().unwrap().ecnt(), gen1_ecnt);
}

#[test]
fn both_slots_corrupt_is_a_clean_error() {
    let ftl =
        PageMappedFtl::with_swl(device(), FtlConfig::default(), SwlConfig::new(10, 0)).unwrap();
    let mut nvram = DualBuffer::new();
    nvram.save(ftl.swl().unwrap());
    nvram.save(ftl.swl().unwrap());
    for slot in 0..2 {
        for byte in nvram.slot_mut(slot).unwrap().iter_mut() {
            *byte = !*byte;
        }
    }
    assert_eq!(nvram.recover().unwrap_err(), PersistError::NoValidSnapshot);
}

#[test]
fn recovered_leveler_with_wrong_chip_size_still_safe() {
    // A snapshot from a 48-block chip attached to a larger chip: the
    // restored leveler only covers its original range. Attaching is the
    // integrator's decision; the leveler itself must stay internally
    // consistent (we verify it by exercising note_erase in range).
    let mut ftl =
        PageMappedFtl::with_swl(device(), FtlConfig::default(), SwlConfig::new(10, 0)).unwrap();
    for round in 0..3_000u64 {
        ftl.write(round % 40, round).unwrap();
    }
    let mut nvram = DualBuffer::new();
    nvram.save(ftl.swl().unwrap());
    let mut restored = nvram.recover().unwrap().into_leveler().unwrap();
    assert_eq!(restored.blocks(), 48);
    restored.note_erase(47);
    assert!(restored.ecnt() > 0);
}
