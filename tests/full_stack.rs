//! Full-stack integration: trace generation → translation layer (± SWL) →
//! simulated chip, audited against a shadow model.

use std::collections::HashMap;

use flash_sim::{Layer, LayerKind, SimConfig, TranslationLayer};
use flash_trace::{Op, SegmentResampler, SyntheticTrace, WorkloadSpec};
use nand::{CellKind, Geometry, NandDevice};
use swl_core::SwlConfig;

fn device(blocks: u32, pages: u32) -> NandDevice {
    NandDevice::new(
        Geometry::new(blocks, pages, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

/// Replays a trace into the layer while mirroring every write in a
/// HashMap; every read must agree with the mirror.
fn audit_against_shadow(mut layer: Layer, events: usize, seed: u64) {
    let spec = WorkloadSpec::paper(layer.logical_pages()).with_seed(seed);
    let trace = spec
        .fill_events()
        .chain(SyntheticTrace::new(spec.clone()))
        .take(events);
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut token = 0u64;
    for event in trace {
        for lba in event.pages() {
            match event.op {
                Op::Write => {
                    token += 1;
                    layer.write(lba, token).unwrap();
                    shadow.insert(lba, token);
                }
                Op::Read => {
                    let got = layer.read(lba).unwrap();
                    assert_eq!(
                        got,
                        shadow.get(&lba).copied(),
                        "read mismatch at lba {lba} after {token} writes"
                    );
                }
            }
        }
    }
    // Post-run: every shadow entry is readable.
    for (&lba, &expected) in &shadow {
        assert_eq!(layer.read(lba).unwrap(), Some(expected), "final lba {lba}");
    }
}

#[test]
fn ftl_matches_shadow_model() {
    let layer = Layer::build(LayerKind::Ftl, device(64, 16), None, &SimConfig::default()).unwrap();
    audit_against_shadow(layer, 30_000, 1);
}

#[test]
fn ftl_with_swl_matches_shadow_model() {
    let layer = Layer::build(
        LayerKind::Ftl,
        device(64, 16),
        Some(SwlConfig::new(8, 1)),
        &SimConfig::default(),
    )
    .unwrap();
    audit_against_shadow(layer, 30_000, 2);
}

#[test]
fn nftl_matches_shadow_model() {
    let layer = Layer::build(LayerKind::Nftl, device(64, 16), None, &SimConfig::default()).unwrap();
    audit_against_shadow(layer, 30_000, 3);
}

#[test]
fn nftl_with_swl_matches_shadow_model() {
    let layer = Layer::build(
        LayerKind::Nftl,
        device(64, 16),
        Some(SwlConfig::new(8, 1)),
        &SimConfig::default(),
    )
    .unwrap();
    audit_against_shadow(layer, 30_000, 4);
}

#[test]
fn erase_attribution_is_exact_across_stack() {
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for swl in [None, Some(SwlConfig::new(6, 0))] {
            let mut layer = Layer::build(kind, device(48, 16), swl, &SimConfig::default()).unwrap();
            let spec = WorkloadSpec::paper(layer.logical_pages()).with_seed(9);
            let mut token = 0u64;
            for event in spec
                .fill_events()
                .chain(SyntheticTrace::new(spec.clone()))
                .take(20_000)
            {
                if event.op == Op::Write {
                    token += 1;
                    layer.write(event.lba, token).unwrap();
                }
            }
            let counters = layer.counters();
            assert_eq!(
                counters.total_erases(),
                layer.device().counters().erases,
                "{kind} swl={} attribution must cover every erase",
                swl.is_some()
            );
        }
    }
}

#[test]
fn resampled_trace_runs_and_levels() {
    let mut layer = Layer::build(
        LayerKind::Nftl,
        device(64, 16),
        Some(SwlConfig::new(6, 0)),
        &SimConfig::default(),
    )
    .unwrap();
    let spec = WorkloadSpec::paper(layer.logical_pages()).with_seed(5);
    let trace = spec
        .fill_events()
        .chain(SegmentResampler::from_spec(spec.clone(), 6))
        .take(60_000);
    let mut token = 0u64;
    for event in trace {
        if event.op == Op::Write {
            token += 1;
            layer.write(event.lba, token).unwrap();
        }
    }
    assert!(
        layer.counters().swl_erases > 0,
        "the leveler should have acted during a long resampled run"
    );
    let swl = layer.swl().unwrap();
    assert!(swl.stats().erases_observed >= layer.counters().total_erases());
}

#[test]
fn latency_accounting_covers_every_host_op() {
    use flash_sim::{Simulator, StopCondition};
    let mut layer = Layer::build(
        LayerKind::Ftl,
        device(48, 16),
        Some(SwlConfig::new(8, 0)),
        &SimConfig::default(),
    )
    .unwrap();
    let spec = WorkloadSpec::paper(layer.logical_pages()).with_seed(6);
    let trace = spec.fill_events().chain(SyntheticTrace::new(spec.clone()));
    let report = Simulator::new()
        .run(&mut layer, trace, StopCondition::events(20_000))
        .unwrap();
    assert_eq!(
        report.write_latency.count(),
        report.counters.host_writes,
        "one latency sample per host write"
    );
    assert_eq!(report.read_latency.count(), report.counters.host_reads);
    // Every write is at least one page program.
    assert!(report.write_latency.quantile(0.0) == 0 || report.write_latency.mean_ns() > 0.0);
    assert!(
        report.write_latency.max_ns() >= layer.device().spec().timing.program_ns,
        "slowest write must cost at least one program"
    );
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut layer = Layer::build(
            LayerKind::Ftl,
            device(48, 16),
            Some(SwlConfig::new(8, 0).with_seed(3)),
            &SimConfig::default(),
        )
        .unwrap();
        let spec = WorkloadSpec::paper(layer.logical_pages()).with_seed(11);
        let mut token = 0u64;
        for event in spec
            .fill_events()
            .chain(SegmentResampler::from_spec(spec.clone(), 12))
            .take(25_000)
        {
            if event.op == Op::Write {
                token += 1;
                layer.write(event.lba, token).unwrap();
            }
        }
        (
            layer.device().erase_counts(),
            layer.counters(),
            layer.swl().unwrap().stats(),
        )
    };
    let (a_counts, a_counters, a_stats) = run();
    let (b_counts, b_counters, b_stats) = run();
    assert_eq!(a_counts, b_counts);
    assert_eq!(a_counters, b_counters);
    assert_eq!(a_stats, b_stats);
}
