//! Crash-consistency harness: replay a GC/SWL-heavy workload, cut power at
//! operation boundaries, remount, and check the recovery contract.
//!
//! The contract, for every cut point:
//!
//! 1. **No acked-write loss** — after remount every logical page reads the
//!    last value whose write returned `Ok`, except the single page whose
//!    write was in flight at the cut, which may read the new (unacked)
//!    value instead.
//! 2. **Bounded checkpoint staleness** — the SW Leveler recovered through
//!    [`DualBuffer::recover`] carries the `ecnt` of the newest or the
//!    previous checkpoint (at most one interval stale), even when the
//!    newest NVRAM slot was itself torn by the crash.
//! 3. **Wear leveling resumes** — after reattaching the recovered leveler
//!    the workload continues, and the unevenness level stays below the
//!    threshold `T` once leveling has run.
//!
//! Exhaustive all-cut-points sweeps live in the `crashmc` bench binary;
//! here each configuration strides across the op space and proptest
//! samples random (cut, torn) pairs so CI time stays bounded.

use std::collections::HashMap;

use flash_sim::{Layer, LayerKind, SimConfig, SimError, TranslationLayer};
use ftl::FtlError;
use nand::{CellKind, FaultPlan, Geometry, NandDevice, NandError};
use nftl::NftlError;
use proptest::prelude::*;
use swl_core::persist::{DualBuffer, PersistError};
use swl_core::{SwLeveler, SwlConfig};

const BLOCKS: u32 = 24;
const PAGES: u32 = 8;
const ROUNDS: u64 = 10;
/// Acked writes between SW Leveler checkpoints (one "interval").
const SAVE_EVERY: u64 = 25;

fn device() -> NandDevice {
    NandDevice::new(
        Geometry::new(BLOCKS, PAGES, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

fn swl_config() -> SwlConfig {
    SwlConfig::new(8, 1).with_seed(7)
}

fn is_power_cut(e: &SimError) -> bool {
    matches!(
        e,
        SimError::Ftl(FtlError::Device(NandError::PowerCut))
            | SimError::Nftl(NftlError::Device(NandError::PowerCut))
    )
}

fn attach(layer: &mut Layer, leveler: SwLeveler) {
    match layer {
        Layer::Ftl(l) => l.attach_swl(leveler),
        Layer::Nftl(l) => l.attach_swl(leveler),
    }
}

/// Tracks what the host believes about its own data across the crash.
#[derive(Default)]
struct HostModel {
    acked: HashMap<u64, u64>,
    in_flight: Option<(u64, u64)>,
}

/// Replays the deterministic workload until it finishes or the power cut
/// fires. Mixes sequential cold writes with a hot overwrite set so GC,
/// merges, and SWL-Procedure all run. Returns `Ok(true)` when a power cut
/// ended the run.
fn replay(
    layer: &mut Layer,
    nvram: &mut DualBuffer,
    model: &mut HostModel,
    saved_ecnts: &mut Vec<u64>,
) -> Result<bool, SimError> {
    let lbas = layer.logical_pages().min(28);
    let mut acked_since_save = 0u64;
    for round in 0..ROUNDS {
        for step in 0..lbas {
            // Two hot writes for every cold one churns the same few pages
            // hard enough to keep the Cleaner and SWL busy.
            let lba = if step % 3 == 0 {
                step
            } else {
                (round + step) % 4
            };
            let value = (round << 32) | (step << 8) | lba;
            model.in_flight = Some((lba, value));
            match layer.write(lba, value) {
                Ok(()) => {
                    model.acked.insert(lba, value);
                    acked_since_save += 1;
                    if layer.swl().is_some() && acked_since_save >= SAVE_EVERY {
                        let swl = layer.swl().unwrap();
                        nvram.save(swl);
                        saved_ecnts.push(swl.ecnt());
                        acked_since_save = 0;
                    }
                }
                Err(e) if is_power_cut(&e) => return Ok(true),
                Err(e) => return Err(e),
            }
        }
    }
    Ok(false)
}

/// Counts the fault-visible operations (programs + erases) of the full
/// workload, so cut points can be chosen to land inside it.
fn total_ops(kind: LayerKind, with_swl: bool) -> u64 {
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1)),
        ..SimConfig::default()
    };
    let swl = with_swl.then(swl_config);
    let mut layer = Layer::build(kind, device(), swl, &cfg).expect("baseline build");
    let mut nvram = DualBuffer::new();
    let mut model = HostModel::default();
    let mut saved = Vec::new();
    let cut = replay(&mut layer, &mut nvram, &mut model, &mut saved).expect("baseline replay");
    assert!(!cut, "baseline run must not see a power cut");
    layer.device().fault_ops()
}

/// One full crash/remount/verify cycle at `cut_at`.
fn run_cut_point(kind: LayerKind, with_swl: bool, cut_at: u64, torn: bool) {
    let ctx = format!("{kind} swl={with_swl} cut_at={cut_at} torn={torn}");
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
        ..SimConfig::default()
    };
    let swl = with_swl.then(swl_config);
    let mut layer = Layer::build(kind, device(), swl, &cfg).expect("build");
    let mut nvram = DualBuffer::new();
    let mut model = HostModel::default();
    let mut saved_ecnts = Vec::new();
    let cut = replay(&mut layer, &mut nvram, &mut model, &mut saved_ecnts)
        .unwrap_or_else(|e| panic!("{ctx}: workload failed: {e}"));
    assert!(cut, "{ctx}: cut point must land inside the workload");

    // -- power comes back --
    let mut chip = layer.into_device();
    assert!(chip.power_is_cut(), "{ctx}: device must report the cut");
    chip.power_cycle();
    // Layer::mount applies no fault plan, which leaves the chip's
    // grown-bad state untouched instead of re-arming a new plan.
    let mut layer = Layer::mount(kind, chip, &SimConfig::default())
        .unwrap_or_else(|e| panic!("{ctx}: remount failed: {e}"));

    if with_swl {
        // Model a checkpoint torn by the same crash: clobber one NVRAM
        // slot. recover() must fall back, never panic.
        if torn {
            if let Some(slot) = nvram.slot_mut(0) {
                let cut_len = slot.len() / 2;
                slot.truncate(cut_len);
            }
        }
        match nvram.recover() {
            Ok(snapshot) => {
                let leveler = snapshot
                    .into_leveler()
                    .unwrap_or_else(|e| panic!("{ctx}: snapshot decode failed: {e}"));
                let window = saved_ecnts.iter().rev().take(2);
                assert!(
                    window.clone().any(|&e| e == leveler.ecnt()),
                    "{ctx}: recovered ecnt {} is more than one checkpoint stale \
                     (last saves: {:?})",
                    leveler.ecnt(),
                    saved_ecnts.iter().rev().take(2).collect::<Vec<_>>(),
                );
                attach(&mut layer, leveler);
            }
            Err(PersistError::NoValidSnapshot) => {
                assert!(
                    saved_ecnts.len() <= 1 && torn || saved_ecnts.is_empty(),
                    "{ctx}: valid checkpoints existed but none recovered"
                );
                attach(&mut layer, SwLeveler::new(BLOCKS, swl_config()).unwrap());
            }
            Err(e) => panic!("{ctx}: recover failed: {e}"),
        }
    }

    // 1. Acked-write durability.
    for (&lba, &value) in &model.acked {
        let got = layer
            .read(lba)
            .unwrap_or_else(|e| panic!("{ctx}: read({lba}) failed after remount: {e}"));
        let in_flight_ok =
            matches!(model.in_flight, Some((l, v)) if l == lba && got == Some(v));
        assert!(
            got == Some(value) || in_flight_ok,
            "{ctx}: lba {lba} lost acked value {value:#x}, read {got:?}"
        );
    }

    // 3. The stack keeps working and wear leveling resumes bounded.
    let lbas = layer.logical_pages().min(28);
    for round in 0..3u64 {
        for lba in 0..lbas {
            let value = 0xCAFE_0000 | (round << 8) | lba;
            layer
                .write(lba, value)
                .unwrap_or_else(|e| panic!("{ctx}: post-recovery write failed: {e}"));
        }
    }
    if with_swl {
        let swl = layer.swl().expect("leveler attached");
        assert!(
            !swl.needs_leveling(),
            "{ctx}: unevenness {:?} still at or above T={} after resume",
            swl.unevenness(),
            swl.config().threshold,
        );
    }
}

/// Strided sweep: every configuration, cut points spread across the whole
/// op space, both torn and clean cuts.
#[test]
fn power_cut_sweep_preserves_acked_writes() {
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for with_swl in [false, true] {
            let total = total_ops(kind, with_swl);
            assert!(total > 50, "{kind} swl={with_swl}: workload too small");
            let step = (total / 24).max(1);
            for torn in [false, true] {
                let mut cut_at = if torn { step / 2 } else { 0 };
                while cut_at < total {
                    run_cut_point(kind, with_swl, cut_at, torn);
                    cut_at += step;
                }
            }
        }
    }
}

/// A cut during the very first operations: nothing acked yet, no
/// checkpoint on NVRAM — remount must still come up clean.
#[test]
fn power_cut_before_first_checkpoint_recovers_fresh() {
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for cut_at in 0..4 {
            run_cut_point(kind, true, cut_at, true);
        }
    }
}

proptest! {
    /// Random (layer, cut, torn) samples fill the gaps the strided sweep
    /// leaves between its lattice points.
    #[test]
    fn random_cut_points_recover(
        seed in any::<u64>(),
        torn in any::<bool>(),
        ftl_side in any::<bool>(),
        with_swl in any::<bool>(),
    ) {
        let kind = if ftl_side { LayerKind::Ftl } else { LayerKind::Nftl };
        let total = total_ops(kind, with_swl);
        run_cut_point(kind, with_swl, seed % total, torn);
    }
}

// ---------------------------------------------------------------------------
// Multi-channel: power cuts mid-stripe on a striped array.
// ---------------------------------------------------------------------------

use flash_sim::{StripedLayer, SwlCoordination};
use nand::ChannelGeometry;

/// Blocks per lane of the striped crash runs.
const LANE_BLOCKS: u32 = 16;
/// Host request size (pages): every request spans all lanes, so any cut
/// inside one lands mid-stripe.
const SPAN: u64 = 4;

fn striped_geometry(channels: u32) -> ChannelGeometry {
    ChannelGeometry::new(channels, 1, Geometry::new(LANE_BLOCKS, PAGES, 2048))
}

fn striped_build(kind: LayerKind, channels: u32, cfg: &SimConfig) -> StripedLayer {
    StripedLayer::build(
        kind,
        striped_geometry(channels),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
        Some(swl_config()),
        SwlCoordination::PerChannel,
        cfg,
    )
    .expect("striped build")
}

/// The deterministic mid-stripe workload, as `(lba, value)` pairs: rounds
/// of span-sized hot/cold host requests.
fn striped_workload(logical_pages: u64) -> Vec<(u64, u64)> {
    let spans = (logical_pages / SPAN).min(8);
    let mut ops = Vec::new();
    for round in 0..ROUNDS {
        for i in 0..spans {
            let base = (if i % 3 == 0 { i } else { (round + i) % 2 }) * SPAN;
            for off in 0..SPAN {
                ops.push((base + off, (round << 32) | (i << 16) | (off << 8) | 0xA5));
            }
        }
    }
    ops
}

/// Replays the workload on the striped array until done or cut;
/// `Ok(true)` on a cut.
fn striped_replay(
    striped: &mut StripedLayer,
    model: &mut HostModel,
) -> Result<bool, SimError> {
    for (lba, value) in striped_workload(striped.logical_pages()) {
        model.in_flight = Some((lba, value));
        match striped.write(lba, value) {
            Ok(()) => {
                model.acked.insert(lba, value);
            }
            Err(e) if is_power_cut(&e) => return Ok(true),
            Err(e) => return Err(e),
        }
    }
    Ok(false)
}

/// Op count of the full striped workload (max over lanes, so every cut
/// point below it fires on some lane).
fn striped_total_ops(kind: LayerKind, channels: u32) -> u64 {
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1)),
        ..SimConfig::default()
    };
    let mut striped = striped_build(kind, channels, &cfg);
    let mut model = HostModel::default();
    let cut = striped_replay(&mut striped, &mut model).expect("striped baseline");
    assert!(!cut, "striped baseline must not see a power cut");
    striped
        .lanes()
        .iter()
        .map(|lane| lane.device().fault_ops())
        .max()
        .unwrap_or(0)
}

/// One striped crash/remount/verify cycle: after a mid-stripe cut, every
/// acked sub-write on every channel must survive, and the array must keep
/// serving writes.
fn run_striped_cut_point(kind: LayerKind, channels: u32, cut_at: u64, torn: bool) {
    let ctx = format!("{kind}\u{d7}{channels}ch cut_at={cut_at} torn={torn}");
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
        ..SimConfig::default()
    };
    let mut striped = striped_build(kind, channels, &cfg);
    let mut model = HostModel::default();
    let cut = striped_replay(&mut striped, &mut model)
        .unwrap_or_else(|e| panic!("{ctx}: workload failed: {e}"));
    assert!(cut, "{ctx}: cut point must land inside the workload");

    // -- power comes back on the shared rail: the cut consumed on one lane
    // is consumed for the whole array --
    let mut devices = striped.into_devices();
    assert!(
        devices.iter().any(|d| d.power_is_cut()),
        "{ctx}: some lane must report the cut"
    );
    for device in &mut devices {
        device.disarm_power_cut();
        device.power_cycle();
    }
    let mut striped = StripedLayer::mount(
        kind,
        striped_geometry(channels),
        devices,
        SwlCoordination::PerChannel,
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{ctx}: remount failed: {e}"));

    for (&lba, &value) in &model.acked {
        let got = striped
            .read(lba)
            .unwrap_or_else(|e| panic!("{ctx}: read({lba}) failed after remount: {e}"));
        let in_flight_ok =
            matches!(model.in_flight, Some((l, v)) if l == lba && got == Some(v));
        assert!(
            got == Some(value) || in_flight_ok,
            "{ctx}: lba {lba} lost acked value {value:#x}, read {got:?}"
        );
    }

    let lbas = striped.logical_pages().min(SPAN * 8);
    for round in 0..2u64 {
        for lba in 0..lbas {
            striped
                .write(lba, 0xD00D_0000 | (round << 8) | lba)
                .unwrap_or_else(|e| panic!("{ctx}: post-recovery write failed: {e}"));
        }
    }
}

/// Strided mid-stripe sweep over the 2-channel array, both layers, torn
/// and clean cuts.
#[test]
fn striped_power_cuts_preserve_acked_writes_on_every_channel() {
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let total = striped_total_ops(kind, 2);
        assert!(total > 50, "{kind}: striped workload too small");
        let step = (total / 12).max(1);
        for torn in [false, true] {
            let mut cut_at = if torn { step / 2 } else { 0 };
            while cut_at < total {
                run_striped_cut_point(kind, 2, cut_at, torn);
                cut_at += step;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Service write cache: power cuts with the RAM cache interposed.
// ---------------------------------------------------------------------------

use flash_sim::service::cache::CacheConfig;
use flash_sim::{EngineConfig, Service, ServiceConfig};
use hotid::HotDataConfig;

/// Host requests between service `flush` barriers — the durability ack
/// boundary of the cached runs.
const SERVICE_FLUSH_EVERY: u64 = 4;
/// RAM write-cache capacity (pages): small enough that evictions and
/// watermark batches fire between flushes.
const SERVICE_CACHE_PAGES: usize = 8;

fn service_build(kind: LayerKind, cfg: &SimConfig) -> Service {
    // Eager admission so the small cache absorbs the workload's hot spans
    // within a couple of rewrites.
    let hot = HotDataConfig {
        hot_threshold: 2,
        ..HotDataConfig::default()
    };
    Service::build(
        kind,
        striped_geometry(2),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
        Some(swl_config()),
        SwlCoordination::PerChannel,
        cfg,
        ServiceConfig::default()
            .with_engine(EngineConfig::default().with_threads(2).with_queue_depth(4))
            .with_cache(CacheConfig::sized(SERVICE_CACHE_PAGES).with_hot(hot)),
    )
    .expect("service build")
}

/// Host model of the cached runs: `acked` holds writes covered by a
/// successful `flush` (these MUST survive a cut), `pending` the writes
/// acked only as *accepted* since then (these may vanish).
#[derive(Default)]
struct ServiceModel {
    acked: HashMap<u64, u64>,
    pending: Vec<(u64, u64)>,
}

impl ServiceModel {
    fn ack_pending(&mut self) {
        for (lba, value) in self.pending.drain(..) {
            self.acked.insert(lba, value);
        }
    }
}

/// Replays the mid-stripe workload through the cache-enabled service,
/// flushing every [`SERVICE_FLUSH_EVERY`] requests; `Ok(true)` on a cut.
fn service_replay(service: &mut Service, model: &mut ServiceModel) -> Result<bool, SimError> {
    let spans = (service.logical_pages() / SPAN).min(8);
    let mut since_flush = 0u64;
    for round in 0..ROUNDS {
        for i in 0..spans {
            let base = (if i % 3 == 0 { i } else { (round + i) % 2 }) * SPAN;
            let values: Vec<u64> = (0..SPAN)
                .map(|off| (round << 32) | (i << 16) | (off << 8) | 0x5C)
                .collect();
            for (off, &value) in values.iter().enumerate() {
                model.pending.push((base + off as u64, value));
            }
            match service.write(base, &values) {
                Ok(()) => {}
                Err(e) if is_power_cut(&e) => return Ok(true),
                Err(e) => return Err(e),
            }
            since_flush += 1;
            if since_flush >= SERVICE_FLUSH_EVERY {
                since_flush = 0;
                match service.flush() {
                    Ok(()) => model.ack_pending(),
                    Err(e) if is_power_cut(&e) => return Ok(true),
                    Err(e) => return Err(e),
                }
            }
        }
    }
    match service.flush() {
        Ok(()) => model.ack_pending(),
        Err(e) if is_power_cut(&e) => return Ok(true),
        Err(e) => return Err(e),
    }
    Ok(false)
}

/// Device-op count of the full cached workload (max over lanes). The cache
/// absorbs hot rewrites, so this is smaller than the cache-less runs.
fn service_total_ops(kind: LayerKind) -> u64 {
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1)),
        ..SimConfig::default()
    };
    let mut service = service_build(kind, &cfg);
    let mut model = ServiceModel::default();
    let cut = service_replay(&mut service, &mut model).expect("service baseline");
    assert!(!cut, "service baseline must not see a power cut");
    service
        .into_devices()
        .iter()
        .map(|device| device.fault_ops())
        .max()
        .unwrap_or(0)
}

/// One cached crash/remount/verify cycle. Teardown drops the RAM cache —
/// exactly what a power cut does to one — so un-acked writes may vanish;
/// flush-acked writes must not. Returns how many un-acked writes did
/// vanish, so the caller can assert the lossy side of the contract was
/// actually exercised rather than vacuously true.
fn run_service_cut_point(kind: LayerKind, cut_at: u64, torn: bool) -> u64 {
    let ctx = format!("{kind} cache cut_at={cut_at} torn={torn}");
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
        ..SimConfig::default()
    };
    let mut service = service_build(kind, &cfg);
    let mut model = ServiceModel::default();
    let cut = service_replay(&mut service, &mut model)
        .unwrap_or_else(|e| panic!("{ctx}: workload failed: {e}"));
    assert!(cut, "{ctx}: cut point must land inside the workload");

    // -- power comes back on the shared rail; the RAM cache is gone --
    let mut devices = service.into_devices();
    assert!(
        devices.iter().any(|d| d.power_is_cut()),
        "{ctx}: some lane must report the cut"
    );
    for device in &mut devices {
        device.disarm_power_cut();
        device.power_cycle();
    }
    let geometry = striped_geometry(2);
    let mut lanes = Vec::with_capacity(devices.len());
    for device in devices {
        lanes.push(
            Layer::mount(kind, device, &SimConfig::default())
                .unwrap_or_else(|e| panic!("{ctx}: remount failed: {e}")),
        );
    }

    let mut candidates: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut last_pending: HashMap<u64, u64> = HashMap::new();
    for &(lba, value) in &model.pending {
        candidates.entry(lba).or_default().push(value);
        last_pending.insert(lba, value);
    }
    for (&lba, &value) in &model.acked {
        let lane = geometry.channel_of(lba) as usize;
        let got = lanes[lane]
            .read(geometry.lane_lba(lba))
            .unwrap_or_else(|e| panic!("{ctx}: read({lba}) failed after remount: {e}"));
        let in_flight_ok = candidates
            .get(&lba)
            .is_some_and(|values| values.iter().any(|&v| got == Some(v)));
        assert!(
            got == Some(value) || in_flight_ok,
            "{ctx}: lba {lba} lost flush-acked value {value:#x}, read {got:?}"
        );
    }
    let mut vanished = 0u64;
    for (&lba, &value) in &last_pending {
        let lane = geometry.channel_of(lba) as usize;
        if let Ok(got) = lanes[lane].read(geometry.lane_lba(lba)) {
            if got != Some(value) {
                vanished += 1;
            }
        }
    }

    let lbas = (lanes[0].logical_pages() * 2).min(SPAN * 8);
    for round in 0..2u64 {
        for lba in 0..lbas {
            let lane = geometry.channel_of(lba) as usize;
            lanes[lane]
                .write(geometry.lane_lba(lba), 0xFACE_0000 | (round << 8) | lba)
                .unwrap_or_else(|e| panic!("{ctx}: post-recovery write failed: {e}"));
        }
    }
    vanished
}

/// Strided sweep with the write cache interposed: flush-acked writes
/// survive every cut point on both layers, and across the sweep some
/// un-acked cached writes really vanish (the lossy side of the ack
/// contract, asserted rather than assumed).
#[test]
fn service_cache_cuts_preserve_flush_acked_writes() {
    let mut vanished = 0u64;
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let total = service_total_ops(kind);
        assert!(total > 50, "{kind}: cached workload too small");
        let step = (total / 10).max(1);
        for torn in [false, true] {
            let mut cut_at = if torn { step / 2 } else { 0 };
            while cut_at < total {
                vanished += run_service_cut_point(kind, cut_at, torn);
                cut_at += step;
            }
        }
    }
    assert!(
        vanished > 0,
        "no un-acked cached write vanished across the sweep — the lossy side \
         of the durability contract went unexercised"
    );
}

/// At one channel the striped crash cycle is the plain one: the same
/// workload, cut point, and remount must leave bit-identical contents,
/// counters, and wear on a standalone layer of the lane geometry.
#[test]
fn single_channel_striped_crash_matches_plain() {
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let total = striped_total_ops(kind, 1);
        for (frac, torn) in [(3u64, false), (2, true)] {
            let cut_at = total / frac;
            let ctx = format!("{kind} cut_at={cut_at} torn={torn}");
            let cfg = SimConfig {
                fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
                ..SimConfig::default()
            };
            let mut striped = striped_build(kind, 1, &cfg);
            let mut plain = Layer::build(
                kind,
                NandDevice::new(
                    Geometry::new(LANE_BLOCKS, PAGES, 2048),
                    CellKind::Mlc2.spec().with_endurance(u32::MAX),
                ),
                Some(swl_config()),
                &cfg,
            )
            .expect("plain build");

            let mut cuts = (false, false);
            for (lba, value) in striped_workload(striped.logical_pages()) {
                if !cuts.0 {
                    match striped.write(lba, value) {
                        Ok(()) => {}
                        Err(e) if is_power_cut(&e) => cuts.0 = true,
                        Err(e) => panic!("{ctx}: striped write failed: {e}"),
                    }
                }
                if !cuts.1 {
                    match plain.write(lba, value) {
                        Ok(()) => {}
                        Err(e) if is_power_cut(&e) => cuts.1 = true,
                        Err(e) => panic!("{ctx}: plain write failed: {e}"),
                    }
                }
            }
            assert_eq!(cuts.0, cuts.1, "{ctx}: cut fired on one stack only");

            let mut devices = striped.into_devices();
            for device in &mut devices {
                device.power_cycle();
            }
            let mut striped = StripedLayer::mount(
                kind,
                striped_geometry(1),
                devices,
                SwlCoordination::PerChannel,
                &SimConfig::default(),
            )
            .expect("striped remount");
            let mut chip = plain.into_device();
            chip.power_cycle();
            let mut plain =
                Layer::mount(kind, chip, &SimConfig::default()).expect("plain remount");

            for lba in 0..striped.logical_pages() {
                assert_eq!(
                    striped.read(lba).expect("striped read"),
                    plain.read(lba).expect("plain read"),
                    "{ctx}: contents diverged at lba {lba}"
                );
            }
            assert_eq!(
                striped.lane(0).counters(),
                plain.counters(),
                "{ctx}: counters diverged"
            );
            assert_eq!(
                striped.lane(0).device().erase_stats(),
                plain.device().erase_stats(),
                "{ctx}: wear diverged"
            );
        }
    }
}
