//! Endurance-level integration checks: the headline claims of the paper
//! hold on the scaled-down stack, and basic physics (monotonicity in
//! endurance) holds in the simulator.

use flash_sim::experiments::{
    first_failure_run, horizon_run, lifetime_run, ExperimentScale, NANOS_PER_YEAR,
};
use flash_sim::LayerKind;
use swl_core::SwlConfig;

fn quick() -> ExperimentScale {
    ExperimentScale::quick()
}

#[test]
fn swl_extends_first_failure_of_both_layers() {
    let scale = quick();
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let base = first_failure_run(kind, None, &scale).unwrap();
        let swl = first_failure_run(
            kind,
            Some(SwlConfig::new(scale.scaled_threshold(100), 0).with_seed(scale.seed)),
            &scale,
        )
        .unwrap();
        let base_years = base.first_failure.expect("baseline fails").years();
        let swl_years = swl.first_failure.expect("+SWL fails").years();
        assert!(
            swl_years > base_years * 1.05,
            "{kind}: expected ≥5% extension, got {base_years:.4} → {swl_years:.4}"
        );
    }
}

#[test]
fn ftl_outlives_nftl_baseline() {
    // The paper's Figure 5: fine-grained mapping amortises erases far
    // better, so baseline FTL lives much longer than baseline NFTL.
    let scale = quick();
    let ftl = first_failure_run(LayerKind::Ftl, None, &scale).unwrap();
    let nftl = first_failure_run(LayerKind::Nftl, None, &scale).unwrap();
    let ftl_years = ftl.first_failure.unwrap().years();
    let nftl_years = nftl.first_failure.unwrap().years();
    assert!(
        ftl_years > nftl_years * 1.5,
        "FTL should clearly outlive NFTL: {ftl_years:.4} vs {nftl_years:.4}"
    );
}

#[test]
fn first_failure_monotone_in_endurance() {
    let mut scale = quick();
    scale.endurance = 128;
    let low = first_failure_run(LayerKind::Nftl, None, &scale).unwrap();
    scale.endurance = 256;
    let high = first_failure_run(LayerKind::Nftl, None, &scale).unwrap();
    assert!(
        high.first_failure.unwrap().years() > low.first_failure.unwrap().years(),
        "more endurance must mean later failure"
    );
}

#[test]
fn swl_reduces_erase_deviation_over_horizon() {
    let scale = quick();
    let horizon = (0.05 * NANOS_PER_YEAR) as u64;
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let base = horizon_run(kind, None, &scale, horizon).unwrap();
        let swl = horizon_run(
            kind,
            Some(SwlConfig::new(scale.scaled_threshold(100), 0).with_seed(scale.seed)),
            &scale,
            horizon,
        )
        .unwrap();
        assert!(
            swl.erase_stats.std_dev < base.erase_stats.std_dev,
            "{kind}: dev must shrink ({:.1} → {:.1})",
            base.erase_stats.std_dev,
            swl.erase_stats.std_dev
        );
        assert!(
            swl.erase_stats.max <= base.erase_stats.max,
            "{kind}: max must not grow"
        );
    }
}

#[test]
fn swl_overhead_stays_bounded() {
    // Figures 6/7 shape: single-digit-percent extra erases; extra copies
    // bounded (FTL pays more in relative terms than NFTL).
    let scale = quick();
    let horizon = (0.04 * NANOS_PER_YEAR) as u64;
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let base = horizon_run(kind, None, &scale, horizon).unwrap();
        let swl = horizon_run(
            kind,
            Some(SwlConfig::new(scale.scaled_threshold(1000), 0).with_seed(scale.seed)),
            &scale,
            horizon,
        )
        .unwrap();
        let erase_overhead = swl.erase_overhead_vs(&base).unwrap();
        assert!(
            erase_overhead < 0.25,
            "{kind}: erase overhead at T=1000 should be modest, got {erase_overhead:.3}"
        );
    }
}

#[test]
fn bad_block_management_extends_usable_life() {
    // With retirement, the device outlives (or equals) its first failure,
    // and SWL extends the usable lifetime too.
    let scale = quick();
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let base = lifetime_run(kind, None, &scale).unwrap();
        assert!(base.retired_blocks > 0, "{kind}: blocks must retire");
        let ff = base.first_failure_years.expect("first failure recorded");
        assert!(
            base.years >= ff,
            "{kind}: lifetime {:.4} must not precede first failure {ff:.4}",
            base.years
        );
        let swl = lifetime_run(kind, Some(scale.swl_config(100, 0)), &scale).unwrap();
        assert!(
            swl.years > base.years,
            "{kind}: SWL must extend usable lifetime ({:.4} vs {:.4})",
            swl.years,
            base.years
        );
        assert!(
            swl.host_writes > base.host_writes,
            "{kind}: SWL must absorb more writes over the device life"
        );
    }
}

#[test]
fn swl_leaves_median_write_latency_alone() {
    // The latency-dimension version of "limited overhead": the common-path
    // write cost must not change; only the tail may grow.
    let scale = quick();
    let horizon = (0.01 * NANOS_PER_YEAR) as u64;
    let base = horizon_run(LayerKind::Ftl, None, &scale, horizon).unwrap();
    let swl = horizon_run(
        LayerKind::Ftl,
        Some(scale.swl_config(100, 0)),
        &scale,
        horizon,
    )
    .unwrap();
    assert_eq!(
        base.write_latency.quantile(0.5),
        swl.write_latency.quantile(0.5),
        "median write latency must be unaffected by SWL"
    );
    assert!(
        swl.write_latency.max_ns() >= base.write_latency.max_ns(),
        "the worst-case write absorbs a leveling pass"
    );
}

#[test]
fn larger_threshold_means_less_overhead() {
    let scale = quick();
    let horizon = (0.04 * NANOS_PER_YEAR) as u64;
    let base = horizon_run(LayerKind::Nftl, None, &scale, horizon).unwrap();
    let aggressive = horizon_run(
        LayerKind::Nftl,
        Some(SwlConfig::new(scale.scaled_threshold(100), 0).with_seed(scale.seed)),
        &scale,
        horizon,
    )
    .unwrap();
    let relaxed = horizon_run(
        LayerKind::Nftl,
        Some(SwlConfig::new(scale.scaled_threshold(1000), 0).with_seed(scale.seed)),
        &scale,
        horizon,
    )
    .unwrap();
    let agg = aggressive.erase_overhead_vs(&base).unwrap();
    let rel = relaxed.erase_overhead_vs(&base).unwrap();
    assert!(
        rel <= agg + 1e-9,
        "T=1000 must not cost more erases than T=100: {rel:.4} vs {agg:.4}"
    );
}
