//! Round-trip property of the telemetry pipeline: a simulation streamed
//! through a [`JsonlSink`], re-parsed line by line, and folded through a
//! [`MetricsAggregator`] must reproduce the run's [`FlashCounters`] totals
//! *exactly* — events are a lossless superset of the counters, across both
//! translation layers, with and without the SW Leveler.

use proptest::prelude::*;

use flash_sim::experiments::{instrumented_run, ExperimentScale};
use flash_sim::{LayerKind, SimReport, StopCondition};
use flash_telemetry::{
    parse_line, Event, JsonlSink, MetricsAggregator, Sink, SCHEMA_VERSION,
};

/// Runs a quick-scale simulation with a JSONL sink, replays the produced log
/// through an aggregator, and returns both ends of the pipe.
fn run_and_replay(
    kind: LayerKind,
    with_swl: bool,
    events: u64,
) -> (SimReport, MetricsAggregator, u64) {
    let scale = ExperimentScale::quick();
    let swl = with_swl.then(|| scale.swl_config(100, 0));
    let stop = StopCondition::events(events).or_first_failure();
    let (report, sink) = instrumented_run(kind, swl, &scale, JsonlSink::new(Vec::new()), stop)
        .expect("instrumented run");
    let lines = sink.lines();
    let bytes = sink.finish().expect("Vec<u8> writer cannot fail");
    let text = String::from_utf8(bytes).expect("JSONL is UTF-8");

    let mut agg = MetricsAggregator::new();
    let mut parsed = 0u64;
    for (n, line) in text.lines().enumerate() {
        let event = parse_line(line).unwrap_or_else(|e| panic!("line {}: {e}", n + 1));
        if n == 0 {
            assert!(
                matches!(event, Event::Meta { .. }),
                "log must start with a meta header, got {event:?}"
            );
        }
        agg.event(event);
        parsed += 1;
    }
    assert_eq!(parsed, lines, "sink line count disagrees with the log");
    (report, agg, parsed)
}

/// Asserts the exactness contract for one pipeline run.
fn assert_replay_exact(kind: LayerKind, with_swl: bool, events: u64) {
    let scale = ExperimentScale::quick();
    let (report, agg, parsed) = run_and_replay(kind, with_swl, events);
    assert!(parsed > 0, "log is empty");
    assert_eq!(
        agg.meta(),
        Some((SCHEMA_VERSION, scale.blocks, scale.pages_per_block)),
        "meta header must carry the device geometry"
    );
    assert_eq!(
        agg.counters(),
        report.counters,
        "replayed counters diverge from the live run ({kind}, swl={with_swl})"
    );
    if with_swl {
        assert!(
            agg.swl_invokes() > 0,
            "quick-scale SWL run should activate the leveler at least once"
        );
    } else {
        assert_eq!(agg.swl_invokes(), 0);
        assert_eq!(report.counters.swl_erases, 0);
    }
}

#[test]
fn ftl_replay_reproduces_counters_exactly() {
    assert_replay_exact(LayerKind::Ftl, true, 30_000);
    assert_replay_exact(LayerKind::Ftl, false, 30_000);
}

#[test]
fn nftl_replay_reproduces_counters_exactly() {
    assert_replay_exact(LayerKind::Nftl, true, 30_000);
    assert_replay_exact(LayerKind::Nftl, false, 30_000);
}

#[test]
fn replay_is_deterministic() {
    let (report_a, agg_a, lines_a) = run_and_replay(LayerKind::Ftl, true, 20_000);
    let (report_b, agg_b, lines_b) = run_and_replay(LayerKind::Ftl, true, 20_000);
    assert_eq!(report_a, report_b);
    assert_eq!(lines_a, lines_b);
    assert_eq!(agg_a.counters(), agg_b.counters());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replay exactness holds for arbitrary stop points, not just the ones
    /// the deterministic tests pick: truncating the run anywhere mid-GC or
    /// mid-merge must still leave the event stream and the counters in
    /// lockstep.
    #[test]
    fn replay_is_exact_at_arbitrary_stop_points(
        events in 500u64..12_000,
        nftl in any::<bool>(),
        with_swl in any::<bool>(),
    ) {
        let kind = if nftl { LayerKind::Nftl } else { LayerKind::Ftl };
        let (report, agg, _) = run_and_replay(kind, with_swl, events);
        prop_assert_eq!(agg.counters(), report.counters);
    }
}
