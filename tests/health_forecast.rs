//! End-to-end honesty of the health plane's failure forecast: a real
//! endurance-limited run to actual first block failure, scored against the
//! forecast the plane gave at half of the device's realized life. A small
//! in-tree replica of `healthbench`'s rated arm, pinned as a test so the
//! [`HALF_LIFE_ERROR_BOUND`] documented in `flash_telemetry::health` stays
//! an asserted contract, not a hope.
//!
//! Every report here is taken at a durability barrier, so the run and the
//! resulting error figure are deterministic.

use flash_sim::service::{Service, ServiceConfig};
use flash_sim::{EngineConfig, LayerKind, SimConfig, SwlCoordination};
use flash_telemetry::health::{HealthState, HALF_LIFE_ERROR_BOUND};
use nand::{CellKind, ChannelGeometry, Geometry};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

const CHANNELS: u32 = 4;
/// Low rated endurance so the quick geometry fails in test time. Matches
/// `healthbench`'s rated arm: short enough for seconds-scale runs, long
/// enough that the wear-rate estimator is settled by half life.
const ENDURANCE: u32 = 24;
const RECORD_EVERY: u64 = 200;

fn build_service() -> Service {
    let geometry = ChannelGeometry::new(CHANNELS, 1, Geometry::new(16, 32, 2048));
    Service::build(
        LayerKind::Ftl,
        geometry,
        CellKind::Mlc2.spec().with_endurance(ENDURANCE),
        Some(SwlConfig::new(100, 0).with_seed(42)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        ServiceConfig::default().with_engine(
            EngineConfig::default()
                .with_threads(CHANNELS)
                .with_queue_depth(8)
                .with_health(true),
        ),
    )
    .expect("service build failed")
}

/// The healthbench workload shape: hot-biased 1–4 page writes over 40 % of
/// the logical space, 90 % of them inside the hot eighth.
struct Workload {
    rng: SplitMix64,
    span: u64,
    hot_set: u64,
    next_value: u64,
}

impl Workload {
    fn new(logical_pages: u64) -> Self {
        let span = (logical_pages * 2 / 5).max(8);
        Self {
            rng: SplitMix64::new(42 ^ 0x5EA1),
            span,
            hot_set: (span / 8).max(4).min(span),
            next_value: 0,
        }
    }

    fn next(&mut self) -> (u64, Vec<u64>) {
        let len = self.rng.range_usize(1..5).min(self.span as usize);
        let lba = if self.rng.chance(0.9) {
            self.rng.next_below(self.hot_set)
        } else {
            self.rng.next_below(self.span)
        }
        .min(self.span - len as u64);
        let data = (0..len)
            .map(|_| {
                self.next_value += 1;
                self.next_value
            })
            .collect();
        (lba, data)
    }
}

#[test]
fn half_life_forecast_predicts_first_failure_within_bound() {
    let mut service = build_service();
    let mut workload = Workload::new(service.logical_pages());
    // (host_pages, central forecast) at each barrier-quiesced poll.
    let mut records: Vec<(u64, Option<u64>)> = Vec::new();
    let mut ops = 0u64;
    while service.first_failure().is_none() {
        let (lba, data) = workload.next();
        service.write(lba, &data).expect("write failed");
        ops += 1;
        if ops.is_multiple_of(RECORD_EVERY) {
            service.flush().expect("flush failed");
            let report = service.stats().expect("health was enabled");
            records.push((report.host_pages, report.forecast.central));
        }
        assert!(ops < 2_000_000, "run must reach first failure");
    }
    service.flush().expect("post-failure flush failed");
    let final_report = service.stats().expect("health was enabled");
    service.finish().expect("service finish failed");

    // At the realized failure the plane must say so, in every field.
    assert_eq!(
        final_report.state,
        HealthState::Critical,
        "a device at first failure must report critical"
    );
    assert!(
        final_report.life_used >= 1.0,
        "life_used {} below 1.0 at first failure",
        final_report.life_used
    );
    assert_eq!(
        final_report.forecast.central,
        Some(0),
        "the forecast must hit zero once a block is at its rating"
    );

    // Score the forecast taken nearest 50 % of the realized life.
    let total = final_report.host_pages;
    let (at_pages, central) = records
        .iter()
        .filter_map(|&(pages, central)| central.map(|c| (pages, c)))
        .min_by_key(|&(pages, _)| pages.abs_diff(total / 2))
        .expect("a failing run produces bounded forecasts");
    let predicted = at_pages + central;
    let error = (predicted as f64 - total as f64).abs() / total as f64;
    assert!(
        error <= HALF_LIFE_ERROR_BOUND,
        "half-life forecast error {error:.3} exceeds the documented bound \
         {HALF_LIFE_ERROR_BOUND} (at {at_pages} pages predicted {predicted}, reality {total})"
    );
}
