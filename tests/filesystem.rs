//! Full-stack filesystem integration: FAT traffic (Figure 1 of the paper)
//! through the translation layers, with and without static wear leveling.

use flash_sim::{Layer, LayerKind, SimConfig, Simulator, StopCondition, TranslationLayer};
use flash_trace::fat::{FatSession, FatSessionSpec, FatVolume};
use flash_trace::Op;
use nand::{CellKind, Geometry, NandDevice};
use swl_core::SwlConfig;

fn device(blocks: u32, pages: u32) -> NandDevice {
    NandDevice::new(
        Geometry::new(blocks, pages, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

fn run_fat(kind: LayerKind, swl: Option<SwlConfig>, events: u64) -> flash_sim::SimReport {
    let mut layer = Layer::build(kind, device(64, 32), swl, &SimConfig::default()).unwrap();
    let volume = FatVolume::new(layer.logical_pages()).unwrap();
    let session = FatSession::new(volume, FatSessionSpec::default().with_seed(21));
    Simulator::new()
        .run(&mut layer, session, StopCondition::events(events))
        .unwrap()
}

#[test]
fn fat_traffic_runs_clean_on_both_layers() {
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let report = run_fat(kind, None, 150_000);
        assert_eq!(report.events, 150_000);
        assert!(report.counters.host_writes > 0, "{kind}");
        assert!(report.counters.host_reads > 0, "{kind}");
        assert_eq!(
            report.counters.total_erases(),
            report.device.erases,
            "{kind}: attribution exact under filesystem traffic"
        );
    }
}

#[test]
fn fat_baseline_pins_archive_blocks() {
    let report = run_fat(LayerKind::Ftl, None, 600_000);
    // The archive pins blocks at zero wear while the churn region burns:
    // classic bimodal wear.
    assert_eq!(report.erase_stats.min, 0, "archive blocks stay pristine");
    assert!(
        report.erase_stats.std_dev > report.erase_stats.mean * 0.5,
        "filesystem wear must be strongly uneven: {}",
        report.erase_stats
    );
}

#[test]
fn swl_flattens_filesystem_wear() {
    let base = run_fat(LayerKind::Ftl, None, 600_000);
    // T=4 on a 64-block chip levels aggressively enough that the halving
    // below holds with a wide margin across trace seeds.
    let swl = run_fat(
        LayerKind::Ftl,
        Some(SwlConfig::new(4, 0).with_seed(21)),
        600_000,
    );
    assert!(
        swl.erase_stats.std_dev < base.erase_stats.std_dev / 2.0,
        "SWL must at least halve the wear deviation: {:.1} vs {:.1}",
        swl.erase_stats.std_dev,
        base.erase_stats.std_dev
    );
    assert!(
        swl.erase_stats.min > 0,
        "SWL must pull archive blocks into circulation"
    );
}

#[test]
fn fat_session_respects_logical_space() {
    let layer = Layer::build(LayerKind::Ftl, device(32, 16), None, &SimConfig::default()).unwrap();
    let volume = FatVolume::new(layer.logical_pages()).unwrap();
    let session = FatSession::new(volume, FatSessionSpec::default().with_seed(2));
    for event in session.take(100_000) {
        assert!(event.lba < layer.logical_pages());
        assert!(matches!(event.op, Op::Read | Op::Write));
    }
}
