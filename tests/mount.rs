//! Power-cycle integration: run a workload, detach the chip, remount and
//! verify the rebuilt translation state serves the same data.

use std::collections::HashMap;

use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, Geometry, NandDevice};
use nftl::{BlockMappedNftl, NftlConfig, NftlError};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

fn device() -> NandDevice {
    NandDevice::new(
        Geometry::new(48, 16, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

fn random_workload<E, W: FnMut(u64, u64) -> Result<(), E>>(
    logical_pages: u64,
    ops: usize,
    seed: u64,
    mut write: W,
) -> HashMap<u64, u64>
where
    E: std::fmt::Debug,
{
    let mut rng = SplitMix64::new(seed);
    let mut shadow = HashMap::new();
    for i in 0..ops {
        // Skewed towards a hot region so GC, merges and SWL all fire.
        let lba = if rng.chance(0.7) {
            rng.range_u64(0..logical_pages / 8)
        } else {
            rng.range_u64(0..logical_pages / 2)
        };
        let data = i as u64;
        write(lba, data).unwrap();
        shadow.insert(lba, data);
    }
    shadow
}

#[test]
fn ftl_remount_preserves_data_and_wear() {
    let mut ftl = PageMappedFtl::new(device(), FtlConfig::default()).unwrap();
    let shadow = random_workload(ftl.logical_pages(), 4_000, 1, |lba, data| {
        ftl.write(lba, data)
    });
    let erase_counts = ftl.device().erase_counts();

    // Power cycle.
    let chip = ftl.into_device();
    let mut remounted = PageMappedFtl::mount(chip, FtlConfig::default()).unwrap();

    assert_eq!(remounted.device().erase_counts(), erase_counts);
    for (&lba, &data) in &shadow {
        assert_eq!(remounted.read(lba).unwrap(), Some(data), "lba {lba}");
    }
    // The remounted layer keeps working, GC included.
    for round in 0..3_000u64 {
        remounted.write(round % 64, round).unwrap();
    }
    assert_eq!(remounted.read(0).unwrap(), Some(2_944));
}

#[test]
fn ftl_remount_after_swl_activity() {
    let mut ftl =
        PageMappedFtl::with_swl(device(), FtlConfig::default(), SwlConfig::new(5, 0)).unwrap();
    // Pin cold data so the leveler has something to move.
    let cold_base = ftl.logical_pages() / 2;
    let mut shadow = HashMap::new();
    for lba in cold_base..cold_base + 200 {
        ftl.write(lba, 0xC01D + lba).unwrap();
        shadow.insert(lba, 0xC01D + lba);
    }
    shadow.extend(random_workload(
        ftl.logical_pages(),
        5_000,
        2,
        |lba, data| ftl.write(lba, data),
    ));
    assert!(ftl.counters().swl_erases > 0, "SWL must have churned");
    let chip = ftl.into_device();
    let mut remounted = PageMappedFtl::mount(chip, FtlConfig::default()).unwrap();
    for (&lba, &data) in &shadow {
        assert_eq!(remounted.read(lba).unwrap(), Some(data));
    }
}

#[test]
fn nftl_remount_preserves_data_and_structures() {
    let mut nftl = BlockMappedNftl::new(device(), NftlConfig::default()).unwrap();
    let shadow = random_workload(nftl.logical_pages(), 4_000, 3, |lba, data| {
        nftl.write(lba, data)
    });
    let open_replacements = nftl.open_replacements();
    let chip = nftl.into_device();

    let mut remounted = BlockMappedNftl::mount(chip, NftlConfig::default()).unwrap();
    assert_eq!(remounted.open_replacements(), open_replacements);
    for (&lba, &data) in &shadow {
        assert_eq!(remounted.read(lba).unwrap(), Some(data), "lba {lba}");
    }
    // Keep writing: merges on rebuilt replacement state must stay correct.
    for round in 0..3_000u64 {
        remounted.write(round % 48, round).unwrap();
    }
    for lba in 0..48u64 {
        // 3000 = 62*48 + 24: lbas 0..24 were last written in round 2976+lba,
        // the rest in round 2928+lba.
        let expected = if lba < 24 { 2_976 + lba } else { 2_928 + lba };
        assert_eq!(remounted.read(lba).unwrap(), Some(expected));
    }
}

#[test]
fn nftl_remount_after_swl_activity() {
    let mut nftl =
        BlockMappedNftl::with_swl(device(), NftlConfig::default(), SwlConfig::new(5, 0)).unwrap();
    let shadow = random_workload(nftl.logical_pages(), 5_000, 4, |lba, data| {
        nftl.write(lba, data)
    });
    assert!(nftl.counters().swl_erases > 0);
    let chip = nftl.into_device();
    let mut remounted = BlockMappedNftl::mount(chip, NftlConfig::default()).unwrap();
    for (&lba, &data) in &shadow {
        assert_eq!(remounted.read(lba).unwrap(), Some(data));
    }
}

#[test]
fn fresh_chip_mounts_empty() {
    let ftl = PageMappedFtl::mount(device(), FtlConfig::default()).unwrap();
    assert_eq!(ftl.utilization(), 0.0);
    let mut nftl = BlockMappedNftl::mount(device(), NftlConfig::default()).unwrap();
    assert_eq!(nftl.read(0).unwrap(), None);
}

#[test]
fn foreign_data_is_rejected_by_nftl_mount() {
    // A chip written by the FTL (status=0 markers) is not a valid NFTL
    // layout.
    let mut ftl = PageMappedFtl::new(device(), FtlConfig::default()).unwrap();
    for lba in 0..100u64 {
        ftl.write(lba, lba).unwrap();
    }
    let chip = ftl.into_device();
    assert!(matches!(
        BlockMappedNftl::mount(chip, NftlConfig::default()),
        Err(NftlError::MountCorrupt { .. })
    ));
}

#[test]
fn repeated_cycles_are_stable() {
    let mut nftl = BlockMappedNftl::new(device(), NftlConfig::default()).unwrap();
    let mut shadow = HashMap::new();
    for cycle in 0..5u64 {
        for i in 0..800u64 {
            let lba = (i * 7 + cycle) % 96;
            let data = cycle * 10_000 + i;
            nftl.write(lba, data).unwrap();
            shadow.insert(lba, data);
        }
        let chip = nftl.into_device();
        nftl = BlockMappedNftl::mount(chip, NftlConfig::default()).unwrap();
        for (&lba, &data) in &shadow {
            assert_eq!(
                nftl.read(lba).unwrap(),
                Some(data),
                "cycle {cycle} lba {lba}"
            );
        }
    }
}
