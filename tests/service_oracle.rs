//! Differential oracle for the block-device service front-end.
//!
//! Three layers of guarantees, stacked:
//!
//! 1. **Cache-off bit-identity** — a [`Service`] with the cache disabled is
//!    a pass-through front-end: the same op sequence driven through
//!    [`Engine`] directly must produce the identical [`StripedReport`],
//!    and logical contents. Only wall-clock timing may differ. (The direct
//!    driver mirrors the service's logical clock and supplies write values
//!    from the same counter the service's client uses, so contents line up
//!    bit for bit.)
//! 2. **Cache-on semantics** — read-your-writes against a model map, a
//!    measured hit rate > 0 on a hot-rewrite workload, strictly fewer
//!    flash programs than the cache-off run of the same workload, trim
//!    masking, and flush durability through a real device teardown +
//!    remount.
//! 3. **Served concurrency** — N real client threads over
//!    [`Service::serve`] keep per-client read-your-writes on disjoint
//!    partitions, and client latency histograms cover every op.

use std::collections::HashMap;

use flash_sim::service::cache::CacheConfig;
use flash_sim::service::{Service, ServiceConfig};
use flash_sim::{
    Engine, EngineConfig, Layer, LayerKind, SimConfig, StripedReport, SwlCoordination,
    TranslationLayer,
};
use flash_trace::TraceEvent;
use hotid::HotDataConfig;
use nand::{CellKind, CellSpec, ChannelGeometry, Geometry};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

const INTERVAL_NS: u64 = 1_000;

fn chip() -> Geometry {
    Geometry::new(32, 8, 2048)
}

fn spec() -> CellSpec {
    CellKind::Mlc2.spec().with_endurance(1_000_000)
}

fn geometry(channels: u32) -> ChannelGeometry {
    ChannelGeometry::new(channels, 1, chip())
}

fn swl() -> SwlConfig {
    SwlConfig::new(8, 0).with_seed(9)
}

/// An admission filter hot enough to cache from the second write on.
fn eager_hot() -> HotDataConfig {
    HotDataConfig {
        hot_threshold: 2,
        ..HotDataConfig::default()
    }
}

/// One host op of the deterministic mixed workload.
#[derive(Debug, Clone)]
enum HostOp {
    Write { lba: u64, len: usize },
    Read { lba: u64, len: usize },
}

/// A reproducible mixed read/write sequence biased toward a small hot set
/// so rewrites actually recur. The footprint stays under ~40 % of the
/// logical space — the default FTL exports the full chip with zero
/// overprovisioning (the paper's workload writes only 36.62 % of its LBA
/// space), so a near-full footprint would legitimately exhaust free blocks.
fn workload(logical_pages: u64, ops: usize, seed: u64) -> Vec<HostOp> {
    let mut rng = SplitMix64::new(seed);
    let footprint = (logical_pages * 2 / 5).max(8);
    let hot_set = (footprint / 8).max(4);
    (0..ops)
        .map(|_| {
            let len = rng.range_usize(1..5);
            let lba = if rng.chance(0.7) {
                rng.next_below(hot_set)
            } else {
                rng.next_below(footprint - 4)
            };
            let lba = lba.min(footprint - len as u64);
            if rng.chance(0.75) {
                HostOp::Write { lba, len }
            } else {
                HostOp::Read { lba, len }
            }
        })
        .collect()
}

/// Reads the full logical contents out of a finished run's lanes.
fn contents(run: &mut flash_sim::EngineRun, geo: &ChannelGeometry, pages: u64) -> Vec<Option<u64>> {
    (0..pages)
        .map(|lba| {
            run.lanes_mut()[geo.channel_of(lba) as usize]
                .read(geo.lane_lba(lba))
                .unwrap()
        })
        .collect()
}

/// Drives `ops` through an [`Engine`] directly, mirroring exactly what the
/// cache-less service front-end does: op k stamped at `k * INTERVAL_NS`,
/// write values drawn from a global page counter, reads followed by a
/// pipeline flush (the service's read path is synchronizing).
fn engine_reference(
    kind: LayerKind,
    channels: u32,
    ops: &[HostOp],
    config: EngineConfig,
) -> (StripedReport, Vec<Option<u64>>) {
    let mut engine = Engine::new(
        kind,
        geometry(channels),
        spec(),
        Some(swl()),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        config,
    )
    .unwrap();
    let pages = engine.logical_pages();
    let mut clock = 0u64;
    let mut next_value = 0u64;
    for op in ops {
        clock += INTERVAL_NS;
        match *op {
            HostOp::Write { lba, len } => {
                let values: Vec<u64> = (0..len)
                    .map(|_| {
                        next_value += 1;
                        next_value
                    })
                    .collect();
                engine.submit_write_data(clock, lba, &values).unwrap();
            }
            HostOp::Read { lba, len } => {
                engine
                    .submit(TraceEvent::read_span(clock, lba, len as u32))
                    .unwrap();
                engine.flush().unwrap();
            }
        }
    }
    engine.flush().unwrap();
    let mut run = engine.finish().unwrap();
    let report = run.report.clone();
    let geo = geometry(channels);
    let data = contents(&mut run, &geo, pages);
    (report, data)
}

/// Drives the same ops through a cache-less [`Service`] and returns the
/// report and contents the same way.
fn service_reference(
    kind: LayerKind,
    channels: u32,
    ops: &[HostOp],
    config: ServiceConfig,
) -> (StripedReport, Vec<Option<u64>>) {
    let mut service = Service::build(
        kind,
        geometry(channels),
        spec(),
        Some(swl()),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        config,
    )
    .unwrap();
    let pages = service.logical_pages();
    let mut next_value = 0u64;
    for op in ops {
        match *op {
            HostOp::Write { lba, len } => {
                let values: Vec<u64> = (0..len)
                    .map(|_| {
                        next_value += 1;
                        next_value
                    })
                    .collect();
                service.write(lba, &values).unwrap();
            }
            HostOp::Read { lba, len } => {
                service.read(lba, len).unwrap();
            }
        }
    }
    let mut run = service.finish().unwrap().run;
    let report = run.report.clone();
    let geo = geometry(channels);
    let data = contents(&mut run, &geo, pages);
    (report, data)
}

fn cache_off_matches_engine(kind: LayerKind, channels: u32) {
    // Learn the logical capacity once, then build fresh pairs per config.
    let probe = Engine::new(
        kind,
        geometry(channels),
        spec(),
        Some(swl()),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        EngineConfig::default(),
    )
    .unwrap();
    let logical = probe.logical_pages();
    probe.finish().unwrap();

    let ops = workload(logical, 2_500, 0xC0FFEE ^ u64::from(channels));
    for threads in [1u32, 2] {
        let engine_config = EngineConfig::default()
            .with_threads(threads)
            .with_queue_depth(16);
        let (engine_report, engine_contents) =
            engine_reference(kind, channels, &ops, engine_config);
        let (service_report, service_contents) = service_reference(
            kind,
            channels,
            &ops,
            ServiceConfig::default()
                .with_engine(engine_config)
                .with_op_interval_ns(INTERVAL_NS),
        );
        assert_eq!(
            service_report, engine_report,
            "{kind:?} ×{channels}ch threads={threads}: cache-off service report diverged"
        );
        assert_eq!(
            service_contents, engine_contents,
            "{kind:?} ×{channels}ch threads={threads}: cache-off service contents diverged"
        );
    }
}

#[test]
fn cache_off_service_is_bit_identical_ftl() {
    cache_off_matches_engine(LayerKind::Ftl, 1);
    cache_off_matches_engine(LayerKind::Ftl, 2);
}

#[test]
fn cache_off_service_is_bit_identical_nftl() {
    cache_off_matches_engine(LayerKind::Nftl, 2);
}

/// The `Stats` management verb is a pure read: a cache-off service with
/// the health plane enabled, polled every 97 ops, must stay bit-identical
/// to a bare engine (health off) driving the same sequence — the observer
/// never perturbs the device.
#[test]
fn stats_polling_service_stays_bit_identical() {
    let kind = LayerKind::Ftl;
    let channels = 2u32;
    let probe = Engine::new(
        kind,
        geometry(channels),
        spec(),
        Some(swl()),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        EngineConfig::default(),
    )
    .unwrap();
    let logical = probe.logical_pages();
    probe.finish().unwrap();

    let ops = workload(logical, 2_500, 0xD1CE);
    let engine_config = EngineConfig::default().with_threads(2).with_queue_depth(16);
    let (engine_report, engine_contents) = engine_reference(kind, channels, &ops, engine_config);

    let mut service = Service::build(
        kind,
        geometry(channels),
        spec(),
        Some(swl()),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        ServiceConfig::default()
            .with_engine(engine_config.with_health(true))
            .with_op_interval_ns(INTERVAL_NS),
    )
    .unwrap();
    let pages = service.logical_pages();
    let mut next_value = 0u64;
    let mut last_host_pages = 0u64;
    let mut polls = 0u64;
    for (i, op) in ops.iter().enumerate() {
        match *op {
            HostOp::Write { lba, len } => {
                let values: Vec<u64> = (0..len)
                    .map(|_| {
                        next_value += 1;
                        next_value
                    })
                    .collect();
                service.write(lba, &values).unwrap();
            }
            HostOp::Read { lba, len } => {
                service.read(lba, len).unwrap();
            }
        }
        if i % 97 == 96 {
            let report = service.stats().expect("health was enabled");
            assert!(
                report.host_pages >= last_host_pages,
                "host_pages must be monotone across stats polls"
            );
            last_host_pages = report.host_pages;
            polls += 1;
        }
    }
    assert!(polls > 0, "the interleaving must actually poll");
    let finished = service.finish().unwrap();
    let health = finished.health.expect("health was enabled");
    assert!(health.host_pages > 0, "the run wrote pages");
    let mut run = finished.run;
    let report = run.report.clone();
    let geo = geometry(channels);
    let data = contents(&mut run, &geo, pages);
    assert_eq!(report, engine_report, "stats-polling service report diverged");
    assert_eq!(data, engine_contents, "stats-polling service contents diverged");
}

#[test]
fn cache_on_read_your_writes_matches_model() {
    let mut service = Service::build(
        LayerKind::Ftl,
        geometry(2),
        spec(),
        None,
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        ServiceConfig::default()
            .with_cache(CacheConfig::sized(32).with_hot(eager_hot()))
            .with_engine(EngineConfig::default().with_threads(2).with_queue_depth(8)),
    )
    .unwrap();
    let hot_span = service.logical_pages() / 4; // concentrated → hot
    let mut model: HashMap<u64, Option<u64>> = HashMap::new();
    let mut rng = SplitMix64::new(42);
    for i in 0..4_000u64 {
        let lba = rng.next_below(hot_span);
        match rng.next_below(10) {
            0 => {
                service.trim(lba, 1).unwrap();
                model.insert(lba, None);
            }
            1..=3 => {
                let got = service.read(lba, 1).unwrap()[0];
                let expected = model.get(&lba).copied().unwrap_or(None);
                assert_eq!(got, expected, "read {lba} diverged from model at op {i}");
            }
            _ => {
                service.write(lba, &[i + 1]).unwrap();
                model.insert(lba, Some(i + 1));
            }
        }
        if rng.chance(0.01) {
            service.flush().unwrap();
        }
    }
    let sample = service.cache_sample().expect("cache was enabled");
    assert!(sample.write_hits > 0, "hot workload must hit the cache");
    assert!(sample.flushed_pages > 0, "watermark flush-back must run");
    // Full sweep against the model after a final flush.
    service.flush().unwrap();
    for lba in 0..hot_span {
        let got = service.read(lba, 1).unwrap()[0];
        let expected = model.get(&lba).copied().unwrap_or(None);
        assert_eq!(got, expected, "final sweep diverged at lba {lba}");
    }
    service.finish().unwrap();
}

#[test]
fn cache_absorbs_hot_rewrites_and_cuts_programs() {
    let run_with = |cache: Option<CacheConfig>| {
        let mut service = Service::build(
            LayerKind::Ftl,
            geometry(2),
            spec(),
            Some(swl()),
            SwlCoordination::PerChannel,
            &SimConfig::default(),
            ServiceConfig {
                engine: EngineConfig::default().with_threads(2).with_queue_depth(8),
                cache,
                op_interval_ns: INTERVAL_NS,
            },
        )
        .unwrap();
        // Hammer a tiny hot set: 16 pages rewritten 500 times each.
        let mut value = 0u64;
        for round in 0..500u64 {
            for lba in 0..16u64 {
                value += 1;
                service.write(lba, &[value]).unwrap();
            }
            if round % 50 == 49 {
                service.flush().unwrap();
            }
        }
        service.finish().unwrap()
    };
    let off = run_with(None);
    let on = run_with(Some(CacheConfig::sized(64).with_hot(eager_hot())));
    let sample = on.cache.expect("cache was enabled");
    assert!(
        sample.write_hit_rate() > 0.5,
        "hot rewrites must mostly be absorbed (hit rate {})",
        sample.write_hit_rate()
    );
    assert!(
        on.run.report.device.programs < off.run.report.device.programs / 2,
        "cache-on must cut flash programs (on {} vs off {})",
        on.run.report.device.programs,
        off.run.report.device.programs
    );
    assert!(
        on.run.report.counters.swl_erases <= off.run.report.counters.swl_erases,
        "less flash traffic must not increase SWL work (on {} vs off {})",
        on.run.report.counters.swl_erases,
        off.run.report.counters.swl_erases
    );
}

#[test]
fn flushed_writes_survive_teardown_and_remount() {
    let channels = 2u32;
    let mut service = Service::build(
        LayerKind::Ftl,
        geometry(channels),
        spec(),
        None,
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        ServiceConfig::default().with_cache(CacheConfig::sized(32).with_hot(eager_hot())),
    )
    .unwrap();
    // Acked-durable set: written (rewritten so the filter sees them hot,
    // landing them in the cache), then flushed.
    for lba in 0..24u64 {
        service.write(lba, &[1_000 + lba]).unwrap();
        service.write(lba, &[2_000 + lba]).unwrap();
    }
    service.flush().unwrap();
    // Un-acked tail: written after the flush, may legally vanish.
    for lba in 0..8u64 {
        service.write(lba, &[9_000 + lba]).unwrap();
    }
    let geo = geometry(channels);
    let mut lanes: Vec<Layer<_>> = service
        .into_devices()
        .into_iter()
        .map(|device| Layer::mount(LayerKind::Ftl, device, &SimConfig::default()).unwrap())
        .collect();
    for lba in 0..24u64 {
        let got = lanes[geo.channel_of(lba) as usize]
            .read(geo.lane_lba(lba))
            .unwrap();
        let flushed = 2_000 + lba;
        let unacked = 9_000 + lba;
        assert!(
            got == Some(flushed) || (lba < 8 && got == Some(unacked)),
            "lba {lba}: flushed value lost (read {got:?})"
        );
    }
}

#[test]
fn served_clients_keep_read_your_writes() {
    let service = Service::build(
        LayerKind::Ftl,
        geometry(2),
        spec(),
        None,
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        ServiceConfig::default()
            .with_cache(CacheConfig::sized(64).with_hot(eager_hot()))
            .with_engine(EngineConfig::default().with_threads(2).with_queue_depth(8)),
    )
    .unwrap();
    let clients = 4usize;
    let slice = service.logical_pages() / clients as u64;
    let (server, handles) = service.serve(clients);
    let joined: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(c, mut client)| {
            std::thread::spawn(move || {
                let base = c as u64 * slice;
                let mut rng = SplitMix64::new(0xBEEF + c as u64);
                let mut model: HashMap<u64, u64> = HashMap::new();
                for i in 0..400u64 {
                    let lba = base + rng.next_below(slice.min(32));
                    if rng.chance(0.7) {
                        let value = ((c as u64) << 32) | (i + 1);
                        client.write(lba, vec![value]).unwrap();
                        model.insert(lba, value);
                    } else if let Some(&expected) = model.get(&lba) {
                        let got = client.read(lba, 1).unwrap()[0];
                        assert_eq!(got, Some(expected), "client {c} lost its write at {lba}");
                    }
                    if i % 100 == 99 {
                        client.flush().unwrap();
                    }
                }
                (client.write_latency().count(), client.read_latency().count())
            })
        })
        .collect();
    let mut total_ops = 0u64;
    for handle in joined {
        let (writes, reads) = handle.join().unwrap();
        assert!(writes > 0, "every client must have written");
        total_ops += writes + reads;
    }
    let service = server.join();
    assert!(
        service.ops() >= total_ops,
        "service must have seen every client op"
    );
    service.finish().unwrap();
}

/// Trim of never-written LBAs is a pure no-op that must stay readable as
/// `None`, never error, and never dirty the cache or reach the flash —
/// with and without a cache attached.
#[test]
fn trim_of_never_written_lbas_is_harmless() {
    for cache in [None, Some(CacheConfig::sized(32).with_hot(eager_hot()))] {
        let cached = cache.is_some();
        let mut service = Service::build(
            LayerKind::Ftl,
            geometry(2),
            spec(),
            None,
            SwlCoordination::PerChannel,
            &SimConfig::default(),
            ServiceConfig {
                engine: EngineConfig::default().with_threads(2).with_queue_depth(8),
                cache,
                op_interval_ns: INTERVAL_NS,
            },
        )
        .unwrap();
        let logical = service.logical_pages();

        // Virgin device: trim spans nothing ever touched.
        service.trim(0, 16).unwrap();
        service.trim(logical - 4, 4).unwrap();
        service.trim(7, 0).unwrap(); // zero-length
        for lba in [0u64, 5, 15, logical - 1] {
            assert_eq!(
                service.read(lba, 1).unwrap()[0],
                None,
                "cached={cached}: trimmed virgin lba {lba} must read None"
            );
        }
        // Out-of-range trims are rejected, not silently clipped.
        assert!(matches!(
            service.trim(logical, 1),
            Err(flash_sim::SimError::TraceOutOfRange { .. })
        ));
        assert!(matches!(
            service.trim(logical - 1, 2),
            Err(flash_sim::SimError::TraceOutOfRange { .. })
        ));

        // The no-op trims must not have programmed anything.
        service.flush().unwrap();
        let programs_before: u64 = service.ops();
        assert!(programs_before > 0, "ops counter tracks the verbs");

        // Writes after the trim behave as on a virgin device.
        service.write(3, &[111, 222]).unwrap();
        assert_eq!(service.read(3, 2).unwrap(), vec![Some(111), Some(222)]);
        // And re-trimming the now-written span masks it again.
        service.trim(3, 2).unwrap();
        assert_eq!(service.read(3, 2).unwrap(), vec![None, None]);

        let run = service.finish().unwrap().run;
        assert_eq!(
            run.report.counters.trims, 0,
            "cached={cached}: advisory service trims must never reach the FTL"
        );
    }
}

/// Flush on an empty (or absent) cache is an idempotent barrier: it
/// succeeds, moves no pages, and leaves the device byte-identical — even
/// repeated back to back.
#[test]
fn flush_on_empty_cache_is_an_idempotent_noop() {
    let mut service = Service::build(
        LayerKind::Ftl,
        geometry(2),
        spec(),
        None,
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        ServiceConfig::default()
            .with_cache(CacheConfig::sized(32).with_hot(eager_hot()))
            .with_engine(EngineConfig::default().with_threads(2).with_queue_depth(8)),
    )
    .unwrap();
    // Nothing written yet: flush must succeed and flush zero pages.
    service.flush().unwrap();
    service.flush().unwrap();
    let sample = service.cache_sample().expect("cache was enabled");
    assert_eq!(sample.flushed_pages, 0, "empty flush moved pages");
    assert_eq!(sample.dirty, 0);

    // Dirty the cache, drain it, then flush again: the second flush finds
    // an empty cache and must not move anything further.
    for lba in 0..8u64 {
        service.write(lba, &[lba + 1]).unwrap();
        service.write(lba, &[lba + 100]).unwrap(); // rewrite → cached
    }
    service.flush().unwrap();
    let after_drain = service.cache_sample().expect("cache was enabled");
    assert_eq!(after_drain.dirty, 0, "flush must drain every dirty entry");
    service.flush().unwrap();
    let after_noop = service.cache_sample().expect("cache was enabled");
    assert_eq!(
        after_noop.flushed_pages, after_drain.flushed_pages,
        "flushing a drained cache must move nothing"
    );
    // Contents intact.
    for lba in 0..8u64 {
        assert_eq!(service.read(lba, 1).unwrap()[0], Some(lba + 100));
    }
    service.finish().unwrap();
}

/// Stats is a pure management verb: every served client polling it
/// concurrently with the others' traffic gets a coherent report, and the
/// polling never perturbs contents or read-your-writes.
#[test]
fn stats_polled_concurrently_from_all_clients() {
    let service = Service::build(
        LayerKind::Ftl,
        geometry(2),
        spec(),
        Some(swl()),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        ServiceConfig::default()
            .with_engine(
                EngineConfig::default()
                    .with_threads(2)
                    .with_queue_depth(8)
                    .with_health(true),
            )
            .with_op_interval_ns(INTERVAL_NS),
    )
    .unwrap();
    let clients = 4usize;
    let slice = service.logical_pages() / clients as u64;
    let (server, handles) = service.serve(clients);
    let joined: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(c, mut client)| {
            std::thread::spawn(move || {
                let base = c as u64 * slice;
                let mut model: HashMap<u64, u64> = HashMap::new();
                let mut rng = SplitMix64::new(0x57A7 + c as u64);
                let mut last_host_pages = 0u64;
                let mut polls = 0u64;
                for i in 0..300u64 {
                    let lba = base + rng.next_below(slice.min(24));
                    if rng.chance(0.6) {
                        let value = ((c as u64) << 32) | (i + 1);
                        client.write(lba, vec![value]).unwrap();
                        model.insert(lba, value);
                    } else if let Some(&expected) = model.get(&lba) {
                        let got = client.read(lba, 1).unwrap()[0];
                        assert_eq!(got, Some(expected), "client {c} lost a write at {lba}");
                    }
                    // Every client polls stats throughout, racing the others.
                    if i % 19 == 0 {
                        let report = client.stats().expect("health was enabled");
                        assert!(
                            report.host_pages >= last_host_pages,
                            "client {c}: host_pages went backwards across polls"
                        );
                        last_host_pages = report.host_pages;
                        polls += 1;
                    }
                }
                assert!(polls > 0, "client {c} must actually have polled");
                // Final read-your-writes sweep under continued polling.
                for (&lba, &expected) in &model {
                    assert_eq!(client.read(lba, 1).unwrap()[0], Some(expected));
                }
                polls
            })
        })
        .collect();
    let mut total_polls = 0u64;
    for handle in joined {
        total_polls += handle.join().unwrap();
    }
    assert!(total_polls >= 4 * 10, "all clients polled repeatedly");
    let service = server.join();
    service.finish().unwrap();
}
