//! Differential oracle for the real-thread channel engine: on the same
//! trace, [`Engine`] must reproduce [`Simulator::run_striped`] **bit for
//! bit** — the full [`flash_sim::StripedReport`] (erase counters, SWL
//! coordination effects, per-page and op-level latency histograms, makespan,
//! first failure), the per-lane device and leveler state, and the logical
//! contents — for every combination of channel count, SWL coordination
//! mode, and worker-thread count. Only wall-clock timing may differ.
//!
//! This extends the `tests/differential.rs` pattern (striped vs. standalone
//! lanes) one level up: the virtual-time striped loop is itself the oracle
//! for the threaded engine.

use flash_sim::{
    Engine, EngineConfig, LayerKind, SimConfig, Simulator, StopCondition, StripedLayer,
    StripedReport, SwlCoordination, TranslationLayer,
};
use flash_trace::{SyntheticTrace, TraceEvent, WorkloadSpec};
use nand::{CellKind, CellSpec, ChannelGeometry, Geometry};
use swl_core::SwlConfig;

const LANE_BLOCKS: u32 = 32;
const PAGES: u32 = 8;
const EVENTS: u64 = 4_000;
/// Host requests span several pages so one op stripes across lanes.
const SPAN: u32 = 4;

fn chip() -> Geometry {
    Geometry::new(LANE_BLOCKS, PAGES, 2048)
}

fn spec(endurance: u32) -> CellSpec {
    CellKind::Mlc2.spec().with_endurance(endurance)
}

fn swl() -> SwlConfig {
    SwlConfig::new(8, 0).with_seed(9)
}

fn trace(logical_pages: u64, seed: u64) -> impl Iterator<Item = TraceEvent> {
    SyntheticTrace::new(WorkloadSpec::paper(logical_pages).with_seed(seed))
        .map(move |e| e.widen(SPAN, logical_pages))
}

/// The virtual-time reference run, returning both the report and the layer
/// for per-lane state comparison.
fn reference(
    kind: LayerKind,
    channels: u32,
    coordination: SwlCoordination,
    endurance: u32,
    stop: StopCondition,
    seed: u64,
) -> (StripedReport, StripedLayer) {
    let mut striped = StripedLayer::build(
        kind,
        ChannelGeometry::new(channels, 1, chip()),
        spec(endurance),
        Some(swl()),
        coordination,
        &SimConfig::default(),
    )
    .unwrap();
    let pages = striped.logical_pages();
    let report = Simulator::new()
        .run_striped(&mut striped, trace(pages, seed), stop)
        .unwrap();
    (report, striped)
}

fn engine(
    kind: LayerKind,
    channels: u32,
    coordination: SwlCoordination,
    endurance: u32,
    stop: StopCondition,
    seed: u64,
    config: EngineConfig,
) -> flash_sim::EngineRun {
    let mut engine = Engine::new(
        kind,
        ChannelGeometry::new(channels, 1, chip()),
        spec(endurance),
        Some(swl()),
        coordination,
        &SimConfig::default(),
        config,
    )
    .unwrap();
    let pages = engine.logical_pages();
    engine.run(trace(pages, seed), stop).unwrap();
    engine.finish().unwrap()
}

/// Bit-identity across one configuration: report, per-lane state, contents.
fn engine_matches_oracle(kind: LayerKind, channels: u32, coordination: SwlCoordination) {
    let seed = 0xE7A1 ^ u64::from(channels);
    let stop = StopCondition::events(EVENTS);
    let (reference_report, mut reference_layer) =
        reference(kind, channels, coordination, 1_000_000, stop, seed);

    // Snapshot the oracle's per-lane state and contents *before* reading
    // anything back: reads are real device operations and would perturb the
    // counters being compared.
    let oracle_lanes: Vec<_> = reference_layer
        .lanes()
        .iter()
        .map(|lane| {
            (
                lane.counters(),
                lane.device().erase_stats(),
                lane.device().counters(),
                lane.swl().map(|s| (s.ecnt(), s.bet().fcnt())),
            )
        })
        .collect();
    let geometry = ChannelGeometry::new(channels, 1, chip());
    let pages = reference_layer.logical_pages();
    let oracle_contents: Vec<Option<u64>> = (0..pages)
        .map(|lba| reference_layer.read(lba).unwrap())
        .collect();

    for threads in [1u32, 2, 4] {
        let config = EngineConfig::default()
            .with_threads(threads)
            .with_queue_depth(32);
        let mut run = engine(kind, channels, coordination, 1_000_000, stop, seed, config);

        assert_eq!(
            run.report, reference_report,
            "{kind:?} ×{channels}ch {coordination:?} threads={threads}: report diverged"
        );

        // Per-lane device and leveler state, lane for lane.
        for (lane, engine_lane) in run.lanes().iter().enumerate() {
            let (counters, erase_stats, device, swl_state) = &oracle_lanes[lane];
            assert_eq!(
                engine_lane.counters(),
                *counters,
                "lane {lane} counters diverged (threads={threads})"
            );
            assert_eq!(
                engine_lane.device().erase_stats(),
                *erase_stats,
                "lane {lane} erase distribution diverged (threads={threads})"
            );
            assert_eq!(
                engine_lane.device().counters(),
                *device,
                "lane {lane} device counters diverged (threads={threads})"
            );
            assert_eq!(
                engine_lane.swl().map(|s| (s.ecnt(), s.bet().fcnt())),
                *swl_state,
                "lane {lane} SWL/BET state diverged (threads={threads})"
            );
        }

        // The merged per-lane page histograms are the report's histograms.
        let mut merged = flash_sim::LatencyStats::new();
        for lane in &run.lane_write_latency {
            merged.merge(lane);
        }
        assert_eq!(merged, reference_report.write_latency);

        // Full logical contents (after the state comparisons above, since
        // these reads perturb the engine lanes' counters).
        for lba in 0..pages {
            let channel = geometry.channel_of(lba) as usize;
            let got = run.lanes_mut()[channel]
                .read(geometry.lane_lba(lba))
                .unwrap();
            assert_eq!(
                got, oracle_contents[lba as usize],
                "content diverged at lba {lba} (threads={threads})"
            );
        }
    }
}

#[test]
fn ftl_one_channel_per_channel() {
    engine_matches_oracle(LayerKind::Ftl, 1, SwlCoordination::PerChannel);
}

#[test]
fn ftl_two_channels_per_channel() {
    engine_matches_oracle(LayerKind::Ftl, 2, SwlCoordination::PerChannel);
}

#[test]
fn ftl_four_channels_per_channel() {
    engine_matches_oracle(LayerKind::Ftl, 4, SwlCoordination::PerChannel);
}

#[test]
fn ftl_one_channel_global() {
    // One-channel global degrades to per-channel in both implementations.
    engine_matches_oracle(LayerKind::Ftl, 1, SwlCoordination::Global);
}

#[test]
fn ftl_two_channels_global() {
    engine_matches_oracle(LayerKind::Ftl, 2, SwlCoordination::Global);
}

#[test]
fn ftl_four_channels_global() {
    engine_matches_oracle(LayerKind::Ftl, 4, SwlCoordination::Global);
}

#[test]
fn nftl_two_channels_per_channel() {
    engine_matches_oracle(LayerKind::Nftl, 2, SwlCoordination::PerChannel);
}

#[test]
fn nftl_four_channels_global() {
    engine_matches_oracle(LayerKind::Nftl, 4, SwlCoordination::Global);
}

/// The wall-clock metrics layer observes, never perturbs: with the same
/// workload, the metered engine must be bit-identical to the compiled-out
/// engine and to the virtual-time oracle, and the metrics report itself
/// must account for every host op and every lane command exactly once.
#[test]
fn metrics_on_is_bit_identical_to_metrics_off_and_oracle() {
    let stop = StopCondition::events(EVENTS);
    let seed = 0x0B5E;
    let (reference_report, _) = reference(
        LayerKind::Ftl,
        4,
        SwlCoordination::PerChannel,
        1_000_000,
        stop,
        seed,
    );
    for threads in [1u32, 4] {
        let config = EngineConfig::default()
            .with_threads(threads)
            .with_queue_depth(16);
        let off = engine(
            LayerKind::Ftl,
            4,
            SwlCoordination::PerChannel,
            1_000_000,
            stop,
            seed,
            config,
        );
        let on = engine(
            LayerKind::Ftl,
            4,
            SwlCoordination::PerChannel,
            1_000_000,
            stop,
            seed,
            config.with_metrics(true),
        );
        assert_eq!(
            off.report, reference_report,
            "metrics-off diverged from the oracle (threads={threads})"
        );
        assert_eq!(
            on.report, off.report,
            "enabling metrics changed the simulation (threads={threads})"
        );
        assert!(off.metrics.is_none(), "metrics off must not report");
        let metrics = on.metrics.expect("metrics on must report");
        assert_eq!(metrics.snapshot.ops_submitted, EVENTS);
        assert_eq!(metrics.snapshot.ops_completed, EVENTS);
        let commands: u64 = metrics.snapshot.workers.iter().map(|w| w.commands).sum();
        assert_eq!(
            metrics.cmd_latency.count(),
            commands,
            "merged per-worker histograms must cover every command (threads={threads})"
        );
        assert_eq!(
            metrics.snapshot.lanes.iter().map(|l| l.commands).sum::<u64>(),
            commands,
            "lane tallies must partition worker tallies (threads={threads})"
        );
    }
}

/// The metered engine is reproducible: two metrics-on runs agree bit for
/// bit (the wall-clock numbers differ, the simulation does not).
#[test]
fn metered_runs_are_reproducible() {
    let stop = StopCondition::events(EVENTS);
    let config = EngineConfig::default()
        .with_threads(4)
        .with_queue_depth(32)
        .with_metrics(true);
    let first = engine(
        LayerKind::Ftl,
        4,
        SwlCoordination::PerChannel,
        1_000_000,
        stop,
        0x0B5F,
        config,
    );
    let second = engine(
        LayerKind::Ftl,
        4,
        SwlCoordination::PerChannel,
        1_000_000,
        stop,
        0x0B5F,
        config,
    );
    assert_eq!(first.report, second.report);
}

/// Wear-out must surface at exactly the same event with the same array-wide
/// block attribution, and the first-failure stop must halt both runs at the
/// same point.
#[test]
fn first_failure_stop_is_bit_identical() {
    let stop = StopCondition::events(300_000).or_first_failure();
    for channels in [2u32, 4] {
        let seed = 0xFA11 ^ u64::from(channels);
        let (reference_report, _) = reference(
            LayerKind::Ftl,
            channels,
            SwlCoordination::PerChannel,
            300,
            stop,
            seed,
        );
        assert!(
            reference_report.first_failure.is_some(),
            "endurance 300 must wear out within the horizon"
        );
        for threads in [1u32, 2] {
            let run = engine(
                LayerKind::Ftl,
                channels,
                SwlCoordination::PerChannel,
                300,
                stop,
                seed,
                EngineConfig::default()
                    .with_threads(threads)
                    .with_queue_depth(64),
            );
            assert_eq!(
                run.report, reference_report,
                "×{channels}ch threads={threads}: first-failure run diverged"
            );
        }
    }
}
