//! Flight-recorder integration: the always-on ring buffer must deliver a
//! usable postmortem when a `crashmc`-style power cut tears a run.
//!
//! The contract:
//!
//! 1. **Dump on cut** — the instant the device emits `PowerCut`, the
//!    recorder snapshots the ring (trigger included), without being asked.
//! 2. **Suffix of the truth** — the dumped events are exactly the last
//!    `capacity` events of the full log (the ring wrapped many times to get
//!    there), each line parseable at the current schema.
//! 3. **Spans survive** — the dump carries the span events leading into the
//!    cut, so `swlspan`-style tooling can see the op that was in flight.

use flash_sim::{Layer, LayerKind, SimConfig, SimError, TranslationLayer};
use flash_telemetry::{json, Event, FlightRecorder, VecSink, SCHEMA_VERSION};
use ftl::FtlError;
use nand::{CellKind, FaultPlan, Geometry, NandDevice, NandError};
use nftl::NftlError;
use swl_core::SwlConfig;

const BLOCKS: u32 = 24;
const PAGES: u32 = 8;
const RING: usize = 64;

fn is_power_cut(e: &SimError) -> bool {
    matches!(
        e,
        SimError::Ftl(FtlError::Device(NandError::PowerCut))
            | SimError::Nftl(NftlError::Device(NandError::PowerCut))
    )
}

/// Runs a GC/SWL-heavy overwrite workload on an instrumented layer until a
/// planned power cut fires (if one is armed) or the workload completes.
/// Returns the sink and whether the cut fired.
fn run<S: flash_telemetry::Sink>(kind: LayerKind, sink: S, cut_at: Option<u64>) -> (S, bool) {
    let device = NandDevice::new(
        Geometry::new(BLOCKS, PAGES, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
    .with_sink(sink);
    let cfg = SimConfig {
        fault: cut_at.map(|at| FaultPlan::new(1).with_power_cut(at, true)),
        ..SimConfig::default()
    };
    let mut layer = Layer::build(kind, device, Some(SwlConfig::new(8, 1).with_seed(7)), &cfg)
        .expect("build");
    let lbas = layer.logical_pages().min(28);
    let mut cut = false;
    'outer: for round in 0..10u64 {
        for step in 0..lbas {
            let lba = if step % 3 == 0 {
                step
            } else {
                (round + step) % 4
            };
            match layer.write(lba, (round << 32) | step) {
                Ok(()) => {}
                Err(e) if is_power_cut(&e) => {
                    cut = true;
                    break 'outer;
                }
                Err(e) => panic!("workload failed: {e}"),
            }
        }
    }
    (layer.into_device().into_sink(), cut)
}

/// Picks a cut point deep enough into the run that the ring has wrapped.
fn deep_cut_point(kind: LayerKind) -> u64 {
    let device = NandDevice::new(
        Geometry::new(BLOCKS, PAGES, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
    .with_fault_plan(FaultPlan::new(1));
    let cfg = SimConfig::default();
    let mut layer = Layer::build(
        kind,
        device,
        Some(SwlConfig::new(8, 1).with_seed(7)),
        &cfg,
    )
    .expect("build");
    let lbas = layer.logical_pages().min(28);
    for round in 0..10u64 {
        for step in 0..lbas {
            let lba = if step % 3 == 0 {
                step
            } else {
                (round + step) % 4
            };
            layer.write(lba, (round << 32) | step).expect("baseline");
        }
    }
    let total = layer.device().fault_ops();
    assert!(total > 100, "workload too small: {total} fault ops");
    (total * 3) / 4
}

#[test]
fn power_cut_dump_is_a_suffix_of_the_full_log() {
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let cut_at = deep_cut_point(kind);
        // Ground truth: identical deterministic run, unbounded sink.
        let (full, cut) = run(kind, VecSink::default(), Some(cut_at));
        assert!(cut, "{kind}: cut must land inside the workload");
        // Device under test: fixed-size flight recorder.
        let (recorder, cut) = run(kind, FlightRecorder::with_capacity(RING), Some(cut_at));
        assert!(cut, "{kind}: recorder run must see the same cut");

        // The ring wrapped (the workload is much bigger than RING) and the
        // cut produced exactly one automatic dump.
        assert!(
            recorder.seen() > RING as u64 * 2,
            "{kind}: workload too small to wrap the ring"
        );
        assert_eq!(recorder.dumps().len(), 1, "{kind}: one dump per cut");
        let dump = &recorder.dumps()[0];
        let dump_lines: Vec<&str> = dump.lines().collect();
        assert_eq!(dump_lines.len(), RING + 1, "{kind}: meta + full ring");

        // Header line is a valid meta at the current schema.
        match json::parse_line(dump_lines[0]).expect("meta parses") {
            Event::Meta { version, .. } => assert_eq!(version, SCHEMA_VERSION),
            other => panic!("{kind}: dump must start with meta, got {other:?}"),
        }

        // The ring contents are exactly the RING non-meta events of the
        // deterministic full log up to and including the trigger, in order.
        // (The log itself continues past the cut by one event: the layer's
        // error path closes the in-flight root span to keep the stream
        // balanced, which lands after the dump was taken.)
        let full_lines: Vec<String> = full
            .events
            .iter()
            .filter(|e| !matches!(e, Event::Meta { .. }))
            .map(|e| {
                let mut line = String::new();
                json::write_line(&mut line, e);
                line
            })
            .collect();
        assert_eq!(full.events.len() as u64, recorder.seen(), "{kind}");
        let cut_pos = full_lines
            .iter()
            .rposition(|l| l.contains("\"e\":\"power_cut\""))
            .expect("full log records the cut");
        let suffix = &full_lines[cut_pos + 1 - RING..=cut_pos];
        assert_eq!(&dump_lines[1..], suffix, "{kind}: dump must be the log's suffix");
        assert!(
            dump_lines.last().unwrap().contains("\"e\":\"power_cut\""),
            "{kind}: trigger event must close the dump"
        );

        // The postmortem context is usable: span events made it into the
        // window, and every line round-trips through the codec.
        assert!(
            dump_lines.iter().any(|l| l.contains("\"e\":\"span_begin\"")),
            "{kind}: dump must carry the spans leading into the cut"
        );
        for line in &dump_lines[1..] {
            json::parse_line(line).expect("ring line parses");
        }
    }
}

#[test]
fn clean_run_dumps_only_on_request() {
    let (recorder, cut) = run(LayerKind::Ftl, FlightRecorder::with_capacity(RING), None);
    assert!(!cut);
    assert!(recorder.dumps().is_empty(), "no fault, no automatic dump");
    // An explicit dump still snapshots the newest window.
    let dump = recorder.dump();
    assert_eq!(dump.lines().count(), RING + 1);
    assert!(dump.lines().next().unwrap().contains("\"e\":\"meta\""));
}
