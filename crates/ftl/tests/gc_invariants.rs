//! Garbage-collection and wear invariants of the page-mapping FTL under
//! randomized workloads.

use proptest::prelude::*;

use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, Geometry, NandDevice, PageState};
use swl_core::SwlConfig;

fn device(blocks: u32, pages: u32) -> NandDevice {
    NandDevice::new(
        Geometry::new(blocks, pages, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

/// Recounts valid pages on the device and checks they equal the number of
/// distinct live LBAs.
fn assert_valid_page_conservation(ftl: &PageMappedFtl, live_lbas: usize) {
    let d = ftl.device();
    let valid: u64 = (0..d.geometry().blocks())
        .map(|b| u64::from(d.block(b).valid_pages()))
        .sum();
    assert_eq!(
        valid, live_lbas as u64,
        "every live LBA owns exactly one valid physical page"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Valid-page conservation: however GC and SWL shuffle data, the number
    /// of valid pages equals the number of live LBAs.
    #[test]
    fn valid_pages_equal_live_lbas(
        writes in prop::collection::vec((0u64..100, any::<u64>()), 1..600),
        with_swl in any::<bool>(),
    ) {
        let mut ftl = if with_swl {
            PageMappedFtl::with_swl(device(24, 8), FtlConfig::default(), SwlConfig::new(5, 0))
                .unwrap()
        } else {
            PageMappedFtl::new(device(24, 8), FtlConfig::default()).unwrap()
        };
        let mut live = std::collections::HashSet::new();
        for (lba, data) in writes {
            ftl.write(lba, data).unwrap();
            live.insert(lba);
        }
        assert_valid_page_conservation(&ftl, live.len());
    }

    /// Spare areas always agree with the forward map for live data.
    #[test]
    fn spare_areas_name_live_lbas(
        writes in prop::collection::vec(0u64..64, 1..400),
    ) {
        let mut ftl = PageMappedFtl::new(device(16, 8), FtlConfig::default()).unwrap();
        for (i, lba) in writes.iter().enumerate() {
            ftl.write(*lba, i as u64).unwrap();
        }
        let d = ftl.device();
        for b in 0..d.geometry().blocks() {
            for (page, state) in d.block(b).page_states() {
                if state == PageState::Valid {
                    let lba = d.block(b).spare(page).lba().expect("live page has lba");
                    prop_assert!(lba < ftl.logical_pages());
                }
            }
        }
    }

    /// Free-block accounting never underflows the reserve while writes
    /// succeed, and erase counters are internally consistent.
    #[test]
    fn counters_are_consistent(
        writes in prop::collection::vec((0u64..150, any::<u64>()), 1..800),
        with_swl in any::<bool>(),
    ) {
        let mut ftl = if with_swl {
            PageMappedFtl::with_swl(device(32, 8), FtlConfig::default(), SwlConfig::new(4, 1))
                .unwrap()
        } else {
            PageMappedFtl::new(device(32, 8), FtlConfig::default()).unwrap()
        };
        for (lba, data) in &writes {
            ftl.write(*lba, *data).unwrap();
        }
        let c = ftl.counters();
        prop_assert_eq!(c.host_writes, writes.len() as u64);
        prop_assert_eq!(c.total_erases(), ftl.device().counters().erases);
        // Every live copy was a device program beyond the host writes.
        prop_assert_eq!(
            ftl.device().counters().programs,
            c.host_writes + c.total_live_copies()
        );
    }

    /// Wear spread: with SWL at an aggressive threshold, the max/mean wear
    /// ratio stays bounded under a pathological single-page workload.
    #[test]
    fn swl_bounds_wear_ratio(hot_lba in 0u64..100, rounds in 300u64..900) {
        let mut ftl =
            PageMappedFtl::with_swl(device(16, 8), FtlConfig::default(), SwlConfig::new(3, 0))
                .unwrap();
        // Pin some cold data first.
        for lba in 100..120u64 {
            ftl.write(lba, lba).unwrap();
        }
        for round in 0..rounds {
            ftl.write(hot_lba, round).unwrap();
        }
        let stats = ftl.device().erase_stats();
        prop_assert!(
            stats.max_over_mean() < 4.0,
            "wear ratio too high: {stats}"
        );
    }
}
