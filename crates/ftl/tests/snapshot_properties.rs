//! Snapshot and merge invariants of the page-mapping FTL under randomized
//! workloads.
//!
//! Two properties anchor the copy-on-write design:
//!
//! 1. **Refcount conservation** — at every step, the sum of physical-page
//!    refcounts equals the number of live mapping entries across the head
//!    and all snapshots plus deferred merge releases
//!    ([`SnapshotAudit`](ftl::SnapshotAudit)'s identity), and a full
//!    device walk confirms valid-on-device ⇔ referenced.
//! 2. **Differential oracle** — a build with snapshots enabled but never
//!    used behaves bit-identically (counters, erase counts, contents) to a
//!    snapshot-free build over the same data blocks, so the feature costs
//!    nothing when off.

use std::collections::HashMap;

use proptest::prelude::*;

use ftl::{FtlConfig, FtlError, PageMappedFtl, SnapshotConfig};
use nand::{CellKind, Geometry, NandDevice};

const LBAS: u64 = 24;

fn device(blocks: u32, pages: u32) -> NandDevice {
    NandDevice::new(
        Geometry::new(blocks, pages, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

fn snap_config() -> FtlConfig {
    FtlConfig::new()
        .with_overprovision_blocks(4)
        .with_snapshots(SnapshotConfig::new().with_manifest_blocks(3))
}

/// RAM model of the logical state: the head image plus one frozen image per
/// live snapshot, in creation order.
#[derive(Default)]
struct Model {
    head: HashMap<u64, u64>,
    snaps: Vec<(u64, HashMap<u64, u64>)>,
}

impl Model {
    fn snap_index(&self, pick: u64) -> Option<usize> {
        if self.snaps.is_empty() {
            None
        } else {
            Some((pick % self.snaps.len() as u64) as usize)
        }
    }

    /// Merge semantics: the origin overlaid with the snapshot image, with
    /// any host write made after `merge_begin` winning over both.
    fn apply_merge(&mut self, idx: usize, post_writes: &[(u64, u64)]) {
        let (_, image) = self.snaps.remove(idx);
        for (lba, data) in image {
            self.head.insert(lba, data);
        }
        for &(lba, data) in post_writes {
            self.head.insert(lba, data);
        }
    }
}

/// Checks the audit identity and (full walk) device/refcount agreement.
fn assert_refcounts(ftl: &PageMappedFtl, deep: bool) -> Result<(), TestCaseError> {
    let audit = ftl.snapshot_audit().expect("snapshots are enabled");
    prop_assert_eq!(
        audit.refcount_sum,
        audit.mapping_count + audit.pending_merge,
        "refcount sum must equal live mappings plus deferred merge releases"
    );
    if deep {
        ftl.check_snapshot_consistency();
    }
    Ok(())
}

/// Reads the full logical space back and compares against a model image.
fn assert_head_matches(
    ftl: &mut PageMappedFtl,
    model: &HashMap<u64, u64>,
) -> Result<(), TestCaseError> {
    for lba in 0..LBAS {
        prop_assert_eq!(
            ftl.read(lba).unwrap(),
            model.get(&lba).copied(),
            "head diverged from model at lba {}",
            lba
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Refcount conservation under a full op mix: writes, trims, snapshot
    /// create/delete/clone, offline merges, and online merges with host
    /// writes racing the merge cursor. `ManifestFull` is a legal refusal
    /// (the verb must leave all state untouched), so the model simply skips
    /// the op when the FTL reports it.
    #[test]
    fn refcounts_equal_live_mappings_at_every_step(
        ops in prop::collection::vec((0u64..10, 0u64..LBAS, any::<u64>()), 1..90),
    ) {
        let mut ftl = PageMappedFtl::new(device(16, 16), snap_config()).unwrap();
        let mut model = Model::default();
        let mut next_id = 1u64;
        // Trim is advisory and RAM-only: when the trimmed page is pinned by
        // a snapshot it stays valid on device, and a later mount may
        // legitimately resurrect the head mapping. Track whether that can
        // happen so the post-remount check knows which LBAs are exact.
        let mut pinned_trim = false;

        for (step, (kind, lba, data)) in ops.into_iter().enumerate() {
            match kind {
                // Writes dominate the mix, as in any real workload.
                0..=3 => {
                    ftl.write(lba, data).unwrap();
                    model.head.insert(lba, data);
                }
                4 => {
                    ftl.trim(lba).unwrap();
                    if let Some(v) = model.head.remove(&lba) {
                        if model.snaps.iter().any(|(_, img)| img.get(&lba) == Some(&v)) {
                            pinned_trim = true;
                        }
                    }
                }
                5 => {
                    // Cap live snapshots so pinned pages cannot outgrow the
                    // physical space of the small test geometry.
                    if model.snaps.len() < 3 {
                        match ftl.snapshot_create(next_id) {
                            Ok(()) => {
                                model.snaps.push((next_id, model.head.clone()));
                                next_id += 1;
                            }
                            Err(FtlError::ManifestFull) => {}
                            Err(e) => panic!("snapshot_create failed: {e}"),
                        }
                    }
                }
                6 => {
                    if let Some(idx) = model.snap_index(data) {
                        ftl.snapshot_delete(model.snaps[idx].0).unwrap();
                        model.snaps.remove(idx);
                    }
                }
                7 => {
                    if let Some(idx) = model.snap_index(data) {
                        match ftl.snapshot_clone(model.snaps[idx].0) {
                            Ok(()) => model.head = model.snaps[idx].1.clone(),
                            Err(FtlError::ManifestFull) => {}
                            Err(e) => panic!("snapshot_clone failed: {e}"),
                        }
                    }
                }
                8 => {
                    if let Some(idx) = model.snap_index(data) {
                        match ftl.merge_offline(model.snaps[idx].0) {
                            Ok(()) => model.apply_merge(idx, &[]),
                            Err(FtlError::ManifestFull) => {}
                            Err(e) => panic!("merge_offline failed: {e}"),
                        }
                    }
                }
                _ => {
                    // Online merge: host writes land before the cursor
                    // starts, behind it mid-merge, and the merge must still
                    // honour all of them over the snapshot image.
                    if let Some(idx) = model.snap_index(data) {
                        match ftl.merge_begin(model.snaps[idx].0) {
                            Ok(()) => {
                                let w1 = (lba, data ^ 0xA5);
                                let w2 = ((lba + 7) % LBAS, data ^ 0x5A);
                                ftl.write(w1.0, w1.1).unwrap();
                                ftl.merge_step(8).unwrap();
                                ftl.write(w2.0, w2.1).unwrap();
                                while !ftl.merge_step(8).unwrap() {}
                                ftl.merge_commit().unwrap();
                                model.apply_merge(idx, &[w1, w2]);
                            }
                            Err(FtlError::ManifestFull) => {}
                            Err(e) => panic!("merge_begin failed: {e}"),
                        }
                    }
                }
            }
            // The audit identity must hold after *every* operation; the
            // full device walk is heavier, so it runs periodically.
            assert_refcounts(&ftl, step % 7 == 0)?;
        }

        // Final deep check, then contents: head and every snapshot image.
        assert_refcounts(&ftl, true)?;
        assert_head_matches(&mut ftl, &model.head)?;
        for (id, image) in &model.snaps {
            for lba in 0..LBAS {
                prop_assert_eq!(
                    ftl.read_snapshot(*id, lba).unwrap(),
                    image.get(&lba).copied(),
                    "snapshot {} diverged from model at lba {}",
                    *id,
                    lba
                );
            }
        }

        // Remount from the manifest and confirm nothing was lost.
        let config = snap_config();
        let mut ftl = PageMappedFtl::mount(ftl.into_device(), config).unwrap();
        assert_refcounts(&ftl, true)?;
        for lba in 0..LBAS {
            match model.head.get(&lba) {
                Some(&v) => prop_assert_eq!(
                    ftl.read(lba).unwrap(),
                    Some(v),
                    "mapped lba {} must survive remount",
                    lba
                ),
                // A trimmed LBA whose page was snapshot-pinned may be
                // resurrected at mount (trim is advisory, see host_trim);
                // without such a trim the LBA must stay unmapped.
                None if !pinned_trim => prop_assert_eq!(
                    ftl.read(lba).unwrap(),
                    None,
                    "unmapped lba {} must stay unmapped across remount",
                    lba
                ),
                None => {}
            }
        }
        let mut ids = ftl.snapshot_ids();
        ids.sort_unstable();
        let mut expect: Vec<u64> = model.snaps.iter().map(|(id, _)| *id).collect();
        expect.sort_unstable();
        prop_assert_eq!(ids, expect, "snapshot set must survive remount");
        for (id, image) in &model.snaps {
            for lba in 0..LBAS {
                prop_assert_eq!(
                    ftl.read_snapshot(*id, lba).unwrap(),
                    image.get(&lba).copied(),
                    "snapshot {} image changed across remount at lba {}",
                    *id,
                    lba
                );
            }
        }
    }

    /// A snapshot-capable build that never takes a snapshot is
    /// bit-identical to a snapshot-free build: same counters, same per-block
    /// erase counts, same contents. The manifest reserve sits above the data
    /// blocks, so the enabled device carries extra blocks to keep the data
    /// region the same size.
    #[test]
    fn unused_snapshot_mode_is_bit_identical_to_plain_build(
        ops in prop::collection::vec((0u64..8, 0u64..LBAS, any::<u64>()), 1..300),
    ) {
        const DATA_BLOCKS: u32 = 12;
        let mut plain = PageMappedFtl::new(
            device(DATA_BLOCKS, 16),
            FtlConfig::new().with_overprovision_blocks(4),
        )
        .unwrap();
        let reserved = snap_config().reserved_blocks();
        let mut snappy =
            PageMappedFtl::new(device(DATA_BLOCKS + reserved, 16), snap_config()).unwrap();
        prop_assert_eq!(plain.logical_pages(), snappy.logical_pages());

        for (kind, lba, data) in ops {
            if kind < 7 {
                plain.write(lba, data).unwrap();
                snappy.write(lba, data).unwrap();
            } else {
                plain.trim(lba).unwrap();
                snappy.trim(lba).unwrap();
            }
        }

        prop_assert_eq!(plain.counters(), snappy.counters());
        for b in 0..DATA_BLOCKS {
            prop_assert_eq!(
                plain.device().block(b).erase_count(),
                snappy.device().block(b).erase_count(),
                "erase counts diverged at block {}",
                b
            );
        }
        for lba in 0..LBAS {
            prop_assert_eq!(plain.read(lba).unwrap(), snappy.read(lba).unwrap());
        }
    }
}
