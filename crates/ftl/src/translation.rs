//! The page-mapping translation layer: allocator, cleaner, SWL hook.

use flash_telemetry::{Cause, Event, NullSink, Sink, SpanKind, SpanTracker};
use hotid::MultiHashIdentifier;
use nand::{FreeBlockLadder, NandDevice, PageAddr, SpareArea, VictimIndex};
use swl_core::{LevelOutcome, SwLeveler, SwlCleaner, SwlConfig};

use crate::config::FtlConfig;
use crate::counters::FtlCounters;
use crate::error::FtlError;
use crate::merge::{MappingStream, MergeSource, MergeStream, UNMAPPED};
use crate::snapshot::{self, EpochRanks, MergeState, SnapBook, SnapEntry};

/// Which active block a write is steered to under hot/cold separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stream {
    Cold,
    Hot,
}

/// Core FTL state. Split from [`PageMappedFtl`] so the SW Leveler can borrow
/// it as a [`SwlCleaner`] while the leveler itself lives next to it.
#[derive(Debug)]
pub(crate) struct Inner<S: Sink = NullSink> {
    device: NandDevice<S>,
    config: FtlConfig,
    logical_pages: u64,
    /// Logical page → flat physical page index (`UNMAPPED` when unmapped).
    map: Vec<u32>,
    /// Log-structured write frontier: `(block, next free page)`.
    frontier: Option<(u32, u32)>,
    /// Second frontier for hot data under hot/cold separation.
    hot_frontier: Option<(u32, u32)>,
    /// On-line hot-data identifier, when separation is enabled.
    hot: Option<MultiHashIdentifier>,
    /// Free (erased) blocks bucketed by wear; allocation pops the lowest.
    free: FreeBlockLadder,
    is_free: Vec<bool>,
    /// Incremental index behind the greedy victim scan.
    victims: VictimIndex,
    /// Cyclic cursor of the greedy victim scan.
    gc_scan: u32,
    free_target: u32,
    counters: FtlCounters,
    /// While set, erases and copies are attributed to static wear leveling.
    in_swl: bool,
    /// Blocks retired by bad-block management (wear-out under
    /// `WearPolicy::FailWornBlocks`); never allocated or collected again.
    retired: Vec<bool>,
    /// Causal-span bookkeeping (ids + open stack); dormant under `NullSink`.
    spans: SpanTracker,
    /// First block of the snapshot-manifest reserve (`== blocks` when
    /// snapshots are disabled, so `b >= reserved_base` is the reserve test).
    reserved_base: u32,
    /// Copy-on-write snapshot book, when snapshots are enabled.
    snap: Option<SnapBook>,
}

impl<S: Sink> Inner<S> {
    fn new(device: NandDevice<S>, config: FtlConfig) -> Result<Self, FtlError> {
        let geometry = device.geometry();
        let blocks = geometry.blocks();
        assert!(
            geometry.total_pages() < u64::from(u32::MAX),
            "device too large for the u32 translation table"
        );
        let reserved = config.reserved_blocks();
        assert!(
            reserved < blocks,
            "snapshot manifest reserve ({reserved} blocks) exceeds the chip"
        );
        // Manifest blocks sit at the top of the chip, outside the data area:
        // never in the free ladder, never GC/SWL victims, not exported.
        let data_blocks = blocks - reserved;
        let overprovision = config
            .overprovision_blocks
            .min(data_blocks.saturating_sub(1));
        let logical_pages =
            u64::from(data_blocks - overprovision) * u64::from(geometry.pages_per_block());
        let free_target = config.free_target(blocks);
        let hot = match config.hot_data {
            Some(hd) => Some(MultiHashIdentifier::new(hd).map_err(FtlError::HotData)?),
            None => None,
        };
        let snap = match config.snapshots {
            Some(cfg) => {
                let book = SnapBook::new(cfg, geometry.total_pages() as usize);
                // Even an empty manifest record must fit one buffer.
                if SnapBook::record_words(1, std::iter::empty()) > book.buffer_words(geometry.pages_per_block()) {
                    return Err(FtlError::ManifestFull);
                }
                Some(book)
            }
            None => None,
        };
        let mut free = FreeBlockLadder::new();
        let mut is_free = vec![true; blocks as usize];
        for b in 0..data_blocks {
            free.push(b, device.block(b).erase_count());
        }
        for b in data_blocks..blocks {
            is_free[b as usize] = false;
        }
        Ok(Self {
            map: vec![UNMAPPED; logical_pages as usize],
            free,
            is_free,
            victims: VictimIndex::new(blocks),
            frontier: None,
            hot_frontier: None,
            hot,
            gc_scan: 0,
            free_target,
            counters: FtlCounters::default(),
            logical_pages,
            retired: vec![false; blocks as usize],
            device,
            config,
            in_swl: false,
            spans: SpanTracker::new(),
            reserved_base: data_blocks,
            snap,
        })
    }

    /// Opens a causal span stamped with the device's cumulative busy time.
    /// Returns the span id, or 0 (which [`Self::span_end`] ignores) when the
    /// sink is compiled out — the disabled path is two constant branches.
    fn span_begin(&mut self, kind: SpanKind) -> u64 {
        if !S::ENABLED {
            return 0;
        }
        let at_ns = self.device.busy_ns();
        let (id, parent) = self.spans.begin();
        self.device.sink_mut().event(Event::SpanBegin {
            id,
            parent,
            kind,
            at_ns,
        });
        id
    }

    /// Closes span `id`, first closing any descendants an error path left
    /// open so the emitted stream stays balanced.
    fn span_end(&mut self, id: u64) {
        if !S::ENABLED || id == 0 {
            return;
        }
        let at_ns = self.device.busy_ns();
        let Self { spans, device, .. } = self;
        spans.end(id, |popped| {
            device.sink_mut().event(Event::SpanEnd { id: popped, at_ns });
        });
    }

    /// Rebuilds the translation table from the spare areas of an existing
    /// chip — the firmware mount path. Partially written blocks are left
    /// closed (their free pages are reclaimed when GC erases them); the
    /// write frontier restarts on a fresh block.
    fn mount(device: NandDevice<S>, config: FtlConfig) -> Result<Self, FtlError> {
        let mut inner = Self::new(device, config)?;
        inner.free.clear();
        if inner.snap.is_some() {
            inner.load_manifest()?;
        }
        let geometry = inner.device.geometry();
        // With snapshots, several mapping sets (the head plus every
        // snapshot) resolve concurrently: a valid page belongs to each set
        // whose epoch list contains the page's epoch, and within a set the
        // earliest-ranked epoch wins an LBA. Without snapshots there is one
        // set whose only epoch is 0, and any duplicate is a conflict.
        let ranks: Option<(EpochRanks, Vec<EpochRanks>)> = inner.snap.as_ref().map(|book| {
            (
                EpochRanks::new(&book.head_epochs),
                book.snaps.iter().map(|s| EpochRanks::new(&s.epochs)).collect(),
            )
        });
        let snap_count = inner.snap.as_ref().map_or(0, |b| b.snaps.len());
        // best[0] = head candidates, best[1..] = per-snapshot candidates:
        // lba → (rank, flat page).
        let mut best: Vec<Vec<Option<(u32, u32)>>> =
            vec![vec![None; inner.logical_pages as usize]; 1 + snap_count];
        // Spare-status epoch of every valid page, gathered during the scan
        // so the apply phase never re-reads spares.
        let mut epoch_scratch = vec![0u32; geometry.total_pages() as usize];
        for b in 0..inner.reserved_base {
            let block = inner.device.block(b);
            if block.spare(0).is_bad_block_marker() {
                // Retired in an earlier session; the marker survives on
                // flash. Retired blocks hold no valid pages, so nothing
                // needs mapping.
                inner.is_free[b as usize] = false;
                inner.retired[b as usize] = true;
                continue;
            }
            if block.valid_pages() == 0 && block.invalid_pages() == 0 {
                let wear = block.erase_count();
                inner.is_free[b as usize] = true;
                inner.free.push(b, wear);
                continue;
            }
            inner.is_free[b as usize] = false;
            for (page, state) in block.page_states() {
                if !state.is_valid() {
                    continue;
                }
                let addr = PageAddr::new(b, page);
                let spare = block.spare(page);
                let lba = spare.lba().ok_or(FtlError::CorruptSpare { addr })?;
                if lba >= inner.logical_pages {
                    return Err(FtlError::CorruptSpare { addr });
                }
                let flat = addr.flat_index(&geometry) as u32;
                let Some((head_ranks, snap_ranks)) = ranks.as_ref() else {
                    if inner.map[lba as usize] != UNMAPPED {
                        return Err(FtlError::MountConflict { lba });
                    }
                    inner.map[lba as usize] = flat;
                    continue;
                };
                epoch_scratch[flat as usize] = spare.status();
                for (mi, r) in std::iter::once(head_ranks)
                    .chain(snap_ranks.iter())
                    .enumerate()
                {
                    let Some(rank) = r.rank(spare.status()) else {
                        continue;
                    };
                    let slot = &mut best[mi][lba as usize];
                    match *slot {
                        // Two valid pages in the same epoch claiming one
                        // LBA: corruption, exactly like the plain conflict.
                        Some((prev, _)) if prev == rank => {
                            return Err(FtlError::MountConflict { lba });
                        }
                        Some((prev, _)) if prev < rank => {}
                        _ => *slot = Some((rank, flat)),
                    }
                }
            }
        }
        if inner.snap.is_some() {
            let Self { snap, map, .. } = &mut inner;
            let book = snap.as_mut().expect("snapshot mode");
            book.epoch_of = epoch_scratch;
            let mut maps = best.into_iter();
            for (lba, slot) in maps.next().expect("head candidates").into_iter().enumerate() {
                if let Some((_, flat)) = slot {
                    map[lba] = flat;
                    book.refs[flat as usize] += 1;
                }
            }
            for (si, candidates) in maps.enumerate() {
                for (lba, slot) in candidates.into_iter().enumerate() {
                    if let Some((_, flat)) = slot {
                        book.snaps[si].map[lba] = flat;
                        book.refs[flat as usize] += 1;
                    }
                }
            }
            // Cleanup: a valid page no mapping set references is an orphan —
            // an invalidation lost to a power cut (e.g. between a manifest
            // commit and its deferred invalidations). Finish the job; the
            // invalidate is an uncuttable spare-status program.
            let reserved_base = inner.reserved_base;
            for b in 0..reserved_base {
                for page in 0..geometry.pages_per_block() {
                    if !inner.device.block(b).page_state(page).is_valid() {
                        continue;
                    }
                    let addr = PageAddr::new(b, page);
                    let flat = addr.flat_index(&geometry) as usize;
                    if inner.snap.as_ref().expect("snapshot mode").refs[flat] == 0 {
                        inner.device.invalidate(addr)?;
                    }
                }
            }
        }
        for b in 0..geometry.blocks() {
            inner.refresh_victim(b);
        }
        Ok(inner)
    }

    fn host_write(&mut self, lba: u64, data: u64, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        if lba >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        match self.ensure_space(erased) {
            Ok(()) => {}
            // Below the free target with nothing reclaimable yet: keep
            // writing into the reserve and fail only when allocation is
            // truly impossible.
            Err(FtlError::NoReclaimableSpace) => {
                let pages_per_block = self.device.geometry().pages_per_block();
                let frontier_has_room = matches!(self.frontier, Some((_, p)) if p < pages_per_block)
                    || matches!(self.hot_frontier, Some((_, p)) if p < pages_per_block);
                if !frontier_has_room && self.free.is_empty() {
                    return Err(FtlError::NoReclaimableSpace);
                }
            }
            Err(other) => return Err(other),
        }
        let stream = match self.hot.as_mut() {
            Some(identifier) => {
                if identifier.record_write(lba) {
                    Stream::Hot
                } else {
                    Stream::Cold
                }
            }
            None => Stream::Cold,
        };
        let epoch = self.snap.as_ref().map_or(0, SnapBook::head_epoch);
        let dst = self.program_remap(stream, data, lba, epoch)?;
        let flat = dst.flat_index(&self.device.geometry()) as u32;
        if let Some(book) = self.snap.as_mut() {
            book.refs[flat as usize] += 1;
            book.epoch_of[flat as usize] = epoch;
        }
        let old = self.map[lba as usize];
        if old != UNMAPPED {
            self.release_page(old)?;
        }
        self.map[lba as usize] = flat;
        self.counters.host_writes += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::HostWrite { lba });
        }
        Ok(())
    }

    fn host_read(&mut self, lba: u64) -> Result<Option<u64>, FtlError> {
        if lba >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        self.counters.host_reads += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::HostRead { lba });
        }
        let entry = self.map[lba as usize];
        if entry == UNMAPPED {
            return Ok(None);
        }
        let addr = PageAddr::from_flat_index(&self.device.geometry(), u64::from(entry));
        Ok(Some(self.device.read(addr)?.data))
    }

    fn host_trim(&mut self, lba: u64) -> Result<(), FtlError> {
        if lba >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        let entry = self.map[lba as usize];
        if entry != UNMAPPED {
            // With snapshots, a pinned page survives the trim (the snapshot
            // still references it); only the head's reference is dropped.
            // Trim is advisory and RAM-only either way: a crash before the
            // page is overwritten can resurrect the mapping at mount.
            self.release_page(entry)?;
            self.map[lba as usize] = UNMAPPED;
        }
        self.counters.trims += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::HostTrim { lba });
        }
        Ok(())
    }

    /// Runs the Cleaner until the free pool meets its target (the paper's
    /// "free blocks under 0.2 %" trigger).
    fn ensure_space(&mut self, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        let mut guard = 0u32;
        while (self.free.len() as u32) < self.free_target {
            self.collect_one(erased)?;
            guard += 1;
            if guard > self.device.geometry().blocks() * 2 {
                return Err(FtlError::FreeExhausted);
            }
        }
        Ok(())
    }

    /// Next free page of the stream's frontier, opening a fresh block when
    /// needed. Hot/cold separation keeps two active blocks; without it
    /// everything flows through the cold frontier.
    fn alloc_page(&mut self, stream: Stream) -> Result<PageAddr, FtlError> {
        let pages_per_block = self.device.geometry().pages_per_block();
        let frontier = match stream {
            Stream::Cold => &mut self.frontier,
            Stream::Hot => &mut self.hot_frontier,
        };
        match *frontier {
            Some((block, page)) if page < pages_per_block => {
                *frontier = Some((block, page + 1));
                Ok(PageAddr::new(block, page))
            }
            _ => {
                let closed = frontier.map(|(b, _)| b);
                let block = self.pop_freshest_free()?;
                let frontier = match stream {
                    Stream::Cold => &mut self.frontier,
                    Stream::Hot => &mut self.hot_frontier,
                };
                *frontier = Some((block, 1));
                // The closed block becomes a GC candidate and the fresh one
                // stops being one; keep the victim index in step.
                if let Some(b) = closed {
                    self.refresh_victim(b);
                }
                self.refresh_victim(block);
                Ok(PageAddr::new(block, 0))
            }
        }
    }

    /// Programs one page at the stream's frontier, retrying with a remap
    /// when the device reports an injected program failure: the grown-bad
    /// frontier block is closed (its valid pages become a normal GC victim,
    /// and its eventual erase failure retires it) and the write moves to a
    /// fresh frontier. Terminates because every retry consumes a free block
    /// and [`Self::alloc_page`] fails once the pool runs dry.
    fn program_remap(
        &mut self,
        stream: Stream,
        data: u64,
        lba: u64,
        epoch: u32,
    ) -> Result<PageAddr, FtlError> {
        loop {
            let dst = self.alloc_page(stream)?;
            // Epoch 0 is `STATUS_LIVE`: without snapshots this is exactly
            // `SpareArea::valid(lba)`.
            match self.device.program(dst, data, SpareArea::with_status(lba, epoch)) {
                Ok(()) => return Ok(dst),
                Err(nand::NandError::ProgramFailed { .. }) => {
                    if self.frontier.map(|(b, _)| b) == Some(dst.block) {
                        self.frontier = None;
                    }
                    if self.hot_frontier.map(|(b, _)| b) == Some(dst.block) {
                        self.hot_frontier = None;
                    }
                    self.refresh_victim(dst.block);
                }
                Err(other) => return Err(other.into()),
            }
        }
    }

    /// Pops the free block with the lowest erase count — the dynamic wear
    /// leveling policy of the paper's Cleaner. O(1) amortized via the wear
    /// bucket ladder.
    fn pop_freshest_free(&mut self) -> Result<u32, FtlError> {
        let Some(block) = self.free.pop_min() else {
            return Err(FtlError::FreeExhausted);
        };
        self.is_free[block as usize] = false;
        Ok(block)
    }

    /// Re-reports one block to the victim index. Must be called after any
    /// event that may change the block's GC stats or eligibility: page
    /// invalidation, erase, retirement, or a frontier opening/closing on it.
    /// Drops one mapping-set reference from flat page `p`, device-
    /// invalidating it (and re-reporting its block to the victim index)
    /// when it becomes unreferenced. A snapshot-free FTL invalidates
    /// unconditionally: every mapped page has exactly one reference.
    fn release_page(&mut self, p: u32) -> Result<(), FtlError> {
        let gone = match self.snap.as_mut() {
            Some(book) => book.decref(p),
            None => true,
        };
        if gone {
            let addr = PageAddr::from_flat_index(&self.device.geometry(), u64::from(p));
            self.device.invalidate(addr)?;
            self.refresh_victim(addr.block);
        }
        Ok(())
    }

    fn refresh_victim(&mut self, block: u32) {
        let eligible = !self.is_free[block as usize]
            && !self.retired[block as usize]
            && block < self.reserved_base
            && self.frontier.map(|(b, _)| b) != Some(block)
            && self.hot_frontier.map(|(b, _)| b) != Some(block);
        let (invalid, valid) = {
            let blk = self.device.block(block);
            (blk.invalid_pages(), blk.valid_pages())
        };
        self.victims.update(block, eligible, invalid, valid);
    }

    /// The pre-index linear victim scan, kept as the oracle the incremental
    /// [`VictimIndex`] is checked against under `debug_assertions`. Pure:
    /// does not advance `gc_scan`.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn reference_select_victim(&self) -> Option<u32> {
        let blocks = self.device.geometry().blocks();
        let frontier_block = self.frontier.map(|(b, _)| b);
        let hot_frontier_block = self.hot_frontier.map(|(b, _)| b);
        let mut fallback: Option<(u32, u32)> = None; // (invalid, block)
        for step in 0..blocks {
            let b = (self.gc_scan + step) % blocks;
            if self.is_free[b as usize]
                || self.retired[b as usize]
                || b >= self.reserved_base
                || Some(b) == frontier_block
                || Some(b) == hot_frontier_block
            {
                continue;
            }
            let blk = self.device.block(b);
            let invalid = blk.invalid_pages();
            if invalid == 0 {
                continue;
            }
            if invalid > blk.valid_pages() {
                return Some(b);
            }
            if fallback.is_none_or(|(best, _)| invalid > best) {
                fallback = Some((invalid, b));
            }
        }
        fallback.map(|(_, b)| b)
    }

    /// Greedy cost/benefit victim selection, cyclic from `gc_scan`: the
    /// first block whose invalid pages (benefit) outnumber its valid pages
    /// (cost); if none qualifies, the block with the most invalid pages.
    /// Answered by the incremental [`VictimIndex`] instead of a linear scan.
    fn select_victim(&mut self) -> Result<u32, FtlError> {
        let blocks = self.device.geometry().blocks();
        let choice = self.victims.select(self.gc_scan);
        debug_assert_eq!(
            choice,
            self.reference_select_victim(),
            "victim index diverged from the linear-scan oracle"
        );
        if let Some(b) = choice {
            self.gc_scan = (b + 1) % blocks;
            return Ok(b);
        }
        // Last resort: a frontier itself may be the only block holding
        // invalid pages (tiny chips, trim-heavy workloads). Close it and
        // recycle it.
        if let Some(b) = self.frontier.map(|(b, _)| b) {
            if self.device.block(b).invalid_pages() > 0 {
                self.frontier = None;
                self.refresh_victim(b);
                self.gc_scan = (b + 1) % blocks;
                return Ok(b);
            }
        }
        if let Some(b) = self.hot_frontier.map(|(b, _)| b) {
            if self.device.block(b).invalid_pages() > 0 {
                self.hot_frontier = None;
                self.refresh_victim(b);
                self.gc_scan = (b + 1) % blocks;
                return Ok(b);
            }
        }
        Err(FtlError::NoReclaimableSpace)
    }

    /// One GC episode under a `gc` span: victim pick, relocation, erase.
    /// When SWL's Cleaner runs GC to refill the pool mid-pass, the span
    /// nests under the `swl` span and the episode is still charged to `gc`
    /// (innermost-span attribution).
    fn collect_one(&mut self, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        let span = self.span_begin(SpanKind::Gc);
        let result = self.collect_one_inner(erased);
        self.span_end(span);
        result
    }

    fn collect_one_inner(&mut self, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        let victim = self.select_victim()?;
        self.counters.gc_collections += 1;
        if S::ENABLED {
            let (invalid, valid) = {
                let blk = self.device.block(victim);
                (blk.invalid_pages(), blk.valid_pages())
            };
            let free_depth = self.free.len() as u32;
            let candidates = self.victims.candidates();
            self.device.sink_mut().event(Event::GcPick {
                key: victim,
                invalid,
                valid,
                free_depth,
                candidates,
            });
        }
        self.relocate_and_erase(victim, erased)
    }

    /// Copies every valid page out of `victim`, erases it and returns it to
    /// the free pool. Erases are appended to `erased` for SWL-BETUpdate.
    fn relocate_and_erase(&mut self, victim: u32, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        let result = self.relocate_and_erase_inner(victim, erased);
        if result.is_err() {
            // A failed relocation leaves the victim with changed page stats
            // (pages invalidated, a frontier possibly closed) that the happy
            // path would have re-reported from erase_and_free/retire. Refresh
            // here so a caller that survives the error (e.g. out-of-space
            // during GC) still sees the index in lock-step with the oracle.
            self.refresh_victim(victim);
        }
        result
    }

    fn relocate_and_erase_inner(
        &mut self,
        victim: u32,
        erased: &mut Vec<u32>,
    ) -> Result<(), FtlError> {
        if self.frontier.map(|(b, _)| b) == Some(victim) {
            // Only reachable through the SW Leveler (regular GC skips the
            // frontiers); abandon the remaining free pages of the frontier.
            self.frontier = None;
        }
        if self.hot_frontier.map(|(b, _)| b) == Some(victim) {
            self.hot_frontier = None;
        }
        let geometry = self.device.geometry();
        for page in 0..geometry.pages_per_block() {
            if !self.device.block(victim).page_state(page).is_valid() {
                continue;
            }
            let src = PageAddr::new(victim, page);
            let content = self.device.read(src)?;
            let lba = content
                .spare
                .lba()
                .ok_or(FtlError::CorruptSpare { addr: src })?;
            // GC survivors are cold by construction: they outlived their
            // whole block. The spare status (snapshot epoch) rides along, so
            // a relocated page still resolves into the same mapping sets.
            let epoch = content.spare.status();
            let dst = self.program_remap(Stream::Cold, content.data, lba, epoch)?;
            self.device.invalidate(src)?;
            let src_flat = src.flat_index(&geometry) as u32;
            let dst_flat = dst.flat_index(&geometry) as u32;
            let Self { map, snap, .. } = self;
            match snap.as_mut() {
                Some(book) => {
                    // A shared page is copied once and re-pinned: every
                    // mapping set (head, snapshots, pending merge decrefs)
                    // that referenced the source follows to the copy, and
                    // the whole refcount transfers.
                    if map[lba as usize] == src_flat {
                        map[lba as usize] = dst_flat;
                    }
                    for s in &mut book.snaps {
                        if s.map[lba as usize] == src_flat {
                            s.map[lba as usize] = dst_flat;
                        }
                    }
                    if let Some(m) = book.merge.as_mut() {
                        for p in &mut m.pending {
                            if *p == src_flat {
                                *p = dst_flat;
                            }
                        }
                    }
                    book.refs[dst_flat as usize] = book.refs[src_flat as usize];
                    book.refs[src_flat as usize] = 0;
                    book.epoch_of[dst_flat as usize] = epoch;
                }
                None => map[lba as usize] = dst_flat,
            }
            if self.in_swl {
                self.counters.swl_live_copies += 1;
            } else {
                self.counters.gc_live_copies += 1;
            }
            if S::ENABLED {
                let cause = if self.in_swl { Cause::Swl } else { Cause::Gc };
                self.device.sink_mut().event(Event::LiveCopy {
                    from_block: victim,
                    to_block: dst.block,
                    cause,
                });
            }
        }
        self.erase_and_free(victim, erased)
    }

    /// Erases `block` (which must hold no valid pages) and returns it to the
    /// free pool. A block that refuses to erase — worn out under
    /// [`nand::WearPolicy::FailWornBlocks`], or bad per the device's
    /// [`nand::FaultPlan`] — is retired instead: removed from circulation
    /// with its stale contents left in place.
    fn erase_and_free(&mut self, block: u32, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        debug_assert_eq!(self.device.block(block).valid_pages(), 0);
        let pre_wear = self.device.block(block).erase_count();
        let cause = if self.in_swl { Cause::Swl } else { Cause::Gc };
        match self.device.erase_as(block, cause) {
            Ok(()) => {}
            Err(nand::NandError::BlockWornOut { .. } | nand::NandError::EraseFailed { .. }) => {
                self.retire(block);
                return Ok(());
            }
            Err(other) => return Err(other.into()),
        }
        if self.in_swl {
            self.counters.swl_erases += 1;
        } else {
            self.counters.gc_erases += 1;
        }
        let wear = self.device.block(block).erase_count();
        if !self.is_free[block as usize] {
            self.is_free[block as usize] = true;
            self.free.push(block, wear);
        } else {
            // SWL erased a block while it sat in the free pool; move it up
            // the wear ladder in place.
            self.free.reposition(block, pre_wear, wear);
        }
        self.refresh_victim(block);
        erased.push(block);
        Ok(())
    }

    fn retire(&mut self, block: u32) {
        self.retired[block as usize] = true;
        if self.is_free[block as usize] {
            self.is_free[block as usize] = false;
            let wear = self.device.block(block).erase_count();
            let removed = self.free.remove(block, wear);
            debug_assert!(removed, "free block {block} missing from the ladder");
        }
        // On-flash bad-block marker, so a later mount rediscovers the
        // retirement. A spare-area status program: free and uncuttable; it
        // can only fail once power is already cut, when the RAM state is
        // about to be discarded anyway.
        let _ = self.device.mark_bad(block);
        self.counters.retired_blocks += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::Retire { block });
        }
        self.refresh_victim(block);
    }

    /// Parses both manifest buffers and restores the epoch lists of the
    /// newest valid record. Reads go through the device (they pay bus
    /// latency and count as reads); a torn, partial, or never-committed
    /// buffer fails its checksum and is ignored. With no valid buffer the
    /// book stays fresh — which is also the snapshots-never-used state.
    fn load_manifest(&mut self) -> Result<(), FtlError> {
        let ppb = self.device.geometry().pages_per_block();
        let logical_pages = self.logical_pages as usize;
        let mb = self
            .snap
            .as_ref()
            .expect("snapshot mode")
            .cfg
            .manifest_blocks;
        let mut newest: Option<(u32, snapshot::ManifestRecord)> = None;
        for buf in 0..2u32 {
            let mut words = Vec::new();
            'record: for i in 0..mb {
                let block = self.reserved_base + buf * mb + i;
                for page in 0..ppb {
                    if !self.device.block(block).page_state(page).is_valid() {
                        break 'record;
                    }
                    match self.device.read(PageAddr::new(block, page)) {
                        Ok(r) => words.push(r.data),
                        Err(_) => break 'record,
                    }
                }
            }
            if let Some(record) = snapshot::decode(&words) {
                if newest.as_ref().is_none_or(|(_, n)| record.seq > n.seq) {
                    newest = Some((buf, record));
                }
            }
        }
        if let Some((buf, record)) = newest {
            let book = self.snap.as_mut().expect("snapshot mode");
            book.next_buffer = 1 - buf;
            book.restore(record, logical_pages);
        }
        Ok(())
    }

    /// Writes the book's epoch lists to the standby manifest buffer: erase
    /// it, program the record, and program the trailing checksum word
    /// *last* — the checksum is the commit point, so a power cut anywhere
    /// mid-commit leaves the other buffer's older record in force.
    /// Manifest erases are deliberately not reported to SWL-BETUpdate (the
    /// reserve sits outside the leveler's jurisdiction), though they do
    /// count in the device's erase statistics.
    fn commit_manifest(&mut self) -> Result<(), FtlError> {
        let ppb = self.device.geometry().pages_per_block();
        let (words, mb, next) = {
            let book = self.snap.as_ref().expect("snapshot mode");
            let words = book.encode();
            debug_assert!(
                words.len() <= book.buffer_words(ppb),
                "snapshot verbs pre-check manifest capacity"
            );
            (words, book.cfg.manifest_blocks, book.next_buffer)
        };
        let base = self.reserved_base + next * mb;
        for b in base..base + mb {
            self.device.erase_as(b, Cause::External)?;
        }
        for (i, &w) in words.iter().enumerate() {
            let addr = PageAddr::new(base + i as u32 / ppb, i as u32 % ppb);
            self.device
                .program(addr, w, SpareArea::metadata(snapshot::MANIFEST_STATUS))?;
        }
        let book = self.snap.as_mut().expect("snapshot mode");
        book.seq += 1;
        book.next_buffer = 1 - book.next_buffer;
        Ok(())
    }

    /// Would a manifest record with these epoch-list shapes fit one buffer?
    fn manifest_fits(&self, head_len: usize, snap_lens: impl Iterator<Item = usize>) -> bool {
        let book = self.snap.as_ref().expect("snapshot mode");
        SnapBook::record_words(head_len, snap_lens)
            <= book.buffer_words(self.device.geometry().pages_per_block())
    }

    fn snapshot_create(&mut self, id: u64) -> Result<(), FtlError> {
        let book = self.snap.as_ref().ok_or(FtlError::SnapshotsDisabled)?;
        if book.merge.is_some() {
            return Err(FtlError::MergeInProgress);
        }
        if book.snap_index(id).is_some() {
            return Err(FtlError::SnapshotExists { id });
        }
        let head_len = book.head_epochs.len();
        if !self.manifest_fits(
            head_len + 1,
            book.snaps.iter().map(|s| s.epochs.len()).chain([head_len]),
        ) {
            return Err(FtlError::ManifestFull);
        }
        let Self { snap, map, .. } = self;
        let book = snap.as_mut().expect("snapshot mode");
        let epoch = book.next_epoch();
        // The snapshot inherits the head's exact map (one new reference per
        // page) and its exact epoch history; the head moves to a fresh
        // epoch, so post-snapshot writes never resolve into the snapshot.
        for &p in map.iter() {
            if p != UNMAPPED {
                book.incref(p);
            }
        }
        book.snaps.push(SnapEntry {
            id,
            epochs: book.head_epochs.clone(),
            map: map.clone(),
        });
        book.head_epochs.insert(0, epoch);
        self.commit_manifest()
    }

    fn snapshot_delete(&mut self, id: u64) -> Result<(), FtlError> {
        let book = self.snap.as_mut().ok_or(FtlError::SnapshotsDisabled)?;
        if book.merge.is_some() {
            return Err(FtlError::MergeInProgress);
        }
        let idx = book
            .snap_index(id)
            .ok_or(FtlError::UnknownSnapshot { id })?;
        let s = book.snaps.remove(idx);
        // Commit first: past the commit point the snapshot is gone from the
        // manifest, and a page it alone pinned is an orphan. A crash before
        // the invalidations below is harmless — mount cleanup applies the
        // same invalidations to every orphan it finds.
        self.commit_manifest()?;
        for &p in &s.map {
            if p != UNMAPPED {
                self.release_page(p)?;
            }
        }
        Ok(())
    }

    /// Rolls the head back to snapshot `id` (a writable clone of it): the
    /// head adopts the snapshot's map and history under a fresh epoch, and
    /// every page only the old head referenced is released.
    fn snapshot_clone(&mut self, id: u64) -> Result<(), FtlError> {
        let book = self.snap.as_ref().ok_or(FtlError::SnapshotsDisabled)?;
        if book.merge.is_some() {
            return Err(FtlError::MergeInProgress);
        }
        let idx = book
            .snap_index(id)
            .ok_or(FtlError::UnknownSnapshot { id })?;
        if !self.manifest_fits(
            book.snaps[idx].epochs.len() + 1,
            book.snaps.iter().map(|s| s.epochs.len()),
        ) {
            return Err(FtlError::ManifestFull);
        }
        let Self { snap, map, .. } = self;
        let book = snap.as_mut().expect("snapshot mode");
        let epoch = book.next_epoch();
        let new_map = book.snaps[idx].map.clone();
        for &p in &new_map {
            if p != UNMAPPED {
                book.incref(p);
            }
        }
        book.head_epochs = snapshot::prepend_epoch(epoch, &book.snaps[idx].epochs);
        let old_map = std::mem::replace(map, new_map);
        self.commit_manifest()?;
        for &p in &old_map {
            if p != UNMAPPED {
                self.release_page(p)?;
            }
        }
        Ok(())
    }

    /// Opens an online merge of snapshot `id` into the head. The manifest
    /// commit here is the origin-side atomic point: until `merge_commit`'s
    /// own commit lands, a crash resolves to the origin plus post-begin
    /// acked writes (the merge steps never touch flash), afterwards to the
    /// merged device — never a hybrid.
    fn merge_begin(&mut self, id: u64) -> Result<(), FtlError> {
        let book = self.snap.as_ref().ok_or(FtlError::SnapshotsDisabled)?;
        if book.merge.is_some() {
            return Err(FtlError::MergeInProgress);
        }
        if book.snap_index(id).is_none() {
            return Err(FtlError::UnknownSnapshot { id });
        }
        if !self.manifest_fits(
            book.head_epochs.len() + 1,
            book.snaps.iter().map(|s| s.epochs.len()),
        ) {
            return Err(FtlError::ManifestFull);
        }
        let book = self.snap.as_mut().expect("snapshot mode");
        let epoch = book.next_epoch();
        book.head_epochs.insert(0, epoch);
        self.commit_manifest()?;
        let book = self.snap.as_mut().expect("snapshot mode");
        book.merge = Some(MergeState {
            snap_id: id,
            epoch,
            cursor: 0,
            pending: Vec::new(),
        });
        Ok(())
    }

    /// Advances the online merge across the next `max_lbas` logical pages,
    /// overlaying the snapshot's mappings onto the head via the streaming
    /// dual-iterator ([`MergeStream`]). Pure RAM — no flash operation until
    /// `merge_commit` applies the deferred releases — so host writes can be
    /// interleaved between steps; LBAs the host rewrites after
    /// `merge_begin` (stamped with the merge epoch) keep the live data.
    /// Returns `true` once the cursor has covered the whole logical space.
    fn merge_step(&mut self, max_lbas: u64) -> Result<bool, FtlError> {
        let logical_pages = self.logical_pages;
        let Self { snap, map, .. } = self;
        let book = snap.as_mut().ok_or(FtlError::SnapshotsDisabled)?;
        let Some(m) = book.merge.as_ref() else {
            return Err(FtlError::NoMergeInProgress);
        };
        let (snap_id, epoch, cursor) = (m.snap_id, m.epoch, m.cursor);
        let end = cursor.saturating_add(max_lbas.max(1)).min(logical_pages);
        let idx = book.snap_index(snap_id).expect("merge target is delete-locked");
        let overlays: Vec<(u64, u32)> = {
            let epoch_of = &book.epoch_of;
            MergeStream::new(
                MappingStream::starting_at(map, cursor),
                MappingStream::starting_at(&book.snaps[idx].map, cursor),
                |_, phys| epoch_of[phys as usize] == epoch,
            )
            .take_while(|(mapping, _)| mapping.lba < end)
            .filter(|&(_, source)| source == MergeSource::Snapshot)
            .map(|(mapping, _)| (mapping.lba, mapping.phys))
            .collect()
        };
        for (lba, p) in overlays {
            let old = map[lba as usize];
            if old == p {
                // The head already shares this page with the snapshot.
                continue;
            }
            book.incref(p);
            map[lba as usize] = p;
            if old != UNMAPPED {
                // Deferred: the displaced origin page keeps its reference
                // (and stays valid on flash) until merge_commit, so a crash
                // mid-merge still resolves to the origin.
                book.merge.as_mut().expect("in merge").pending.push(old);
            }
        }
        book.merge.as_mut().expect("in merge").cursor = end;
        Ok(end >= logical_pages)
    }

    /// Commits the online merge: the snapshot's epoch history is spliced
    /// into the head's (post-begin writes ranked first, then the snapshot,
    /// then the old head history — matching what the steps built in RAM),
    /// the snapshot is dropped from the manifest, and the deferred page
    /// releases are applied.
    fn merge_commit(&mut self) -> Result<(), FtlError> {
        let book = self.snap.as_mut().ok_or(FtlError::SnapshotsDisabled)?;
        let m = book.merge.take().ok_or(FtlError::NoMergeInProgress)?;
        let idx = book
            .snap_index(m.snap_id)
            .expect("merge target is delete-locked");
        let s = book.snaps.remove(idx);
        debug_assert_eq!(book.head_epochs[0], m.epoch);
        // No capacity pre-check: dropping the snapshot's id/len/list words
        // always outweighs the epochs spliced into the head list, so the
        // record shrinks.
        let merged = snapshot::splice_epochs(&[
            &book.head_epochs[..1],
            &s.epochs,
            &book.head_epochs[1..],
        ]);
        book.head_epochs = merged;
        self.commit_manifest()?;
        for &p in &s.map {
            if p != UNMAPPED {
                self.release_page(p)?;
            }
        }
        for &p in &m.pending {
            self.release_page(p)?;
        }
        Ok(())
    }

    fn read_snapshot(&mut self, id: u64, lba: u64) -> Result<Option<u64>, FtlError> {
        if lba >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        let book = self.snap.as_ref().ok_or(FtlError::SnapshotsDisabled)?;
        let idx = book
            .snap_index(id)
            .ok_or(FtlError::UnknownSnapshot { id })?;
        let entry = book.snaps[idx].map[lba as usize];
        if entry == UNMAPPED {
            return Ok(None);
        }
        let addr = PageAddr::from_flat_index(&self.device.geometry(), u64::from(entry));
        Ok(Some(self.device.read(addr)?.data))
    }

    /// Debug audit: every mapped page is valid on-device with a matching
    /// spare-area LBA, and no two LBAs share a physical page.
    #[cfg(test)]
    fn check_consistency(&mut self) {
        let geometry = self.device.geometry();
        let mut seen = std::collections::HashSet::new();
        for (lba, &entry) in self.map.iter().enumerate() {
            if entry == UNMAPPED {
                continue;
            }
            assert!(seen.insert(entry), "two lbas map to flat page {entry}");
            let addr = PageAddr::from_flat_index(&geometry, u64::from(entry));
            assert!(
                self.device
                    .block(addr.block)
                    .page_state(addr.page)
                    .is_valid(),
                "lba {lba} maps to non-valid page {addr}"
            );
            let spare = self.device.block(addr.block).spare(addr.page);
            assert_eq!(spare.lba(), Some(lba as u64), "spare mismatch at {addr}");
        }
    }
}

impl<S: Sink> SwlCleaner for Inner<S> {
    type Error = FtlError;

    /// Garbage-collects the requested block set for the SW Leveler: data
    /// blocks are relocated and erased, free blocks are erased in place
    /// (touching them both levels their wear and sets their BET flag).
    fn erase_block_set(
        &mut self,
        first_block: u32,
        count: u32,
        erased: &mut Vec<u32>,
    ) -> Result<(), FtlError> {
        self.in_swl = true;
        let result = (|| {
            let blocks = self.device.geometry().blocks();
            for b in first_block..(first_block + count).min(blocks) {
                // Retired blocks and the snapshot-manifest reserve are out
                // of circulation; SWL skips them like the BET's other
                // permanently idle entries.
                if self.retired[b as usize] || b >= self.reserved_base {
                    continue;
                }
                if self.frontier.map(|(fb, _)| fb) == Some(b) {
                    self.frontier = None;
                    self.refresh_victim(b);
                }
                if self.hot_frontier.map(|(fb, _)| fb) == Some(b) {
                    self.hot_frontier = None;
                    self.refresh_victim(b);
                }
                if !self.is_free[b as usize] {
                    // Relocation needs at least one free block to copy into.
                    if self.free.is_empty() {
                        self.collect_one(erased)?;
                    }
                    if !self.is_free[b as usize] {
                        self.relocate_and_erase(b, erased)?;
                        continue;
                    }
                }
                // Free block: erase in place.
                self.erase_and_free(b, erased)?;
            }
            Ok(())
        })();
        self.in_swl = false;
        result
    }

    /// Merges the leveler's events (activation, interval reset) into the
    /// FTL's telemetry stream.
    fn emit_telemetry(&mut self, event: Event) {
        if S::ENABLED {
            self.device.sink_mut().event(event);
        }
    }
}

/// A page-mapping FTL with an optional static wear leveler.
///
/// Generic over a telemetry [`Sink`] inherited from the device it is built
/// on; the default [`NullSink`] compiles all emission sites out. Host
/// operations, GC picks, live copies, cause-attributed erases, and leveler
/// activity all flow into the single attached sink.
///
/// See the [crate-level documentation](crate) for the design and an example.
#[derive(Debug)]
pub struct PageMappedFtl<S: Sink = NullSink> {
    inner: Inner<S>,
    swl: Option<SwLeveler>,
    erased_buf: Vec<u32>,
}

/// Point-in-time refcount audit of the snapshot book, exposed for the
/// invariant test suites.
///
/// The governing identity is `refcount_sum == mapping_count +
/// pending_merge`: every reference a physical page holds is explained
/// either by a mapping set (head or snapshot) pointing at it, or by the
/// in-flight merge's deferred-release list keeping a displaced origin page
/// alive until `merge_commit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotAudit {
    /// Sum of the per-physical-page reference counts.
    pub refcount_sum: u64,
    /// Mapped entries across the head map and every snapshot map.
    pub mapping_count: u64,
    /// Displaced origin pages held by the in-flight merge (0 when idle).
    pub pending_merge: u64,
    /// Number of live snapshots.
    pub snapshots: usize,
}

impl<S: Sink> PageMappedFtl<S> {
    /// Builds an FTL over `device` without static wear leveling.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice, but reserved for configuration
    /// validation.
    pub fn new(device: NandDevice<S>, config: FtlConfig) -> Result<Self, FtlError> {
        Ok(Self {
            inner: Inner::new(device, config)?,
            swl: None,
            erased_buf: Vec::new(),
        })
    }

    /// Builds an FTL with the SW Leveler attached.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::Swl`] when the leveler configuration is invalid.
    pub fn with_swl(
        device: NandDevice<S>,
        config: FtlConfig,
        swl_config: SwlConfig,
    ) -> Result<Self, FtlError> {
        let blocks = device.geometry().blocks();
        let swl = SwLeveler::new(blocks, swl_config)?;
        let mut ftl = Self::new(device, config)?;
        ftl.swl = Some(swl);
        Ok(ftl)
    }

    /// Re-attaches a previously used chip, rebuilding the translation table
    /// from the spare areas on flash — the firmware mount path. Pair with
    /// [`PageMappedFtl::into_device`] to simulate power cycles.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::CorruptSpare`] or [`FtlError::MountConflict`]
    /// when the on-flash state is not a consistent FTL layout.
    pub fn mount(device: NandDevice<S>, config: FtlConfig) -> Result<Self, FtlError> {
        Ok(Self {
            inner: Inner::mount(device, config)?,
            swl: None,
            erased_buf: Vec::new(),
        })
    }

    /// Shuts the layer down, returning the chip (with all its data and
    /// wear) for a later [`PageMappedFtl::mount`].
    pub fn into_device(self) -> NandDevice<S> {
        self.inner.device
    }

    /// Attaches (or replaces) a pre-built SW Leveler, e.g. one restored from
    /// a [`swl_core::persist::DualBuffer`] snapshot.
    pub fn attach_swl(&mut self, swl: SwLeveler) {
        self.swl = Some(swl);
    }

    /// Writes `data` to logical page `lba` (out-of-place), then gives the
    /// SW Leveler a chance to run.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] for bad addresses and propagates
    /// garbage-collection failures ([`FtlError::NoReclaimableSpace`] when
    /// the logical space is over-committed).
    pub fn write(&mut self, lba: u64, data: u64) -> Result<(), FtlError> {
        // Root span brackets the whole operation — GC, remaps, and any SWL
        // pass the write triggers — mirroring the simulator's latency
        // bracket exactly.
        let span = self.inner.span_begin(SpanKind::HostWrite);
        let mut erased = std::mem::take(&mut self.erased_buf);
        erased.clear();
        let result = self.inner.host_write(lba, data, &mut erased);
        let follow_up = self.notify_swl(&erased);
        self.erased_buf = erased;
        self.inner.span_end(span);
        result.and(follow_up)
    }

    /// Reads logical page `lba`; `None` when it has never been written.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] for bad addresses.
    pub fn read(&mut self, lba: u64) -> Result<Option<u64>, FtlError> {
        let span = self.inner.span_begin(SpanKind::HostRead);
        let result = self.inner.host_read(lba);
        self.inner.span_end(span);
        result
    }

    /// Discards logical page `lba` (TRIM): subsequent reads return `None`
    /// and the physical page becomes reclaimable without a copy.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] for bad addresses.
    pub fn trim(&mut self, lba: u64) -> Result<(), FtlError> {
        let span = self.inner.span_begin(SpanKind::HostTrim);
        let result = self.inner.host_trim(lba);
        self.inner.span_end(span);
        result
    }

    /// Feeds erases to SWL-BETUpdate and invokes SWL-Procedure when needed.
    fn notify_swl(&mut self, erased: &[u32]) -> Result<(), FtlError> {
        let Some(swl) = self.swl.as_mut() else {
            return Ok(());
        };
        for &b in erased {
            swl.note_erase(b);
        }
        // In deferred mode an external coordinator (e.g. the multi-channel
        // striped layer) watches a global unevenness and drives
        // `run_swl_step`; the layer itself only feeds SWL-BETUpdate.
        if !swl.config().deferred && swl.needs_leveling() {
            let span = self.inner.span_begin(SpanKind::Swl);
            let result = swl.level(&mut self.inner);
            self.inner.span_end(span);
            result?;
        }
        Ok(())
    }

    /// Forces garbage collection over a block range, as an external wear
    /// leveling policy (e.g. [`swl_core::counting::CountingLeveler`]) would:
    /// live data is relocated, the blocks are erased, and any attached SW
    /// Leveler is notified of the erases. Returns the number of blocks
    /// erased.
    ///
    /// # Errors
    ///
    /// Propagates garbage-collection failures.
    pub fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, FtlError> {
        // Externally driven collection: a root `gc` span rather than a host
        // kind, since no host op is paying for it.
        let span = self.inner.span_begin(SpanKind::Gc);
        let mut erased = std::mem::take(&mut self.erased_buf);
        erased.clear();
        let result = self.inner.erase_block_set(first_block, count, &mut erased);
        let erase_count = erased.len() as u64;
        let follow_up = self.notify_swl(&erased);
        self.erased_buf = erased;
        self.inner.span_end(span);
        result.and(follow_up)?;
        Ok(erase_count)
    }

    /// Manually invokes SWL-Procedure (e.g. from a timer), returning what it
    /// did. A no-op returning [`LevelOutcome::Idle`] without a leveler.
    ///
    /// # Errors
    ///
    /// Propagates garbage-collection failures.
    pub fn run_swl(&mut self) -> Result<LevelOutcome, FtlError> {
        match self.swl.as_mut() {
            Some(swl) => {
                let span = self.inner.span_begin(SpanKind::Swl);
                let result = swl.level(&mut self.inner);
                self.inner.span_end(span);
                result
            }
            None => Ok(LevelOutcome::Idle),
        }
    }

    /// Runs exactly one SWL-Procedure step, ignoring the local threshold —
    /// the entry point for an external multi-shard coordinator (see
    /// [`SwLeveler::level_step`]).
    ///
    /// # Errors
    ///
    /// Propagates garbage-collection failures.
    pub fn run_swl_step(&mut self) -> Result<LevelOutcome, FtlError> {
        match self.swl.as_mut() {
            Some(swl) => {
                let span = self.inner.span_begin(SpanKind::Swl);
                let result = swl.level_step(&mut self.inner);
                self.inner.span_end(span);
                result
            }
            None => Ok(LevelOutcome::Idle),
        }
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.inner.logical_pages
    }

    /// The underlying device (erase counts, busy time, failure record).
    pub fn device(&self) -> &NandDevice<S> {
        &self.inner.device
    }

    /// Attribution counters.
    pub fn counters(&self) -> FtlCounters {
        self.inner.counters
    }

    /// The attached SW Leveler, if any.
    pub fn swl(&self) -> Option<&SwLeveler> {
        self.swl.as_ref()
    }

    /// The hot-data identifier, when hot/cold separation is enabled.
    pub fn hot_data(&self) -> Option<&MultiHashIdentifier> {
        self.inner.hot.as_ref()
    }

    /// The configuration in effect.
    pub fn config(&self) -> FtlConfig {
        self.inner.config
    }

    /// Fraction of physical pages currently holding valid data.
    pub fn utilization(&self) -> f64 {
        let geometry = self.inner.device.geometry();
        let valid: u64 = (0..geometry.blocks())
            .map(|b| u64::from(self.inner.device.block(b).valid_pages()))
            .sum();
        valid as f64 / geometry.total_pages() as f64
    }

    /// Creates snapshot `id`: a durable, read-only, copy-on-write image of
    /// the current logical contents. O(logical pages) RAM and one manifest
    /// commit; no data pages are copied.
    ///
    /// # Errors
    ///
    /// [`FtlError::SnapshotsDisabled`] without [`SnapshotConfig`](crate::SnapshotConfig),
    /// [`FtlError::SnapshotExists`] on a duplicate id,
    /// [`FtlError::MergeInProgress`] while a merge is in flight,
    /// [`FtlError::ManifestFull`] when the record would not fit, or a device
    /// error from the manifest commit.
    pub fn snapshot_create(&mut self, id: u64) -> Result<(), FtlError> {
        let span = self.inner.span_begin(SpanKind::Merge);
        let result = self.inner.snapshot_create(id);
        self.inner.span_end(span);
        result
    }

    /// Deletes snapshot `id`, releasing every page only it referenced.
    ///
    /// # Errors
    ///
    /// [`FtlError::SnapshotsDisabled`], [`FtlError::UnknownSnapshot`],
    /// [`FtlError::MergeInProgress`], or a device error.
    pub fn snapshot_delete(&mut self, id: u64) -> Result<(), FtlError> {
        let span = self.inner.span_begin(SpanKind::Merge);
        let result = self.inner.snapshot_delete(id);
        self.inner.span_end(span);
        result
    }

    /// Rolls the live image back to snapshot `id` (a writable clone of it).
    /// The snapshot itself survives and can be cloned again.
    ///
    /// # Errors
    ///
    /// [`FtlError::SnapshotsDisabled`], [`FtlError::UnknownSnapshot`],
    /// [`FtlError::MergeInProgress`], [`FtlError::ManifestFull`], or a
    /// device error.
    pub fn snapshot_clone(&mut self, id: u64) -> Result<(), FtlError> {
        let span = self.inner.span_begin(SpanKind::Merge);
        let result = self.inner.snapshot_clone(id);
        self.inner.span_end(span);
        result
    }

    /// Begins an online merge of snapshot `id` into the live image. Drive
    /// it with [`Self::merge_step`] and seal it with [`Self::merge_commit`];
    /// host writes may be interleaved and always beat the snapshot.
    ///
    /// # Errors
    ///
    /// [`FtlError::SnapshotsDisabled`], [`FtlError::UnknownSnapshot`],
    /// [`FtlError::MergeInProgress`], [`FtlError::ManifestFull`], or a
    /// device error from the begin-point manifest commit.
    pub fn merge_begin(&mut self, id: u64) -> Result<(), FtlError> {
        let span = self.inner.span_begin(SpanKind::Merge);
        let result = self.inner.merge_begin(id);
        self.inner.span_end(span);
        result
    }

    /// Advances the online merge over up to `max_lbas` logical pages.
    /// Returns `true` once the whole logical space has been covered (then
    /// call [`Self::merge_commit`]).
    ///
    /// # Errors
    ///
    /// [`FtlError::SnapshotsDisabled`] or [`FtlError::NoMergeInProgress`].
    pub fn merge_step(&mut self, max_lbas: u64) -> Result<bool, FtlError> {
        let span = self.inner.span_begin(SpanKind::Merge);
        let result = self.inner.merge_step(max_lbas);
        self.inner.span_end(span);
        result
    }

    /// Seals the online merge: the snapshot is absorbed into the live image
    /// and dropped, and the displaced origin pages are released.
    ///
    /// # Errors
    ///
    /// [`FtlError::SnapshotsDisabled`], [`FtlError::NoMergeInProgress`], or
    /// a device error from the commit-point manifest write.
    pub fn merge_commit(&mut self) -> Result<(), FtlError> {
        let span = self.inner.span_begin(SpanKind::Merge);
        let result = self.inner.merge_commit();
        self.inner.span_end(span);
        result
    }

    /// Merges snapshot `id` into the live image in one call (begin, stream
    /// all steps, commit).
    ///
    /// # Errors
    ///
    /// As for [`Self::merge_begin`] and [`Self::merge_commit`].
    pub fn merge_offline(&mut self, id: u64) -> Result<(), FtlError> {
        let span = self.inner.span_begin(SpanKind::Merge);
        let result = (|| {
            self.inner.merge_begin(id)?;
            while !self.inner.merge_step(1024)? {}
            self.inner.merge_commit()
        })();
        self.inner.span_end(span);
        result
    }

    /// Reads `lba` as it looked when snapshot `id` was taken (`None` if it
    /// was unmapped then).
    ///
    /// # Errors
    ///
    /// [`FtlError::SnapshotsDisabled`], [`FtlError::UnknownSnapshot`],
    /// [`FtlError::LbaOutOfRange`], or a device error.
    pub fn read_snapshot(&mut self, id: u64, lba: u64) -> Result<Option<u64>, FtlError> {
        let span = self.inner.span_begin(SpanKind::HostRead);
        let result = self.inner.read_snapshot(id, lba);
        self.inner.span_end(span);
        result
    }

    /// Ids of the live snapshots, in creation order.
    pub fn snapshot_ids(&self) -> Vec<u64> {
        self.inner
            .snap
            .as_ref()
            .map_or_else(Vec::new, |b| b.snaps.iter().map(|s| s.id).collect())
    }

    /// Refcount audit of the snapshot book; `None` when snapshots are
    /// disabled.
    pub fn snapshot_audit(&self) -> Option<SnapshotAudit> {
        let book = self.inner.snap.as_ref()?;
        let mapped = |map: &[u32]| map.iter().filter(|&&p| p != UNMAPPED).count() as u64;
        let mapping_count =
            mapped(&self.inner.map) + book.snaps.iter().map(|s| mapped(&s.map)).sum::<u64>();
        Some(SnapshotAudit {
            refcount_sum: book.refs.iter().map(|&r| u64::from(r)).sum(),
            mapping_count,
            pending_merge: book.merge.as_ref().map_or(0, |m| m.pending.len() as u64),
            snapshots: book.snaps.len(),
        })
    }

    /// Exhaustive snapshot-invariant audit; panics on any violation. A
    /// no-op when snapshots are disabled. Intended for tests and the
    /// property suites — it walks every physical page.
    ///
    /// Checks: per-page refcounts equal the number of mapping sets (plus
    /// pending merge releases) referencing the page; a page is valid
    /// on-device iff it is referenced; spare LBA and epoch stamps match the
    /// book's records.
    pub fn check_snapshot_consistency(&self) {
        let inner = &self.inner;
        let Some(book) = inner.snap.as_ref() else {
            return;
        };
        let geometry = inner.device.geometry();
        let total_pages = geometry.total_pages() as usize;
        let mut expected = vec![0u32; total_pages];
        let mut tally = |map: &[u32]| {
            for &p in map {
                if p != UNMAPPED {
                    expected[p as usize] += 1;
                }
            }
        };
        tally(&inner.map);
        for s in &book.snaps {
            tally(&s.map);
        }
        for &p in book.merge.as_ref().map_or(&[][..], |m| &m.pending[..]) {
            expected[p as usize] += 1;
        }
        assert_eq!(
            expected, book.refs,
            "refcounts must equal references from mapping sets + pending merge"
        );
        for b in 0..inner.reserved_base {
            for page in 0..geometry.pages_per_block() {
                let addr = PageAddr::new(b, page);
                let flat = addr.flat_index(&geometry) as usize;
                let state = inner.device.block(b).page_state(page);
                assert_eq!(
                    state.is_valid(),
                    book.refs[flat] > 0,
                    "page {addr} validity must mirror its refcount"
                );
                if state.is_valid() {
                    let spare = inner.device.block(b).spare(page);
                    assert_eq!(
                        spare.status(),
                        book.epoch_of[flat],
                        "page {addr} epoch stamp must match the book"
                    );
                    let lba = spare.lba().expect("valid page carries an lba") as usize;
                    let referenced = inner.map[lba] == flat as u32
                        || book.snaps.iter().any(|s| s.map[lba] == flat as u32)
                        || book
                            .merge
                            .as_ref()
                            .is_some_and(|m| m.pending.contains(&(flat as u32)));
                    assert!(referenced, "page {addr} refs come from its own lba {lba}");
                }
            }
        }
    }

    #[cfg(test)]
    pub(crate) fn check_consistency(&mut self) {
        self.inner.check_consistency();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapshotConfig;
    use nand::{CellKind, Geometry};

    fn device(blocks: u32, pages: u32) -> NandDevice {
        NandDevice::new(
            Geometry::new(blocks, pages, 2048),
            CellKind::Mlc2.spec().with_endurance(1_000_000),
        )
    }

    fn plain_ftl(blocks: u32, pages: u32) -> PageMappedFtl {
        PageMappedFtl::new(device(blocks, pages), FtlConfig::default()).unwrap()
    }

    #[test]
    fn read_your_writes() {
        let mut ftl = plain_ftl(8, 4);
        ftl.write(3, 111).unwrap();
        ftl.write(5, 222).unwrap();
        assert_eq!(ftl.read(3).unwrap(), Some(111));
        assert_eq!(ftl.read(5).unwrap(), Some(222));
        assert_eq!(ftl.read(0).unwrap(), None);
    }

    #[test]
    fn updates_are_out_of_place() {
        let mut ftl = plain_ftl(8, 4);
        ftl.write(1, 1).unwrap();
        ftl.write(1, 2).unwrap();
        ftl.write(1, 3).unwrap();
        assert_eq!(ftl.read(1).unwrap(), Some(3));
        // Three programs happened; two pages are now invalid.
        let invalid: u32 = (0..8).map(|b| ftl.device().block(b).invalid_pages()).sum();
        assert_eq!(invalid, 2);
        ftl.check_consistency();
    }

    #[test]
    fn lba_bounds_enforced() {
        let mut ftl = plain_ftl(4, 4);
        let max = ftl.logical_pages();
        assert!(matches!(
            ftl.write(max, 0),
            Err(FtlError::LbaOutOfRange { .. })
        ));
        assert!(matches!(ftl.read(max), Err(FtlError::LbaOutOfRange { .. })));
        assert!(matches!(ftl.trim(max), Err(FtlError::LbaOutOfRange { .. })));
    }

    #[test]
    fn overprovisioning_shrinks_logical_space() {
        let ftl = PageMappedFtl::new(
            device(8, 4),
            FtlConfig::default().with_overprovision_blocks(2),
        )
        .unwrap();
        assert_eq!(ftl.logical_pages(), 6 * 4);
    }

    #[test]
    fn gc_reclaims_invalid_pages_under_pressure() {
        // 8 blocks × 4 pages = 32 physical pages; hammer 4 LBAs so GC must
        // run many times.
        let mut ftl = plain_ftl(8, 4);
        for round in 0..100u64 {
            for lba in 0..4u64 {
                ftl.write(lba, round * 10 + lba).unwrap();
            }
        }
        for lba in 0..4u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(99 * 10 + lba));
        }
        assert!(ftl.counters().gc_erases > 0, "gc must have produced space");
        assert!(ftl.counters().gc_collections > 0);
        ftl.check_consistency();
    }

    #[test]
    fn gc_copies_live_data_intact() {
        // Fill cold data once, then hammer one hot LBA; GC must preserve the
        // cold data when it relocates blocks.
        let mut ftl = plain_ftl(8, 4);
        for lba in 0..16u64 {
            ftl.write(lba, 1000 + lba).unwrap();
        }
        for round in 0..200u64 {
            ftl.write(20, round).unwrap();
        }
        for lba in 0..16u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(1000 + lba), "lba {lba}");
        }
        assert_eq!(ftl.read(20).unwrap(), Some(199));
        ftl.check_consistency();
    }

    #[test]
    fn full_logical_space_rewrites_succeed() {
        // Writing every LBA repeatedly is the worst case for a 0-overprovision
        // FTL; the free-target reserve must keep GC alive.
        let g = Geometry::new(16, 4, 2048);
        let d = NandDevice::new(g, CellKind::Mlc2.spec().with_endurance(1_000_000));
        let mut ftl =
            PageMappedFtl::new(d, FtlConfig::default().with_overprovision_blocks(3)).unwrap();
        let n = ftl.logical_pages();
        for round in 0..6u64 {
            for lba in 0..n {
                ftl.write(lba, round * 1000 + lba).unwrap();
            }
        }
        for lba in 0..n {
            assert_eq!(ftl.read(lba).unwrap(), Some(5000 + lba));
        }
        ftl.check_consistency();
    }

    #[test]
    fn over_committed_space_reports_no_reclaimable() {
        // 4 blocks × 4 pages, no overprovision: 16 logical pages cannot all
        // stay valid while GC needs room to breathe.
        let mut ftl = plain_ftl(4, 4);
        let mut failed = false;
        'outer: for round in 0..4u64 {
            for lba in 0..16u64 {
                match ftl.write(lba, round) {
                    Ok(()) => {}
                    Err(FtlError::NoReclaimableSpace) => {
                        failed = true;
                        break 'outer;
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
        }
        assert!(failed, "over-committed ftl must fail cleanly");
    }

    #[test]
    fn trim_releases_space() {
        let mut ftl = plain_ftl(4, 4);
        for lba in 0..10u64 {
            ftl.write(lba, lba).unwrap();
        }
        for lba in 0..10u64 {
            ftl.trim(lba).unwrap();
        }
        assert_eq!(ftl.read(3).unwrap(), None);
        assert_eq!(ftl.counters().trims, 10);
        // Trimmed pages are invalid, so heavy rewriting now succeeds.
        for round in 0..20u64 {
            for lba in 0..8u64 {
                ftl.write(lba, round).unwrap();
            }
        }
        ftl.check_consistency();
    }

    #[test]
    fn allocation_prefers_low_wear_blocks() {
        let mut ftl = plain_ftl(8, 4);
        // Cycle a small working set; dynamic wear leveling should keep the
        // spread of erase counts tight across used blocks.
        for round in 0..400u64 {
            for lba in 0..8u64 {
                ftl.write(lba, round).unwrap();
            }
        }
        let stats = ftl.device().erase_stats();
        assert!(
            stats.max_over_mean() < 3.0,
            "dynamic WL keeps recycled blocks even: {stats}"
        );
    }

    #[test]
    fn swl_attaches_and_levels() {
        let d = device(16, 4);
        let mut ftl =
            PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(4, 0)).unwrap();
        // Static workload: 8 cold LBAs written once...
        for lba in 0..8u64 {
            ftl.write(lba, 7000 + lba).unwrap();
        }
        // ...then one hot LBA hammered.
        for round in 0..600u64 {
            ftl.write(40, round).unwrap();
        }
        let counters = ftl.counters();
        assert!(
            counters.swl_erases > 0,
            "SWL must have triggered: {counters:?}"
        );
        let swl = ftl.swl().unwrap();
        assert!(swl.stats().interval_resets > 0 || swl.stats().sets_cleaned > 0);
        // Cold data survived the forced moves.
        for lba in 0..8u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(7000 + lba));
        }
        ftl.check_consistency();
    }

    #[test]
    fn swl_spreads_wear_onto_cold_blocks() {
        let run = |swl: bool| -> (f64, u64) {
            let d = device(16, 8);
            let mut ftl = if swl {
                PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(8, 0)).unwrap()
            } else {
                PageMappedFtl::new(d, FtlConfig::default()).unwrap()
            };
            // Cold data occupying half the logical space.
            for lba in 0..56u64 {
                ftl.write(lba, lba).unwrap();
            }
            for round in 0..3000u64 {
                ftl.write(100 + (round % 4), round).unwrap();
            }
            let stats = ftl.device().erase_stats();
            (stats.std_dev, stats.max)
        };
        let (dev_plain, _) = run(false);
        let (dev_swl, _) = run(true);
        assert!(
            dev_swl < dev_plain,
            "SWL must flatten the erase distribution: {dev_swl:.2} vs {dev_plain:.2}"
        );
    }

    #[test]
    fn run_swl_without_leveler_is_idle() {
        let mut ftl = plain_ftl(4, 4);
        assert_eq!(ftl.run_swl().unwrap(), LevelOutcome::Idle);
    }

    #[test]
    fn attach_swl_after_recovery() {
        let d = device(8, 4);
        let mut ftl = PageMappedFtl::new(d, FtlConfig::default()).unwrap();
        let leveler = SwLeveler::new(8, SwlConfig::new(10, 0)).unwrap();
        ftl.attach_swl(leveler);
        assert!(ftl.swl().is_some());
        ftl.write(0, 1).unwrap();
        assert_eq!(ftl.read(0).unwrap(), Some(1));
    }

    #[test]
    fn utilization_tracks_valid_pages() {
        let mut ftl = plain_ftl(4, 4);
        assert_eq!(ftl.utilization(), 0.0);
        for lba in 0..8u64 {
            ftl.write(lba, 0).unwrap();
        }
        assert!((ftl.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hot_cold_separation_reduces_live_copies() {
        let run = |hot: bool| -> (f64, u64) {
            let config = if hot {
                FtlConfig::default().with_hot_data(hotid::HotDataConfig::default())
            } else {
                FtlConfig::default()
            };
            let mut ftl = PageMappedFtl::new(device(32, 16), config).unwrap();
            // Mixed stream: cold sweep interleaved with hot hammering, the
            // worst case for an unseparated log.
            for round in 0..6000u64 {
                let lba = if round % 4 == 0 {
                    160 + (round / 4) % 160 // slowly cycling cold-ish data
                } else {
                    round % 8 // hot set
                };
                ftl.write(lba, round).unwrap();
            }
            let c = ftl.counters();
            (c.avg_live_copies_per_gc_erase(), c.total_live_copies())
        };
        let (l_plain, copies_plain) = run(false);
        let (l_hot, copies_hot) = run(true);
        assert!(
            l_hot < l_plain,
            "separation must reduce L: {l_hot:.2} vs {l_plain:.2}"
        );
        assert!(
            copies_hot < copies_plain,
            "separation must reduce total copies: {copies_hot} vs {copies_plain}"
        );
    }

    #[test]
    fn hot_cold_separation_preserves_correctness() {
        let config = FtlConfig::default().with_hot_data(hotid::HotDataConfig::default());
        let mut ftl =
            PageMappedFtl::with_swl(device(32, 16), config, SwlConfig::new(6, 0)).unwrap();
        let mut shadow = std::collections::HashMap::new();
        for round in 0..5000u64 {
            let lba = (round * 31 + round / 7) % 300;
            ftl.write(lba, round).unwrap();
            shadow.insert(lba, round);
        }
        for (lba, data) in shadow {
            assert_eq!(ftl.read(lba).unwrap(), Some(data));
        }
        assert!(ftl.hot_data().unwrap().writes_recorded() == 5000);
        ftl.check_consistency();
    }

    #[test]
    fn event_stream_reconstructs_counters_exactly() {
        use flash_telemetry::{MetricsAggregator, VecSink};

        let d = device(16, 4).with_sink(VecSink::default());
        let mut ftl =
            PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(2, 0)).unwrap();
        for lba in 0..8u64 {
            ftl.write(lba, lba).unwrap();
        }
        for round in 0..400u64 {
            ftl.write(30, round).unwrap();
            if round % 7 == 0 {
                ftl.read(round % 8).unwrap();
            }
            if round == 200 {
                ftl.trim(5).unwrap();
            }
        }
        let counters = ftl.counters();
        assert!(counters.swl_erases > 0, "scenario must exercise SWL");
        let mut agg = MetricsAggregator::new();
        for event in ftl.into_device().into_sink().events {
            agg.event(event);
        }
        assert_eq!(agg.counters(), counters);
        assert!(agg.swl_invokes() > 0);
    }

    #[test]
    fn spans_balance_and_attribute_all_device_time() {
        use flash_telemetry::{SpanCause, SpanReplayer, VecSink};

        let d = device(16, 4).with_sink(VecSink::default());
        let mut ftl =
            PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(2, 0)).unwrap();
        // Record the live per-write busy-time bracket the simulator would.
        let mut live_totals = Vec::new();
        let mut do_write = |ftl: &mut PageMappedFtl<VecSink>, lba, data| {
            let before = ftl.device().busy_ns();
            ftl.write(lba, data).unwrap();
            live_totals.push(ftl.device().busy_ns() - before);
        };
        for lba in 0..8u64 {
            do_write(&mut ftl, lba, lba);
        }
        for round in 0..400u64 {
            do_write(&mut ftl, 30, round);
        }
        ftl.read(3).unwrap();
        ftl.trim(7).unwrap();
        assert!(ftl.counters().swl_erases > 0, "scenario must exercise SWL");

        let mut replay = SpanReplayer::new();
        let mut writes = Vec::new();
        let mut swl_time = 0u64;
        for event in &ftl.into_device().into_sink().events {
            if let Some(op) = replay.observe(event) {
                if op.kind == flash_telemetry::SpanKind::HostWrite {
                    writes.push(op);
                    swl_time += op.ns(SpanCause::Swl);
                }
            }
        }
        assert!(replay.check().is_clean(), "{:?}", replay.check());
        // Every live write reappears with a bit-exact total, fully
        // attributed across the four causes.
        assert_eq!(writes.len(), live_totals.len());
        for (op, &live) in writes.iter().zip(&live_totals) {
            assert_eq!(op.total_ns(), live);
            assert_eq!(op.cause_ns.iter().sum::<u64>(), op.total_ns());
        }
        assert!(swl_time > 0, "SWL passes must show up in the attribution");
    }

    #[test]
    fn instrumented_run_matches_null_sink_run() {
        fn work<S: Sink>(mut ftl: PageMappedFtl<S>) -> (FtlCounters, Vec<u64>) {
            for lba in 0..8u64 {
                ftl.write(lba, lba).unwrap();
            }
            for round in 0..400u64 {
                ftl.write(30, round).unwrap();
            }
            (ftl.counters(), ftl.device().erase_counts())
        }
        let plain = work(
            PageMappedFtl::with_swl(device(16, 4), FtlConfig::default(), SwlConfig::new(2, 0))
                .unwrap(),
        );
        let probed = work(
            PageMappedFtl::with_swl(
                device(16, 4).with_sink(flash_telemetry::CountSink::default()),
                FtlConfig::default(),
                SwlConfig::new(2, 0),
            )
            .unwrap(),
        );
        assert_eq!(plain, probed, "telemetry must not perturb behaviour");
    }

    #[test]
    fn counters_attribute_swl_separately() {
        let d = device(16, 4);
        let mut ftl =
            PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(2, 0)).unwrap();
        for lba in 0..8u64 {
            ftl.write(lba, lba).unwrap();
        }
        for round in 0..400u64 {
            ftl.write(30, round).unwrap();
        }
        let c = ftl.counters();
        let device_erases = ftl.device().counters().erases;
        assert_eq!(
            c.total_erases(),
            device_erases,
            "attribution must cover every device erase"
        );
        assert!(c.swl_erases > 0);
    }

    #[test]
    fn program_failure_remaps_and_preserves_data() {
        use nand::FaultPlan;

        let d = device(16, 4).with_fault_plan(FaultPlan::new(7).with_program_fail_prob(0.05));
        let mut ftl = PageMappedFtl::new(d, FtlConfig::default()).unwrap();
        let mut shadow = std::collections::HashMap::new();
        for round in 0..200u64 {
            let lba = (round * 13) % 24;
            ftl.write(lba, round).unwrap();
            shadow.insert(lba, round);
        }
        let grown_bad = (0..16).filter(|&b| ftl.device().is_bad_block(b)).count();
        assert!(grown_bad > 0, "0.05 fail rate over 200+ programs must bite");
        for (lba, data) in shadow {
            assert_eq!(ftl.read(lba).unwrap(), Some(data), "lba {lba}");
        }
        ftl.check_consistency();
    }

    #[test]
    fn erase_failure_retires_block_and_swl_survives() {
        use nand::FaultPlan;

        // Tight endurance: blocks start dying after 6..=10 cycles, so the
        // free ladder shrinks as the workload runs. Acked writes must stay
        // readable; retirement must be reported.
        let d = device(24, 4).with_fault_plan(FaultPlan::new(3).with_endurance_range(6, 10));
        let mut ftl = PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(4, 0))
            .unwrap();
        let mut shadow = std::collections::HashMap::new();
        'work: for round in 0..2000u64 {
            let lba = (round * 7) % 32;
            match ftl.write(lba, round) {
                Ok(()) => {
                    shadow.insert(lba, round);
                }
                Err(FtlError::NoReclaimableSpace | FtlError::FreeExhausted) => break 'work,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(
            ftl.counters().retired_blocks > 0,
            "endurance range must retire blocks: {:?}",
            ftl.counters()
        );
        for (lba, data) in shadow {
            assert_eq!(ftl.read(lba).unwrap(), Some(data), "lba {lba}");
        }
        ftl.check_consistency();
    }

    #[test]
    fn fault_free_plan_is_bit_identical() {
        use nand::FaultPlan;

        fn work(mut ftl: PageMappedFtl) -> (FtlCounters, Vec<u64>) {
            for lba in 0..8u64 {
                ftl.write(lba, lba).unwrap();
            }
            for round in 0..400u64 {
                ftl.write(30, round).unwrap();
            }
            (ftl.counters(), ftl.device().erase_counts())
        }
        let plain = work(
            PageMappedFtl::with_swl(device(16, 4), FtlConfig::default(), SwlConfig::new(2, 0))
                .unwrap(),
        );
        let disarmed = work(
            PageMappedFtl::with_swl(
                device(16, 4).with_fault_plan(FaultPlan::new(99)),
                FtlConfig::default(),
                SwlConfig::new(2, 0),
            )
            .unwrap(),
        );
        assert_eq!(plain, disarmed, "a disarmed FaultPlan must change nothing");
    }

    fn snap_ftl(blocks: u32, ppb: u32, overprovision: u32) -> PageMappedFtl {
        let cfg = FtlConfig::default()
            .with_overprovision_blocks(overprovision)
            .with_snapshots(SnapshotConfig::new().with_manifest_blocks(2));
        PageMappedFtl::new(device(blocks, ppb), cfg).unwrap()
    }

    #[test]
    fn snapshot_reads_frozen_image() {
        let mut ftl = snap_ftl(16, 16, 4);
        for lba in 0..8u64 {
            ftl.write(lba, 100 + lba).unwrap();
        }
        ftl.snapshot_create(1).unwrap();
        for lba in 0..4u64 {
            ftl.write(lba, 200 + lba).unwrap();
        }
        ftl.trim(5).unwrap();
        for lba in 0..4u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(200 + lba));
            assert_eq!(ftl.read_snapshot(1, lba).unwrap(), Some(100 + lba));
        }
        // Trim hides the page from the head but the snapshot still pins it.
        assert_eq!(ftl.read(5).unwrap(), None);
        assert_eq!(ftl.read_snapshot(1, 5).unwrap(), Some(105));
        assert_eq!(ftl.read_snapshot(1, 7).unwrap(), Some(107));
        assert_eq!(ftl.read_snapshot(1, 40).unwrap(), None);
        assert_eq!(ftl.snapshot_ids(), vec![1]);
        ftl.check_snapshot_consistency();
        ftl.check_consistency();
    }

    #[test]
    fn snapshot_delete_releases_pinned_pages() {
        let mut ftl = snap_ftl(16, 16, 4);
        for lba in 0..8u64 {
            ftl.write(lba, lba).unwrap();
        }
        ftl.snapshot_create(9).unwrap();
        for lba in 0..8u64 {
            ftl.write(lba, 50 + lba).unwrap();
        }
        let audit = ftl.snapshot_audit().unwrap();
        // 8 head entries + 8 pinned snapshot entries, all distinct pages.
        assert_eq!(audit.mapping_count, 16);
        assert_eq!(audit.refcount_sum, 16);
        ftl.snapshot_delete(9).unwrap();
        let audit = ftl.snapshot_audit().unwrap();
        assert_eq!(audit.snapshots, 0);
        assert_eq!(audit.mapping_count, 8);
        assert_eq!(audit.refcount_sum, 8);
        let valid: u32 = (0..16)
            .map(|b| ftl.device().block(b).valid_pages())
            .sum();
        // Only the head's 8 pages (plus the manifest's metadata pages)
        // remain valid. The reserve is the top 4 blocks (2 buffers × 2).
        let manifest_valid: u32 = (12..16)
            .map(|b| ftl.device().block(b).valid_pages())
            .sum();
        assert_eq!(valid - manifest_valid, 8);
        ftl.check_snapshot_consistency();
    }

    #[test]
    fn clone_rolls_back_and_snapshot_survives() {
        let mut ftl = snap_ftl(16, 16, 4);
        for lba in 0..6u64 {
            ftl.write(lba, 100 + lba).unwrap();
        }
        ftl.snapshot_create(3).unwrap();
        for lba in 0..6u64 {
            ftl.write(lba, 200 + lba).unwrap();
        }
        ftl.write(20, 777).unwrap();
        ftl.snapshot_clone(3).unwrap();
        for lba in 0..6u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(100 + lba));
        }
        // The post-snapshot write is rolled back too.
        assert_eq!(ftl.read(20).unwrap(), None);
        // The clone is writable and isolated from the snapshot.
        ftl.write(0, 999).unwrap();
        assert_eq!(ftl.read(0).unwrap(), Some(999));
        assert_eq!(ftl.read_snapshot(3, 0).unwrap(), Some(100));
        ftl.check_snapshot_consistency();
        ftl.check_consistency();
    }

    #[test]
    fn offline_merge_is_origin_overlaid_with_snapshot() {
        let mut ftl = snap_ftl(16, 16, 4);
        // Origin image.
        for lba in 0..8u64 {
            ftl.write(lba, 100 + lba).unwrap();
        }
        ftl.snapshot_create(1).unwrap();
        // Head diverges: overwrites, a fresh LBA, and a trim.
        for lba in 0..4u64 {
            ftl.write(lba, 200 + lba).unwrap();
        }
        ftl.write(30, 555).unwrap();
        ftl.trim(6).unwrap();
        // Expected merged image: the head overlaid with the snapshot
        // (snapshot wins every LBA it maps; head-only LBAs survive).
        ftl.merge_offline(1).unwrap();
        for lba in 0..8u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(100 + lba), "lba {lba}");
        }
        assert_eq!(ftl.read(30).unwrap(), Some(555));
        let audit = ftl.snapshot_audit().unwrap();
        assert_eq!(audit.snapshots, 0);
        assert_eq!(audit.pending_merge, 0);
        assert_eq!(audit.refcount_sum, audit.mapping_count);
        ftl.check_snapshot_consistency();
        ftl.check_consistency();
    }

    #[test]
    fn online_merge_host_writes_beat_the_snapshot() {
        let mut ftl = snap_ftl(16, 16, 4);
        for lba in 0..8u64 {
            ftl.write(lba, 100 + lba).unwrap();
        }
        ftl.snapshot_create(1).unwrap();
        for lba in 0..8u64 {
            ftl.write(lba, 200 + lba).unwrap();
        }
        ftl.merge_begin(1).unwrap();
        // Interleaved live writes: stamped with the merge epoch, they must
        // survive the overlay regardless of which side of the cursor they
        // land on.
        ftl.write(1, 901).unwrap();
        let mut done = ftl.merge_step(3).unwrap();
        ftl.write(2, 902).unwrap(); // behind the cursor
        ftl.write(6, 906).unwrap(); // ahead of the cursor
        while !done {
            done = ftl.merge_step(3).unwrap();
        }
        ftl.merge_commit().unwrap();
        for lba in 0..8u64 {
            let expect = match lba {
                1 => 901,
                2 => 902,
                6 => 906,
                _ => 100 + lba,
            };
            assert_eq!(ftl.read(lba).unwrap(), Some(expect), "lba {lba}");
        }
        ftl.check_snapshot_consistency();
        ftl.check_consistency();
    }

    #[test]
    fn snapshots_survive_remount() {
        let mut ftl = snap_ftl(16, 16, 4);
        for lba in 0..8u64 {
            ftl.write(lba, 100 + lba).unwrap();
        }
        ftl.snapshot_create(1).unwrap();
        for lba in 0..4u64 {
            ftl.write(lba, 200 + lba).unwrap();
        }
        ftl.snapshot_create(2).unwrap();
        ftl.write(0, 300).unwrap();
        let config = ftl.config();
        let device = ftl.into_device();
        let mut ftl = PageMappedFtl::mount(device, config).unwrap();
        assert_eq!(ftl.snapshot_ids(), vec![1, 2]);
        assert_eq!(ftl.read(0).unwrap(), Some(300));
        for lba in 1..4u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(200 + lba));
        }
        for lba in 4..8u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(100 + lba));
        }
        for lba in 0..8u64 {
            assert_eq!(ftl.read_snapshot(1, lba).unwrap(), Some(100 + lba));
        }
        assert_eq!(ftl.read_snapshot(2, 0).unwrap(), Some(200));
        ftl.check_snapshot_consistency();
        ftl.check_consistency();
        // And the restored book keeps working: merge after remount.
        ftl.merge_offline(2).unwrap();
        assert_eq!(ftl.read(0).unwrap(), Some(200));
        ftl.check_snapshot_consistency();
    }

    #[test]
    fn snapshot_verbs_reject_bad_states() {
        let mut plain = plain_ftl(8, 4);
        assert_eq!(
            plain.snapshot_create(1),
            Err(FtlError::SnapshotsDisabled)
        );
        assert_eq!(plain.merge_step(4), Err(FtlError::SnapshotsDisabled));

        let mut ftl = snap_ftl(16, 16, 4);
        ftl.write(0, 1).unwrap();
        assert_eq!(
            ftl.snapshot_delete(7),
            Err(FtlError::UnknownSnapshot { id: 7 })
        );
        assert_eq!(ftl.merge_commit(), Err(FtlError::NoMergeInProgress));
        ftl.snapshot_create(1).unwrap();
        assert_eq!(
            ftl.snapshot_create(1),
            Err(FtlError::SnapshotExists { id: 1 })
        );
        ftl.merge_begin(1).unwrap();
        assert_eq!(ftl.snapshot_create(2), Err(FtlError::MergeInProgress));
        assert_eq!(ftl.snapshot_delete(1), Err(FtlError::MergeInProgress));
        assert_eq!(ftl.snapshot_clone(1), Err(FtlError::MergeInProgress));
        assert_eq!(ftl.merge_begin(1), Err(FtlError::MergeInProgress));
        while !ftl.merge_step(64).unwrap() {}
        ftl.merge_commit().unwrap();
        ftl.check_snapshot_consistency();
    }

    #[test]
    fn manifest_capacity_is_enforced() {
        // One manifest block of 8 pages: the empty record (6 words) fits,
        // but the first snapshot needs record_words(2, [1]) = 4+2+3+1 = 10
        // words > 8, so it cannot commit.
        let cfg = FtlConfig::default()
            .with_overprovision_blocks(2)
            .with_snapshots(SnapshotConfig::new());
        let mut ftl = PageMappedFtl::new(device(8, 8), cfg).unwrap();
        ftl.write(0, 1).unwrap();
        assert_eq!(ftl.snapshot_create(1), Err(FtlError::ManifestFull));
        // Nothing was mutated by the rejected verb.
        assert_eq!(ftl.snapshot_ids(), Vec::<u64>::new());
        let audit = ftl.snapshot_audit().unwrap();
        assert_eq!(audit.refcount_sum, 1);
        ftl.check_snapshot_consistency();
    }

    #[test]
    fn gc_and_swl_copy_pinned_pages_once_and_keep_them() {
        let d = device(16, 8);
        let cfg = FtlConfig::default()
            .with_overprovision_blocks(4)
            .with_snapshots(SnapshotConfig::new().with_manifest_blocks(2));
        let mut ftl = PageMappedFtl::with_swl(d, cfg, SwlConfig::new(4, 0)).unwrap();
        for lba in 0..8u64 {
            ftl.write(lba, 100 + lba).unwrap();
        }
        ftl.snapshot_create(1).unwrap();
        // Hammer a hot LBA long enough to force GC and SWL over the
        // snapshot-pinned blocks.
        for round in 0..2000u64 {
            ftl.write(40 + (round % 2), round).unwrap();
        }
        assert!(ftl.counters().swl_erases > 0, "SWL must have run");
        for lba in 0..8u64 {
            assert_eq!(ftl.read_snapshot(1, lba).unwrap(), Some(100 + lba));
            assert_eq!(ftl.read(lba).unwrap(), Some(100 + lba));
        }
        ftl.check_snapshot_consistency();
        ftl.check_consistency();
    }

    #[test]
    fn unused_snapshot_mode_stamps_live_status() {
        // With snapshots enabled but never used, every data page carries
        // epoch 0 == STATUS_LIVE: bit-identical spare bytes to a
        // snapshot-free build.
        let mut ftl = snap_ftl(16, 16, 4);
        for lba in 0..8u64 {
            ftl.write(lba, lba).unwrap();
        }
        let geometry = ftl.device().geometry();
        for b in 0..12u32 {
            for p in 0..geometry.pages_per_block() {
                if ftl.device().block(b).page_state(p).is_valid() {
                    assert_eq!(ftl.device().block(b).spare(p).status(), 0);
                }
            }
        }
    }
}
