//! The page-mapping translation layer: allocator, cleaner, SWL hook.

use flash_telemetry::{Cause, Event, NullSink, Sink, SpanKind, SpanTracker};
use hotid::MultiHashIdentifier;
use nand::{FreeBlockLadder, NandDevice, PageAddr, SpareArea, VictimIndex};
use swl_core::{LevelOutcome, SwLeveler, SwlCleaner, SwlConfig};

use crate::config::FtlConfig;
use crate::counters::FtlCounters;
use crate::error::FtlError;

/// Sentinel for "logical page unmapped" in the translation table.
const UNMAPPED: u32 = u32::MAX;

/// Which active block a write is steered to under hot/cold separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stream {
    Cold,
    Hot,
}

/// Core FTL state. Split from [`PageMappedFtl`] so the SW Leveler can borrow
/// it as a [`SwlCleaner`] while the leveler itself lives next to it.
#[derive(Debug)]
pub(crate) struct Inner<S: Sink = NullSink> {
    device: NandDevice<S>,
    config: FtlConfig,
    logical_pages: u64,
    /// Logical page → flat physical page index (`UNMAPPED` when unmapped).
    map: Vec<u32>,
    /// Log-structured write frontier: `(block, next free page)`.
    frontier: Option<(u32, u32)>,
    /// Second frontier for hot data under hot/cold separation.
    hot_frontier: Option<(u32, u32)>,
    /// On-line hot-data identifier, when separation is enabled.
    hot: Option<MultiHashIdentifier>,
    /// Free (erased) blocks bucketed by wear; allocation pops the lowest.
    free: FreeBlockLadder,
    is_free: Vec<bool>,
    /// Incremental index behind the greedy victim scan.
    victims: VictimIndex,
    /// Cyclic cursor of the greedy victim scan.
    gc_scan: u32,
    free_target: u32,
    counters: FtlCounters,
    /// While set, erases and copies are attributed to static wear leveling.
    in_swl: bool,
    /// Blocks retired by bad-block management (wear-out under
    /// `WearPolicy::FailWornBlocks`); never allocated or collected again.
    retired: Vec<bool>,
    /// Causal-span bookkeeping (ids + open stack); dormant under `NullSink`.
    spans: SpanTracker,
}

impl<S: Sink> Inner<S> {
    fn new(device: NandDevice<S>, config: FtlConfig) -> Result<Self, FtlError> {
        let geometry = device.geometry();
        let blocks = geometry.blocks();
        assert!(
            geometry.total_pages() < u64::from(u32::MAX),
            "device too large for the u32 translation table"
        );
        let overprovision = config.overprovision_blocks.min(blocks.saturating_sub(1));
        let logical_pages =
            u64::from(blocks - overprovision) * u64::from(geometry.pages_per_block());
        let free_target = config.free_target(blocks);
        let hot = match config.hot_data {
            Some(hd) => Some(MultiHashIdentifier::new(hd).map_err(FtlError::HotData)?),
            None => None,
        };
        let mut free = FreeBlockLadder::new();
        for b in 0..blocks {
            free.push(b, device.block(b).erase_count());
        }
        Ok(Self {
            map: vec![UNMAPPED; logical_pages as usize],
            free,
            is_free: vec![true; blocks as usize],
            victims: VictimIndex::new(blocks),
            frontier: None,
            hot_frontier: None,
            hot,
            gc_scan: 0,
            free_target,
            counters: FtlCounters::default(),
            logical_pages,
            retired: vec![false; blocks as usize],
            device,
            config,
            in_swl: false,
            spans: SpanTracker::new(),
        })
    }

    /// Opens a causal span stamped with the device's cumulative busy time.
    /// Returns the span id, or 0 (which [`Self::span_end`] ignores) when the
    /// sink is compiled out — the disabled path is two constant branches.
    fn span_begin(&mut self, kind: SpanKind) -> u64 {
        if !S::ENABLED {
            return 0;
        }
        let at_ns = self.device.busy_ns();
        let (id, parent) = self.spans.begin();
        self.device.sink_mut().event(Event::SpanBegin {
            id,
            parent,
            kind,
            at_ns,
        });
        id
    }

    /// Closes span `id`, first closing any descendants an error path left
    /// open so the emitted stream stays balanced.
    fn span_end(&mut self, id: u64) {
        if !S::ENABLED || id == 0 {
            return;
        }
        let at_ns = self.device.busy_ns();
        let Self { spans, device, .. } = self;
        spans.end(id, |popped| {
            device.sink_mut().event(Event::SpanEnd { id: popped, at_ns });
        });
    }

    /// Rebuilds the translation table from the spare areas of an existing
    /// chip — the firmware mount path. Partially written blocks are left
    /// closed (their free pages are reclaimed when GC erases them); the
    /// write frontier restarts on a fresh block.
    fn mount(device: NandDevice<S>, config: FtlConfig) -> Result<Self, FtlError> {
        let mut inner = Self::new(device, config)?;
        inner.free.clear();
        let geometry = inner.device.geometry();
        for b in 0..geometry.blocks() {
            let block = inner.device.block(b);
            if block.spare(0).is_bad_block_marker() {
                // Retired in an earlier session; the marker survives on
                // flash. Retired blocks hold no valid pages, so nothing
                // needs mapping.
                inner.is_free[b as usize] = false;
                inner.retired[b as usize] = true;
                continue;
            }
            if block.valid_pages() == 0 && block.invalid_pages() == 0 {
                let wear = block.erase_count();
                inner.is_free[b as usize] = true;
                inner.free.push(b, wear);
                continue;
            }
            inner.is_free[b as usize] = false;
            for (page, state) in block.page_states() {
                if !state.is_valid() {
                    continue;
                }
                let addr = PageAddr::new(b, page);
                let lba = block
                    .spare(page)
                    .lba()
                    .ok_or(FtlError::CorruptSpare { addr })?;
                if lba >= inner.logical_pages {
                    return Err(FtlError::CorruptSpare { addr });
                }
                if inner.map[lba as usize] != UNMAPPED {
                    return Err(FtlError::MountConflict { lba });
                }
                inner.map[lba as usize] = addr.flat_index(&geometry) as u32;
            }
        }
        for b in 0..geometry.blocks() {
            inner.refresh_victim(b);
        }
        Ok(inner)
    }

    fn host_write(&mut self, lba: u64, data: u64, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        if lba >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        match self.ensure_space(erased) {
            Ok(()) => {}
            // Below the free target with nothing reclaimable yet: keep
            // writing into the reserve and fail only when allocation is
            // truly impossible.
            Err(FtlError::NoReclaimableSpace) => {
                let pages_per_block = self.device.geometry().pages_per_block();
                let frontier_has_room = matches!(self.frontier, Some((_, p)) if p < pages_per_block)
                    || matches!(self.hot_frontier, Some((_, p)) if p < pages_per_block);
                if !frontier_has_room && self.free.is_empty() {
                    return Err(FtlError::NoReclaimableSpace);
                }
            }
            Err(other) => return Err(other),
        }
        let stream = match self.hot.as_mut() {
            Some(identifier) => {
                if identifier.record_write(lba) {
                    Stream::Hot
                } else {
                    Stream::Cold
                }
            }
            None => Stream::Cold,
        };
        let dst = self.program_remap(stream, data, lba)?;
        let old = self.map[lba as usize];
        if old != UNMAPPED {
            let addr = PageAddr::from_flat_index(&self.device.geometry(), u64::from(old));
            self.device.invalidate(addr)?;
            self.refresh_victim(addr.block);
        }
        self.map[lba as usize] = dst.flat_index(&self.device.geometry()) as u32;
        self.counters.host_writes += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::HostWrite { lba });
        }
        Ok(())
    }

    fn host_read(&mut self, lba: u64) -> Result<Option<u64>, FtlError> {
        if lba >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        self.counters.host_reads += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::HostRead { lba });
        }
        let entry = self.map[lba as usize];
        if entry == UNMAPPED {
            return Ok(None);
        }
        let addr = PageAddr::from_flat_index(&self.device.geometry(), u64::from(entry));
        Ok(Some(self.device.read(addr)?.data))
    }

    fn host_trim(&mut self, lba: u64) -> Result<(), FtlError> {
        if lba >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        let entry = self.map[lba as usize];
        if entry != UNMAPPED {
            let addr = PageAddr::from_flat_index(&self.device.geometry(), u64::from(entry));
            self.device.invalidate(addr)?;
            self.map[lba as usize] = UNMAPPED;
            self.refresh_victim(addr.block);
        }
        self.counters.trims += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::HostTrim { lba });
        }
        Ok(())
    }

    /// Runs the Cleaner until the free pool meets its target (the paper's
    /// "free blocks under 0.2 %" trigger).
    fn ensure_space(&mut self, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        let mut guard = 0u32;
        while (self.free.len() as u32) < self.free_target {
            self.collect_one(erased)?;
            guard += 1;
            if guard > self.device.geometry().blocks() * 2 {
                return Err(FtlError::FreeExhausted);
            }
        }
        Ok(())
    }

    /// Next free page of the stream's frontier, opening a fresh block when
    /// needed. Hot/cold separation keeps two active blocks; without it
    /// everything flows through the cold frontier.
    fn alloc_page(&mut self, stream: Stream) -> Result<PageAddr, FtlError> {
        let pages_per_block = self.device.geometry().pages_per_block();
        let frontier = match stream {
            Stream::Cold => &mut self.frontier,
            Stream::Hot => &mut self.hot_frontier,
        };
        match *frontier {
            Some((block, page)) if page < pages_per_block => {
                *frontier = Some((block, page + 1));
                Ok(PageAddr::new(block, page))
            }
            _ => {
                let closed = frontier.map(|(b, _)| b);
                let block = self.pop_freshest_free()?;
                let frontier = match stream {
                    Stream::Cold => &mut self.frontier,
                    Stream::Hot => &mut self.hot_frontier,
                };
                *frontier = Some((block, 1));
                // The closed block becomes a GC candidate and the fresh one
                // stops being one; keep the victim index in step.
                if let Some(b) = closed {
                    self.refresh_victim(b);
                }
                self.refresh_victim(block);
                Ok(PageAddr::new(block, 0))
            }
        }
    }

    /// Programs one page at the stream's frontier, retrying with a remap
    /// when the device reports an injected program failure: the grown-bad
    /// frontier block is closed (its valid pages become a normal GC victim,
    /// and its eventual erase failure retires it) and the write moves to a
    /// fresh frontier. Terminates because every retry consumes a free block
    /// and [`Self::alloc_page`] fails once the pool runs dry.
    fn program_remap(&mut self, stream: Stream, data: u64, lba: u64) -> Result<PageAddr, FtlError> {
        loop {
            let dst = self.alloc_page(stream)?;
            match self.device.program(dst, data, SpareArea::valid(lba)) {
                Ok(()) => return Ok(dst),
                Err(nand::NandError::ProgramFailed { .. }) => {
                    if self.frontier.map(|(b, _)| b) == Some(dst.block) {
                        self.frontier = None;
                    }
                    if self.hot_frontier.map(|(b, _)| b) == Some(dst.block) {
                        self.hot_frontier = None;
                    }
                    self.refresh_victim(dst.block);
                }
                Err(other) => return Err(other.into()),
            }
        }
    }

    /// Pops the free block with the lowest erase count — the dynamic wear
    /// leveling policy of the paper's Cleaner. O(1) amortized via the wear
    /// bucket ladder.
    fn pop_freshest_free(&mut self) -> Result<u32, FtlError> {
        let Some(block) = self.free.pop_min() else {
            return Err(FtlError::FreeExhausted);
        };
        self.is_free[block as usize] = false;
        Ok(block)
    }

    /// Re-reports one block to the victim index. Must be called after any
    /// event that may change the block's GC stats or eligibility: page
    /// invalidation, erase, retirement, or a frontier opening/closing on it.
    fn refresh_victim(&mut self, block: u32) {
        let eligible = !self.is_free[block as usize]
            && !self.retired[block as usize]
            && self.frontier.map(|(b, _)| b) != Some(block)
            && self.hot_frontier.map(|(b, _)| b) != Some(block);
        let (invalid, valid) = {
            let blk = self.device.block(block);
            (blk.invalid_pages(), blk.valid_pages())
        };
        self.victims.update(block, eligible, invalid, valid);
    }

    /// The pre-index linear victim scan, kept as the oracle the incremental
    /// [`VictimIndex`] is checked against under `debug_assertions`. Pure:
    /// does not advance `gc_scan`.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn reference_select_victim(&self) -> Option<u32> {
        let blocks = self.device.geometry().blocks();
        let frontier_block = self.frontier.map(|(b, _)| b);
        let hot_frontier_block = self.hot_frontier.map(|(b, _)| b);
        let mut fallback: Option<(u32, u32)> = None; // (invalid, block)
        for step in 0..blocks {
            let b = (self.gc_scan + step) % blocks;
            if self.is_free[b as usize]
                || self.retired[b as usize]
                || Some(b) == frontier_block
                || Some(b) == hot_frontier_block
            {
                continue;
            }
            let blk = self.device.block(b);
            let invalid = blk.invalid_pages();
            if invalid == 0 {
                continue;
            }
            if invalid > blk.valid_pages() {
                return Some(b);
            }
            if fallback.is_none_or(|(best, _)| invalid > best) {
                fallback = Some((invalid, b));
            }
        }
        fallback.map(|(_, b)| b)
    }

    /// Greedy cost/benefit victim selection, cyclic from `gc_scan`: the
    /// first block whose invalid pages (benefit) outnumber its valid pages
    /// (cost); if none qualifies, the block with the most invalid pages.
    /// Answered by the incremental [`VictimIndex`] instead of a linear scan.
    fn select_victim(&mut self) -> Result<u32, FtlError> {
        let blocks = self.device.geometry().blocks();
        let choice = self.victims.select(self.gc_scan);
        debug_assert_eq!(
            choice,
            self.reference_select_victim(),
            "victim index diverged from the linear-scan oracle"
        );
        if let Some(b) = choice {
            self.gc_scan = (b + 1) % blocks;
            return Ok(b);
        }
        // Last resort: a frontier itself may be the only block holding
        // invalid pages (tiny chips, trim-heavy workloads). Close it and
        // recycle it.
        if let Some(b) = self.frontier.map(|(b, _)| b) {
            if self.device.block(b).invalid_pages() > 0 {
                self.frontier = None;
                self.refresh_victim(b);
                self.gc_scan = (b + 1) % blocks;
                return Ok(b);
            }
        }
        if let Some(b) = self.hot_frontier.map(|(b, _)| b) {
            if self.device.block(b).invalid_pages() > 0 {
                self.hot_frontier = None;
                self.refresh_victim(b);
                self.gc_scan = (b + 1) % blocks;
                return Ok(b);
            }
        }
        Err(FtlError::NoReclaimableSpace)
    }

    /// One GC episode under a `gc` span: victim pick, relocation, erase.
    /// When SWL's Cleaner runs GC to refill the pool mid-pass, the span
    /// nests under the `swl` span and the episode is still charged to `gc`
    /// (innermost-span attribution).
    fn collect_one(&mut self, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        let span = self.span_begin(SpanKind::Gc);
        let result = self.collect_one_inner(erased);
        self.span_end(span);
        result
    }

    fn collect_one_inner(&mut self, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        let victim = self.select_victim()?;
        self.counters.gc_collections += 1;
        if S::ENABLED {
            let (invalid, valid) = {
                let blk = self.device.block(victim);
                (blk.invalid_pages(), blk.valid_pages())
            };
            let free_depth = self.free.len() as u32;
            let candidates = self.victims.candidates();
            self.device.sink_mut().event(Event::GcPick {
                key: victim,
                invalid,
                valid,
                free_depth,
                candidates,
            });
        }
        self.relocate_and_erase(victim, erased)
    }

    /// Copies every valid page out of `victim`, erases it and returns it to
    /// the free pool. Erases are appended to `erased` for SWL-BETUpdate.
    fn relocate_and_erase(&mut self, victim: u32, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        let result = self.relocate_and_erase_inner(victim, erased);
        if result.is_err() {
            // A failed relocation leaves the victim with changed page stats
            // (pages invalidated, a frontier possibly closed) that the happy
            // path would have re-reported from erase_and_free/retire. Refresh
            // here so a caller that survives the error (e.g. out-of-space
            // during GC) still sees the index in lock-step with the oracle.
            self.refresh_victim(victim);
        }
        result
    }

    fn relocate_and_erase_inner(
        &mut self,
        victim: u32,
        erased: &mut Vec<u32>,
    ) -> Result<(), FtlError> {
        if self.frontier.map(|(b, _)| b) == Some(victim) {
            // Only reachable through the SW Leveler (regular GC skips the
            // frontiers); abandon the remaining free pages of the frontier.
            self.frontier = None;
        }
        if self.hot_frontier.map(|(b, _)| b) == Some(victim) {
            self.hot_frontier = None;
        }
        let geometry = self.device.geometry();
        for page in 0..geometry.pages_per_block() {
            if !self.device.block(victim).page_state(page).is_valid() {
                continue;
            }
            let src = PageAddr::new(victim, page);
            let content = self.device.read(src)?;
            let lba = content
                .spare
                .lba()
                .ok_or(FtlError::CorruptSpare { addr: src })?;
            // GC survivors are cold by construction: they outlived their
            // whole block.
            let dst = self.program_remap(Stream::Cold, content.data, lba)?;
            self.device.invalidate(src)?;
            self.map[lba as usize] = dst.flat_index(&geometry) as u32;
            if self.in_swl {
                self.counters.swl_live_copies += 1;
            } else {
                self.counters.gc_live_copies += 1;
            }
            if S::ENABLED {
                let cause = if self.in_swl { Cause::Swl } else { Cause::Gc };
                self.device.sink_mut().event(Event::LiveCopy {
                    from_block: victim,
                    to_block: dst.block,
                    cause,
                });
            }
        }
        self.erase_and_free(victim, erased)
    }

    /// Erases `block` (which must hold no valid pages) and returns it to the
    /// free pool. A block that refuses to erase — worn out under
    /// [`nand::WearPolicy::FailWornBlocks`], or bad per the device's
    /// [`nand::FaultPlan`] — is retired instead: removed from circulation
    /// with its stale contents left in place.
    fn erase_and_free(&mut self, block: u32, erased: &mut Vec<u32>) -> Result<(), FtlError> {
        debug_assert_eq!(self.device.block(block).valid_pages(), 0);
        let pre_wear = self.device.block(block).erase_count();
        let cause = if self.in_swl { Cause::Swl } else { Cause::Gc };
        match self.device.erase_as(block, cause) {
            Ok(()) => {}
            Err(nand::NandError::BlockWornOut { .. } | nand::NandError::EraseFailed { .. }) => {
                self.retire(block);
                return Ok(());
            }
            Err(other) => return Err(other.into()),
        }
        if self.in_swl {
            self.counters.swl_erases += 1;
        } else {
            self.counters.gc_erases += 1;
        }
        let wear = self.device.block(block).erase_count();
        if !self.is_free[block as usize] {
            self.is_free[block as usize] = true;
            self.free.push(block, wear);
        } else {
            // SWL erased a block while it sat in the free pool; move it up
            // the wear ladder in place.
            self.free.reposition(block, pre_wear, wear);
        }
        self.refresh_victim(block);
        erased.push(block);
        Ok(())
    }

    fn retire(&mut self, block: u32) {
        self.retired[block as usize] = true;
        if self.is_free[block as usize] {
            self.is_free[block as usize] = false;
            let wear = self.device.block(block).erase_count();
            let removed = self.free.remove(block, wear);
            debug_assert!(removed, "free block {block} missing from the ladder");
        }
        // On-flash bad-block marker, so a later mount rediscovers the
        // retirement. A spare-area status program: free and uncuttable; it
        // can only fail once power is already cut, when the RAM state is
        // about to be discarded anyway.
        let _ = self.device.mark_bad(block);
        self.counters.retired_blocks += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::Retire { block });
        }
        self.refresh_victim(block);
    }

    /// Debug audit: every mapped page is valid on-device with a matching
    /// spare-area LBA, and no two LBAs share a physical page.
    #[cfg(test)]
    fn check_consistency(&mut self) {
        let geometry = self.device.geometry();
        let mut seen = std::collections::HashSet::new();
        for (lba, &entry) in self.map.iter().enumerate() {
            if entry == UNMAPPED {
                continue;
            }
            assert!(seen.insert(entry), "two lbas map to flat page {entry}");
            let addr = PageAddr::from_flat_index(&geometry, u64::from(entry));
            assert!(
                self.device
                    .block(addr.block)
                    .page_state(addr.page)
                    .is_valid(),
                "lba {lba} maps to non-valid page {addr}"
            );
            let spare = self.device.block(addr.block).spare(addr.page);
            assert_eq!(spare.lba(), Some(lba as u64), "spare mismatch at {addr}");
        }
    }
}

impl<S: Sink> SwlCleaner for Inner<S> {
    type Error = FtlError;

    /// Garbage-collects the requested block set for the SW Leveler: data
    /// blocks are relocated and erased, free blocks are erased in place
    /// (touching them both levels their wear and sets their BET flag).
    fn erase_block_set(
        &mut self,
        first_block: u32,
        count: u32,
        erased: &mut Vec<u32>,
    ) -> Result<(), FtlError> {
        self.in_swl = true;
        let result = (|| {
            let blocks = self.device.geometry().blocks();
            for b in first_block..(first_block + count).min(blocks) {
                if self.retired[b as usize] {
                    continue;
                }
                if self.frontier.map(|(fb, _)| fb) == Some(b) {
                    self.frontier = None;
                    self.refresh_victim(b);
                }
                if self.hot_frontier.map(|(fb, _)| fb) == Some(b) {
                    self.hot_frontier = None;
                    self.refresh_victim(b);
                }
                if !self.is_free[b as usize] {
                    // Relocation needs at least one free block to copy into.
                    if self.free.is_empty() {
                        self.collect_one(erased)?;
                    }
                    if !self.is_free[b as usize] {
                        self.relocate_and_erase(b, erased)?;
                        continue;
                    }
                }
                // Free block: erase in place.
                self.erase_and_free(b, erased)?;
            }
            Ok(())
        })();
        self.in_swl = false;
        result
    }

    /// Merges the leveler's events (activation, interval reset) into the
    /// FTL's telemetry stream.
    fn emit_telemetry(&mut self, event: Event) {
        if S::ENABLED {
            self.device.sink_mut().event(event);
        }
    }
}

/// A page-mapping FTL with an optional static wear leveler.
///
/// Generic over a telemetry [`Sink`] inherited from the device it is built
/// on; the default [`NullSink`] compiles all emission sites out. Host
/// operations, GC picks, live copies, cause-attributed erases, and leveler
/// activity all flow into the single attached sink.
///
/// See the [crate-level documentation](crate) for the design and an example.
#[derive(Debug)]
pub struct PageMappedFtl<S: Sink = NullSink> {
    inner: Inner<S>,
    swl: Option<SwLeveler>,
    erased_buf: Vec<u32>,
}

impl<S: Sink> PageMappedFtl<S> {
    /// Builds an FTL over `device` without static wear leveling.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice, but reserved for configuration
    /// validation.
    pub fn new(device: NandDevice<S>, config: FtlConfig) -> Result<Self, FtlError> {
        Ok(Self {
            inner: Inner::new(device, config)?,
            swl: None,
            erased_buf: Vec::new(),
        })
    }

    /// Builds an FTL with the SW Leveler attached.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::Swl`] when the leveler configuration is invalid.
    pub fn with_swl(
        device: NandDevice<S>,
        config: FtlConfig,
        swl_config: SwlConfig,
    ) -> Result<Self, FtlError> {
        let blocks = device.geometry().blocks();
        let swl = SwLeveler::new(blocks, swl_config)?;
        let mut ftl = Self::new(device, config)?;
        ftl.swl = Some(swl);
        Ok(ftl)
    }

    /// Re-attaches a previously used chip, rebuilding the translation table
    /// from the spare areas on flash — the firmware mount path. Pair with
    /// [`PageMappedFtl::into_device`] to simulate power cycles.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::CorruptSpare`] or [`FtlError::MountConflict`]
    /// when the on-flash state is not a consistent FTL layout.
    pub fn mount(device: NandDevice<S>, config: FtlConfig) -> Result<Self, FtlError> {
        Ok(Self {
            inner: Inner::mount(device, config)?,
            swl: None,
            erased_buf: Vec::new(),
        })
    }

    /// Shuts the layer down, returning the chip (with all its data and
    /// wear) for a later [`PageMappedFtl::mount`].
    pub fn into_device(self) -> NandDevice<S> {
        self.inner.device
    }

    /// Attaches (or replaces) a pre-built SW Leveler, e.g. one restored from
    /// a [`swl_core::persist::DualBuffer`] snapshot.
    pub fn attach_swl(&mut self, swl: SwLeveler) {
        self.swl = Some(swl);
    }

    /// Writes `data` to logical page `lba` (out-of-place), then gives the
    /// SW Leveler a chance to run.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] for bad addresses and propagates
    /// garbage-collection failures ([`FtlError::NoReclaimableSpace`] when
    /// the logical space is over-committed).
    pub fn write(&mut self, lba: u64, data: u64) -> Result<(), FtlError> {
        // Root span brackets the whole operation — GC, remaps, and any SWL
        // pass the write triggers — mirroring the simulator's latency
        // bracket exactly.
        let span = self.inner.span_begin(SpanKind::HostWrite);
        let mut erased = std::mem::take(&mut self.erased_buf);
        erased.clear();
        let result = self.inner.host_write(lba, data, &mut erased);
        let follow_up = self.notify_swl(&erased);
        self.erased_buf = erased;
        self.inner.span_end(span);
        result.and(follow_up)
    }

    /// Reads logical page `lba`; `None` when it has never been written.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] for bad addresses.
    pub fn read(&mut self, lba: u64) -> Result<Option<u64>, FtlError> {
        let span = self.inner.span_begin(SpanKind::HostRead);
        let result = self.inner.host_read(lba);
        self.inner.span_end(span);
        result
    }

    /// Discards logical page `lba` (TRIM): subsequent reads return `None`
    /// and the physical page becomes reclaimable without a copy.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] for bad addresses.
    pub fn trim(&mut self, lba: u64) -> Result<(), FtlError> {
        let span = self.inner.span_begin(SpanKind::HostTrim);
        let result = self.inner.host_trim(lba);
        self.inner.span_end(span);
        result
    }

    /// Feeds erases to SWL-BETUpdate and invokes SWL-Procedure when needed.
    fn notify_swl(&mut self, erased: &[u32]) -> Result<(), FtlError> {
        let Some(swl) = self.swl.as_mut() else {
            return Ok(());
        };
        for &b in erased {
            swl.note_erase(b);
        }
        // In deferred mode an external coordinator (e.g. the multi-channel
        // striped layer) watches a global unevenness and drives
        // `run_swl_step`; the layer itself only feeds SWL-BETUpdate.
        if !swl.config().deferred && swl.needs_leveling() {
            let span = self.inner.span_begin(SpanKind::Swl);
            let result = swl.level(&mut self.inner);
            self.inner.span_end(span);
            result?;
        }
        Ok(())
    }

    /// Forces garbage collection over a block range, as an external wear
    /// leveling policy (e.g. [`swl_core::counting::CountingLeveler`]) would:
    /// live data is relocated, the blocks are erased, and any attached SW
    /// Leveler is notified of the erases. Returns the number of blocks
    /// erased.
    ///
    /// # Errors
    ///
    /// Propagates garbage-collection failures.
    pub fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, FtlError> {
        // Externally driven collection: a root `gc` span rather than a host
        // kind, since no host op is paying for it.
        let span = self.inner.span_begin(SpanKind::Gc);
        let mut erased = std::mem::take(&mut self.erased_buf);
        erased.clear();
        let result = self.inner.erase_block_set(first_block, count, &mut erased);
        let erase_count = erased.len() as u64;
        let follow_up = self.notify_swl(&erased);
        self.erased_buf = erased;
        self.inner.span_end(span);
        result.and(follow_up)?;
        Ok(erase_count)
    }

    /// Manually invokes SWL-Procedure (e.g. from a timer), returning what it
    /// did. A no-op returning [`LevelOutcome::Idle`] without a leveler.
    ///
    /// # Errors
    ///
    /// Propagates garbage-collection failures.
    pub fn run_swl(&mut self) -> Result<LevelOutcome, FtlError> {
        match self.swl.as_mut() {
            Some(swl) => {
                let span = self.inner.span_begin(SpanKind::Swl);
                let result = swl.level(&mut self.inner);
                self.inner.span_end(span);
                result
            }
            None => Ok(LevelOutcome::Idle),
        }
    }

    /// Runs exactly one SWL-Procedure step, ignoring the local threshold —
    /// the entry point for an external multi-shard coordinator (see
    /// [`SwLeveler::level_step`]).
    ///
    /// # Errors
    ///
    /// Propagates garbage-collection failures.
    pub fn run_swl_step(&mut self) -> Result<LevelOutcome, FtlError> {
        match self.swl.as_mut() {
            Some(swl) => {
                let span = self.inner.span_begin(SpanKind::Swl);
                let result = swl.level_step(&mut self.inner);
                self.inner.span_end(span);
                result
            }
            None => Ok(LevelOutcome::Idle),
        }
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.inner.logical_pages
    }

    /// The underlying device (erase counts, busy time, failure record).
    pub fn device(&self) -> &NandDevice<S> {
        &self.inner.device
    }

    /// Attribution counters.
    pub fn counters(&self) -> FtlCounters {
        self.inner.counters
    }

    /// The attached SW Leveler, if any.
    pub fn swl(&self) -> Option<&SwLeveler> {
        self.swl.as_ref()
    }

    /// The hot-data identifier, when hot/cold separation is enabled.
    pub fn hot_data(&self) -> Option<&MultiHashIdentifier> {
        self.inner.hot.as_ref()
    }

    /// The configuration in effect.
    pub fn config(&self) -> FtlConfig {
        self.inner.config
    }

    /// Fraction of physical pages currently holding valid data.
    pub fn utilization(&self) -> f64 {
        let geometry = self.inner.device.geometry();
        let valid: u64 = (0..geometry.blocks())
            .map(|b| u64::from(self.inner.device.block(b).valid_pages()))
            .sum();
        valid as f64 / geometry.total_pages() as f64
    }

    #[cfg(test)]
    pub(crate) fn check_consistency(&mut self) {
        self.inner.check_consistency();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand::{CellKind, Geometry};

    fn device(blocks: u32, pages: u32) -> NandDevice {
        NandDevice::new(
            Geometry::new(blocks, pages, 2048),
            CellKind::Mlc2.spec().with_endurance(1_000_000),
        )
    }

    fn plain_ftl(blocks: u32, pages: u32) -> PageMappedFtl {
        PageMappedFtl::new(device(blocks, pages), FtlConfig::default()).unwrap()
    }

    #[test]
    fn read_your_writes() {
        let mut ftl = plain_ftl(8, 4);
        ftl.write(3, 111).unwrap();
        ftl.write(5, 222).unwrap();
        assert_eq!(ftl.read(3).unwrap(), Some(111));
        assert_eq!(ftl.read(5).unwrap(), Some(222));
        assert_eq!(ftl.read(0).unwrap(), None);
    }

    #[test]
    fn updates_are_out_of_place() {
        let mut ftl = plain_ftl(8, 4);
        ftl.write(1, 1).unwrap();
        ftl.write(1, 2).unwrap();
        ftl.write(1, 3).unwrap();
        assert_eq!(ftl.read(1).unwrap(), Some(3));
        // Three programs happened; two pages are now invalid.
        let invalid: u32 = (0..8).map(|b| ftl.device().block(b).invalid_pages()).sum();
        assert_eq!(invalid, 2);
        ftl.check_consistency();
    }

    #[test]
    fn lba_bounds_enforced() {
        let mut ftl = plain_ftl(4, 4);
        let max = ftl.logical_pages();
        assert!(matches!(
            ftl.write(max, 0),
            Err(FtlError::LbaOutOfRange { .. })
        ));
        assert!(matches!(ftl.read(max), Err(FtlError::LbaOutOfRange { .. })));
        assert!(matches!(ftl.trim(max), Err(FtlError::LbaOutOfRange { .. })));
    }

    #[test]
    fn overprovisioning_shrinks_logical_space() {
        let ftl = PageMappedFtl::new(
            device(8, 4),
            FtlConfig::default().with_overprovision_blocks(2),
        )
        .unwrap();
        assert_eq!(ftl.logical_pages(), 6 * 4);
    }

    #[test]
    fn gc_reclaims_invalid_pages_under_pressure() {
        // 8 blocks × 4 pages = 32 physical pages; hammer 4 LBAs so GC must
        // run many times.
        let mut ftl = plain_ftl(8, 4);
        for round in 0..100u64 {
            for lba in 0..4u64 {
                ftl.write(lba, round * 10 + lba).unwrap();
            }
        }
        for lba in 0..4u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(99 * 10 + lba));
        }
        assert!(ftl.counters().gc_erases > 0, "gc must have produced space");
        assert!(ftl.counters().gc_collections > 0);
        ftl.check_consistency();
    }

    #[test]
    fn gc_copies_live_data_intact() {
        // Fill cold data once, then hammer one hot LBA; GC must preserve the
        // cold data when it relocates blocks.
        let mut ftl = plain_ftl(8, 4);
        for lba in 0..16u64 {
            ftl.write(lba, 1000 + lba).unwrap();
        }
        for round in 0..200u64 {
            ftl.write(20, round).unwrap();
        }
        for lba in 0..16u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(1000 + lba), "lba {lba}");
        }
        assert_eq!(ftl.read(20).unwrap(), Some(199));
        ftl.check_consistency();
    }

    #[test]
    fn full_logical_space_rewrites_succeed() {
        // Writing every LBA repeatedly is the worst case for a 0-overprovision
        // FTL; the free-target reserve must keep GC alive.
        let g = Geometry::new(16, 4, 2048);
        let d = NandDevice::new(g, CellKind::Mlc2.spec().with_endurance(1_000_000));
        let mut ftl =
            PageMappedFtl::new(d, FtlConfig::default().with_overprovision_blocks(3)).unwrap();
        let n = ftl.logical_pages();
        for round in 0..6u64 {
            for lba in 0..n {
                ftl.write(lba, round * 1000 + lba).unwrap();
            }
        }
        for lba in 0..n {
            assert_eq!(ftl.read(lba).unwrap(), Some(5000 + lba));
        }
        ftl.check_consistency();
    }

    #[test]
    fn over_committed_space_reports_no_reclaimable() {
        // 4 blocks × 4 pages, no overprovision: 16 logical pages cannot all
        // stay valid while GC needs room to breathe.
        let mut ftl = plain_ftl(4, 4);
        let mut failed = false;
        'outer: for round in 0..4u64 {
            for lba in 0..16u64 {
                match ftl.write(lba, round) {
                    Ok(()) => {}
                    Err(FtlError::NoReclaimableSpace) => {
                        failed = true;
                        break 'outer;
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
        }
        assert!(failed, "over-committed ftl must fail cleanly");
    }

    #[test]
    fn trim_releases_space() {
        let mut ftl = plain_ftl(4, 4);
        for lba in 0..10u64 {
            ftl.write(lba, lba).unwrap();
        }
        for lba in 0..10u64 {
            ftl.trim(lba).unwrap();
        }
        assert_eq!(ftl.read(3).unwrap(), None);
        assert_eq!(ftl.counters().trims, 10);
        // Trimmed pages are invalid, so heavy rewriting now succeeds.
        for round in 0..20u64 {
            for lba in 0..8u64 {
                ftl.write(lba, round).unwrap();
            }
        }
        ftl.check_consistency();
    }

    #[test]
    fn allocation_prefers_low_wear_blocks() {
        let mut ftl = plain_ftl(8, 4);
        // Cycle a small working set; dynamic wear leveling should keep the
        // spread of erase counts tight across used blocks.
        for round in 0..400u64 {
            for lba in 0..8u64 {
                ftl.write(lba, round).unwrap();
            }
        }
        let stats = ftl.device().erase_stats();
        assert!(
            stats.max_over_mean() < 3.0,
            "dynamic WL keeps recycled blocks even: {stats}"
        );
    }

    #[test]
    fn swl_attaches_and_levels() {
        let d = device(16, 4);
        let mut ftl =
            PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(4, 0)).unwrap();
        // Static workload: 8 cold LBAs written once...
        for lba in 0..8u64 {
            ftl.write(lba, 7000 + lba).unwrap();
        }
        // ...then one hot LBA hammered.
        for round in 0..600u64 {
            ftl.write(40, round).unwrap();
        }
        let counters = ftl.counters();
        assert!(
            counters.swl_erases > 0,
            "SWL must have triggered: {counters:?}"
        );
        let swl = ftl.swl().unwrap();
        assert!(swl.stats().interval_resets > 0 || swl.stats().sets_cleaned > 0);
        // Cold data survived the forced moves.
        for lba in 0..8u64 {
            assert_eq!(ftl.read(lba).unwrap(), Some(7000 + lba));
        }
        ftl.check_consistency();
    }

    #[test]
    fn swl_spreads_wear_onto_cold_blocks() {
        let run = |swl: bool| -> (f64, u64) {
            let d = device(16, 8);
            let mut ftl = if swl {
                PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(8, 0)).unwrap()
            } else {
                PageMappedFtl::new(d, FtlConfig::default()).unwrap()
            };
            // Cold data occupying half the logical space.
            for lba in 0..56u64 {
                ftl.write(lba, lba).unwrap();
            }
            for round in 0..3000u64 {
                ftl.write(100 + (round % 4), round).unwrap();
            }
            let stats = ftl.device().erase_stats();
            (stats.std_dev, stats.max)
        };
        let (dev_plain, _) = run(false);
        let (dev_swl, _) = run(true);
        assert!(
            dev_swl < dev_plain,
            "SWL must flatten the erase distribution: {dev_swl:.2} vs {dev_plain:.2}"
        );
    }

    #[test]
    fn run_swl_without_leveler_is_idle() {
        let mut ftl = plain_ftl(4, 4);
        assert_eq!(ftl.run_swl().unwrap(), LevelOutcome::Idle);
    }

    #[test]
    fn attach_swl_after_recovery() {
        let d = device(8, 4);
        let mut ftl = PageMappedFtl::new(d, FtlConfig::default()).unwrap();
        let leveler = SwLeveler::new(8, SwlConfig::new(10, 0)).unwrap();
        ftl.attach_swl(leveler);
        assert!(ftl.swl().is_some());
        ftl.write(0, 1).unwrap();
        assert_eq!(ftl.read(0).unwrap(), Some(1));
    }

    #[test]
    fn utilization_tracks_valid_pages() {
        let mut ftl = plain_ftl(4, 4);
        assert_eq!(ftl.utilization(), 0.0);
        for lba in 0..8u64 {
            ftl.write(lba, 0).unwrap();
        }
        assert!((ftl.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hot_cold_separation_reduces_live_copies() {
        let run = |hot: bool| -> (f64, u64) {
            let config = if hot {
                FtlConfig::default().with_hot_data(hotid::HotDataConfig::default())
            } else {
                FtlConfig::default()
            };
            let mut ftl = PageMappedFtl::new(device(32, 16), config).unwrap();
            // Mixed stream: cold sweep interleaved with hot hammering, the
            // worst case for an unseparated log.
            for round in 0..6000u64 {
                let lba = if round % 4 == 0 {
                    160 + (round / 4) % 160 // slowly cycling cold-ish data
                } else {
                    round % 8 // hot set
                };
                ftl.write(lba, round).unwrap();
            }
            let c = ftl.counters();
            (c.avg_live_copies_per_gc_erase(), c.total_live_copies())
        };
        let (l_plain, copies_plain) = run(false);
        let (l_hot, copies_hot) = run(true);
        assert!(
            l_hot < l_plain,
            "separation must reduce L: {l_hot:.2} vs {l_plain:.2}"
        );
        assert!(
            copies_hot < copies_plain,
            "separation must reduce total copies: {copies_hot} vs {copies_plain}"
        );
    }

    #[test]
    fn hot_cold_separation_preserves_correctness() {
        let config = FtlConfig::default().with_hot_data(hotid::HotDataConfig::default());
        let mut ftl =
            PageMappedFtl::with_swl(device(32, 16), config, SwlConfig::new(6, 0)).unwrap();
        let mut shadow = std::collections::HashMap::new();
        for round in 0..5000u64 {
            let lba = (round * 31 + round / 7) % 300;
            ftl.write(lba, round).unwrap();
            shadow.insert(lba, round);
        }
        for (lba, data) in shadow {
            assert_eq!(ftl.read(lba).unwrap(), Some(data));
        }
        assert!(ftl.hot_data().unwrap().writes_recorded() == 5000);
        ftl.check_consistency();
    }

    #[test]
    fn event_stream_reconstructs_counters_exactly() {
        use flash_telemetry::{MetricsAggregator, VecSink};

        let d = device(16, 4).with_sink(VecSink::default());
        let mut ftl =
            PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(2, 0)).unwrap();
        for lba in 0..8u64 {
            ftl.write(lba, lba).unwrap();
        }
        for round in 0..400u64 {
            ftl.write(30, round).unwrap();
            if round % 7 == 0 {
                ftl.read(round % 8).unwrap();
            }
            if round == 200 {
                ftl.trim(5).unwrap();
            }
        }
        let counters = ftl.counters();
        assert!(counters.swl_erases > 0, "scenario must exercise SWL");
        let mut agg = MetricsAggregator::new();
        for event in ftl.into_device().into_sink().events {
            agg.event(event);
        }
        assert_eq!(agg.counters(), counters);
        assert!(agg.swl_invokes() > 0);
    }

    #[test]
    fn spans_balance_and_attribute_all_device_time() {
        use flash_telemetry::{SpanCause, SpanReplayer, VecSink};

        let d = device(16, 4).with_sink(VecSink::default());
        let mut ftl =
            PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(2, 0)).unwrap();
        // Record the live per-write busy-time bracket the simulator would.
        let mut live_totals = Vec::new();
        let mut do_write = |ftl: &mut PageMappedFtl<VecSink>, lba, data| {
            let before = ftl.device().busy_ns();
            ftl.write(lba, data).unwrap();
            live_totals.push(ftl.device().busy_ns() - before);
        };
        for lba in 0..8u64 {
            do_write(&mut ftl, lba, lba);
        }
        for round in 0..400u64 {
            do_write(&mut ftl, 30, round);
        }
        ftl.read(3).unwrap();
        ftl.trim(7).unwrap();
        assert!(ftl.counters().swl_erases > 0, "scenario must exercise SWL");

        let mut replay = SpanReplayer::new();
        let mut writes = Vec::new();
        let mut swl_time = 0u64;
        for event in &ftl.into_device().into_sink().events {
            if let Some(op) = replay.observe(event) {
                if op.kind == flash_telemetry::SpanKind::HostWrite {
                    writes.push(op);
                    swl_time += op.ns(SpanCause::Swl);
                }
            }
        }
        assert!(replay.check().is_clean(), "{:?}", replay.check());
        // Every live write reappears with a bit-exact total, fully
        // attributed across the four causes.
        assert_eq!(writes.len(), live_totals.len());
        for (op, &live) in writes.iter().zip(&live_totals) {
            assert_eq!(op.total_ns(), live);
            assert_eq!(op.cause_ns.iter().sum::<u64>(), op.total_ns());
        }
        assert!(swl_time > 0, "SWL passes must show up in the attribution");
    }

    #[test]
    fn instrumented_run_matches_null_sink_run() {
        fn work<S: Sink>(mut ftl: PageMappedFtl<S>) -> (FtlCounters, Vec<u64>) {
            for lba in 0..8u64 {
                ftl.write(lba, lba).unwrap();
            }
            for round in 0..400u64 {
                ftl.write(30, round).unwrap();
            }
            (ftl.counters(), ftl.device().erase_counts())
        }
        let plain = work(
            PageMappedFtl::with_swl(device(16, 4), FtlConfig::default(), SwlConfig::new(2, 0))
                .unwrap(),
        );
        let probed = work(
            PageMappedFtl::with_swl(
                device(16, 4).with_sink(flash_telemetry::CountSink::default()),
                FtlConfig::default(),
                SwlConfig::new(2, 0),
            )
            .unwrap(),
        );
        assert_eq!(plain, probed, "telemetry must not perturb behaviour");
    }

    #[test]
    fn counters_attribute_swl_separately() {
        let d = device(16, 4);
        let mut ftl =
            PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(2, 0)).unwrap();
        for lba in 0..8u64 {
            ftl.write(lba, lba).unwrap();
        }
        for round in 0..400u64 {
            ftl.write(30, round).unwrap();
        }
        let c = ftl.counters();
        let device_erases = ftl.device().counters().erases;
        assert_eq!(
            c.total_erases(),
            device_erases,
            "attribution must cover every device erase"
        );
        assert!(c.swl_erases > 0);
    }

    #[test]
    fn program_failure_remaps_and_preserves_data() {
        use nand::FaultPlan;

        let d = device(16, 4).with_fault_plan(FaultPlan::new(7).with_program_fail_prob(0.05));
        let mut ftl = PageMappedFtl::new(d, FtlConfig::default()).unwrap();
        let mut shadow = std::collections::HashMap::new();
        for round in 0..200u64 {
            let lba = (round * 13) % 24;
            ftl.write(lba, round).unwrap();
            shadow.insert(lba, round);
        }
        let grown_bad = (0..16).filter(|&b| ftl.device().is_bad_block(b)).count();
        assert!(grown_bad > 0, "0.05 fail rate over 200+ programs must bite");
        for (lba, data) in shadow {
            assert_eq!(ftl.read(lba).unwrap(), Some(data), "lba {lba}");
        }
        ftl.check_consistency();
    }

    #[test]
    fn erase_failure_retires_block_and_swl_survives() {
        use nand::FaultPlan;

        // Tight endurance: blocks start dying after 6..=10 cycles, so the
        // free ladder shrinks as the workload runs. Acked writes must stay
        // readable; retirement must be reported.
        let d = device(24, 4).with_fault_plan(FaultPlan::new(3).with_endurance_range(6, 10));
        let mut ftl = PageMappedFtl::with_swl(d, FtlConfig::default(), SwlConfig::new(4, 0))
            .unwrap();
        let mut shadow = std::collections::HashMap::new();
        'work: for round in 0..2000u64 {
            let lba = (round * 7) % 32;
            match ftl.write(lba, round) {
                Ok(()) => {
                    shadow.insert(lba, round);
                }
                Err(FtlError::NoReclaimableSpace | FtlError::FreeExhausted) => break 'work,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(
            ftl.counters().retired_blocks > 0,
            "endurance range must retire blocks: {:?}",
            ftl.counters()
        );
        for (lba, data) in shadow {
            assert_eq!(ftl.read(lba).unwrap(), Some(data), "lba {lba}");
        }
        ftl.check_consistency();
    }

    #[test]
    fn fault_free_plan_is_bit_identical() {
        use nand::FaultPlan;

        fn work(mut ftl: PageMappedFtl) -> (FtlCounters, Vec<u64>) {
            for lba in 0..8u64 {
                ftl.write(lba, lba).unwrap();
            }
            for round in 0..400u64 {
                ftl.write(30, round).unwrap();
            }
            (ftl.counters(), ftl.device().erase_counts())
        }
        let plain = work(
            PageMappedFtl::with_swl(device(16, 4), FtlConfig::default(), SwlConfig::new(2, 0))
                .unwrap(),
        );
        let disarmed = work(
            PageMappedFtl::with_swl(
                device(16, 4).with_fault_plan(FaultPlan::new(99)),
                FtlConfig::default(),
                SwlConfig::new(2, 0),
            )
            .unwrap(),
        );
        assert_eq!(plain, disarmed, "a disarmed FaultPlan must change nothing");
    }
}
