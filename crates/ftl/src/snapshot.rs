//! Copy-on-write snapshot bookkeeping: per-map epoch priority lists, page
//! refcounts, and the dual-buffer on-flash manifest codec.
//!
//! # Model
//!
//! Every host write is stamped (in the page's spare-area status word) with
//! the *epoch* that was current when it was programmed. Epoch 0 is
//! [`nand::SpareArea::valid`]'s `STATUS_LIVE`, so a snapshot-free FTL
//! programs exactly the spare bytes it always did.
//!
//! Each mapping set — the live head and every snapshot — owns an ordered
//! *epoch priority list*: index 0 is its most recent epoch, later entries
//! are older history. A mapping set "contains" a physical page when the
//! page's epoch appears in its list; when several valid pages claim the
//! same LBA, the one whose epoch ranks earliest in the list wins. This is
//! what lets [`mount`](crate::PageMappedFtl::mount) rebuild the head map
//! *and* every snapshot map from nothing but the on-flash spare areas plus
//! a tiny manifest of epoch lists:
//!
//! - **create(S)** freezes the head's current list as S's list, clones the
//!   head map into S (increfing every page), and opens a fresh epoch at the
//!   head of the head list.
//! - **clone(S)** (rollback) replaces the head list with a fresh epoch
//!   prepended to S's list and the head map with S's map.
//! - **merge(S)** overlays S onto the head: post-`merge_begin` host writes
//!   (stamped with the merge epoch) win, everything else takes S's mapping.
//!   The committed head list is `[merge-epoch] ++ S's list ++ old head
//!   list` (first occurrence wins), which makes mount resolution agree
//!   with the streamed RAM merge.
//!
//! Physical pages are refcounted: `refs[p]` counts the mapping sets whose
//! map currently points at `p`, plus (mid-merge only) pending merge
//! decrefs that [`crate::PageMappedFtl::merge_commit`] will apply. A page
//! is device-invalidated exactly when its refcount reaches zero, so GC and
//! SWL — which only see valid/invalid page counts — stay honest for free:
//! a snapshot-pinned page is valid, gets copied (once) on relocation, and
//! is never reclaimed while any mapping set references it.
//!
//! # Manifest
//!
//! The epoch lists (not the maps!) persist in a dual-buffer manifest in
//! `2 × manifest_blocks` blocks reserved at the top of the chip, one u64
//! word per page. A commit erases the standby buffer, programs the record,
//! and programs the checksum word *last* — the checksum is the commit
//! point. Mount parses both buffers (a torn or unprogrammed record fails
//! its checksum) and takes the valid one with the higher sequence number;
//! when neither parses, the book starts fresh (head `[0]`, no snapshots),
//! which is also the snapshots-were-never-used state.

use crate::config::SnapshotConfig;
use crate::merge::UNMAPPED;

/// Spare-status tag on manifest metadata pages. Distinct from every epoch
/// (epochs stay below `u32::MAX - 2`) and from the firmware bad-block
/// marker (`u32::MAX`).
pub(crate) const MANIFEST_STATUS: u32 = u32::MAX - 1;

/// First manifest word: magic xor format version.
const MANIFEST_MAGIC: u64 = 0x534e_4150_424f_4f4b; // "SNAPBOOK"
const MANIFEST_VERSION: u64 = 1;

/// Salt folded into the trailing checksum word.
const CHECKSUM_SALT: u64 = 0x6d61_7070_6d72_6765;

/// One retained snapshot: identity, frozen epoch list, materialized map.
#[derive(Debug, Clone)]
pub(crate) struct SnapEntry {
    /// Caller-chosen identity.
    pub id: u64,
    /// Frozen epoch priority list (index 0 = newest).
    pub epochs: Vec<u32>,
    /// Logical page → flat physical page (`UNMAPPED` when unmapped).
    pub map: Vec<u32>,
}

/// RAM-only state of an in-flight online merge. Deliberately *not*
/// persisted: a crash mid-merge resolves to the origin (the manifest
/// committed at `merge_begin` still lists the snapshot), a crash after
/// `merge_commit` resolves to the merged device — never a hybrid.
#[derive(Debug, Clone)]
pub(crate) struct MergeState {
    /// Snapshot being merged into the head.
    pub snap_id: u64,
    /// Epoch opened at `merge_begin`; host writes stamped with it beat the
    /// snapshot's mappings.
    pub epoch: u32,
    /// Next LBA the windowed merge will examine.
    pub cursor: u64,
    /// Origin pages the merge un-referenced; their decrefs (and any
    /// resulting device invalidations) apply at `merge_commit`. Until then
    /// each keeps its refcount so a crash can still resolve to the origin.
    pub pending: Vec<u32>,
}

/// The in-RAM snapshot book attached to a snapshot-enabled FTL.
#[derive(Debug, Clone)]
pub(crate) struct SnapBook {
    pub cfg: SnapshotConfig,
    /// Next epoch to hand out (epoch 0 is the initial head epoch).
    pub gen: u32,
    /// Head (live) mapping set's epoch priority list; `head_epochs[0]` is
    /// the epoch stamped on new host writes.
    pub head_epochs: Vec<u32>,
    /// Retained snapshots, in creation order.
    pub snaps: Vec<SnapEntry>,
    /// Per flat physical page: mapping sets referencing it (+ pending merge
    /// decrefs).
    pub refs: Vec<u32>,
    /// Per flat physical page: the epoch stamped in its spare area (RAM
    /// mirror so relocation and merge never re-read spares). Meaningful
    /// only while `refs > 0`.
    pub epoch_of: Vec<u32>,
    /// In-flight online merge, if any.
    pub merge: Option<MergeState>,
    /// Sequence number the *next* manifest commit will carry.
    pub seq: u64,
    /// Buffer index (0/1) the next commit programs.
    pub next_buffer: u32,
}

/// A parsed manifest record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ManifestRecord {
    pub seq: u64,
    pub gen: u32,
    pub head_epochs: Vec<u32>,
    /// Per snapshot: (id, epoch list). Maps are rebuilt from spare areas.
    pub snaps: Vec<(u64, Vec<u32>)>,
}

impl SnapBook {
    /// Fresh book: head epoch 0, no snapshots, all refcounts zero.
    pub fn new(cfg: SnapshotConfig, total_pages: usize) -> Self {
        Self {
            cfg,
            gen: 1,
            head_epochs: vec![0],
            snaps: Vec::new(),
            refs: vec![0; total_pages],
            epoch_of: vec![0; total_pages],
            merge: None,
            seq: 1,
            next_buffer: 0,
        }
    }

    /// Restores the epoch lists of a parsed manifest (maps and refcounts
    /// are rebuilt by the mount scan).
    pub fn restore(&mut self, record: ManifestRecord, logical_pages: usize) {
        self.gen = record.gen;
        self.head_epochs = record.head_epochs;
        self.snaps = record
            .snaps
            .into_iter()
            .map(|(id, epochs)| SnapEntry {
                id,
                epochs,
                map: vec![UNMAPPED; logical_pages],
            })
            .collect();
        self.seq = record.seq + 1;
    }

    /// Index of snapshot `id` in the book.
    pub fn snap_index(&self, id: u64) -> Option<usize> {
        self.snaps.iter().position(|s| s.id == id)
    }

    /// The epoch stamped on new host writes.
    pub fn head_epoch(&self) -> u32 {
        self.head_epochs[0]
    }

    /// Hands out the next epoch. Epochs never reach `u32::MAX - 1`, keeping
    /// them distinct from [`MANIFEST_STATUS`] and the bad-block marker.
    pub fn next_epoch(&mut self) -> u32 {
        assert!(self.gen < u32::MAX - 2, "snapshot epoch space exhausted");
        let e = self.gen;
        self.gen += 1;
        e
    }

    /// Adds one reference to flat page `p`.
    pub fn incref(&mut self, p: u32) {
        self.refs[p as usize] += 1;
    }

    /// Drops one reference to flat page `p`; returns `true` when the count
    /// hits zero (the caller must then device-invalidate the page).
    pub fn decref(&mut self, p: u32) -> bool {
        let r = &mut self.refs[p as usize];
        debug_assert!(*r > 0, "decref of unreferenced page {p}");
        *r -= 1;
        *r == 0
    }

    /// Words the manifest record occupies for the given epoch-list shape
    /// (header + head list + per-snapshot id/len/list + checksum).
    pub fn record_words(head_len: usize, snap_lens: impl Iterator<Item = usize>) -> usize {
        4 + head_len + snap_lens.map(|l| 2 + l).sum::<usize>() + 1
    }

    /// Pages available per manifest buffer.
    pub fn buffer_words(&self, pages_per_block: u32) -> usize {
        self.cfg.manifest_blocks as usize * pages_per_block as usize
    }

    /// Encodes the current epoch lists as the next manifest record
    /// (checksum in the final word).
    pub fn encode(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(Self::record_words(
            self.head_epochs.len(),
            self.snaps.iter().map(|s| s.epochs.len()),
        ));
        w.push(MANIFEST_MAGIC ^ MANIFEST_VERSION);
        w.push(self.seq);
        w.push(u64::from(self.gen));
        w.push(self.head_epochs.len() as u64 | ((self.snaps.len() as u64) << 32));
        w.extend(self.head_epochs.iter().map(|&e| u64::from(e)));
        for s in &self.snaps {
            w.push(s.id);
            w.push(s.epochs.len() as u64);
            w.extend(s.epochs.iter().map(|&e| u64::from(e)));
        }
        w.push(checksum(&w));
        w
    }
}

/// Checksum over every record word before the trailing checksum word.
fn checksum(words: &[u64]) -> u64 {
    words
        .iter()
        .fold(0u64, |acc, &w| acc.wrapping_mul(31).wrapping_add(w))
        ^ CHECKSUM_SALT
}

/// Parses one manifest buffer's words. `None` on any structural problem —
/// wrong magic, short record, oversized epoch values, checksum mismatch —
/// which mount treats as "this buffer holds no committed manifest".
pub(crate) fn decode(words: &[u64]) -> Option<ManifestRecord> {
    if words.len() < 5 || words[0] != MANIFEST_MAGIC ^ MANIFEST_VERSION {
        return None;
    }
    let seq = words[1];
    let gen = u32::try_from(words[2]).ok()?;
    if gen == 0 || gen >= u32::MAX - 2 {
        return None;
    }
    let head_len = (words[3] & 0xffff_ffff) as usize;
    let snap_count = (words[3] >> 32) as usize;
    if head_len == 0 || head_len.saturating_add(snap_count) > words.len() {
        return None;
    }
    let epoch = |w: u64| -> Option<u32> {
        let e = u32::try_from(w).ok()?;
        (e < gen).then_some(e)
    };
    let mut idx = 4;
    let head_epochs = words
        .get(idx..idx + head_len)?
        .iter()
        .map(|&w| epoch(w))
        .collect::<Option<Vec<u32>>>()?;
    idx += head_len;
    let mut snaps = Vec::with_capacity(snap_count);
    for _ in 0..snap_count {
        let id = *words.get(idx)?;
        let len = usize::try_from(*words.get(idx + 1)?).ok()?;
        if len == 0 || len > words.len() {
            return None;
        }
        idx += 2;
        let epochs = words
            .get(idx..idx + len)?
            .iter()
            .map(|&w| epoch(w))
            .collect::<Option<Vec<u32>>>()?;
        idx += len;
        snaps.push((id, epochs));
    }
    if *words.get(idx)? != checksum(&words[..idx]) {
        return None;
    }
    Some(ManifestRecord {
        seq,
        gen,
        head_epochs,
        snaps,
    })
}

/// Prepends `epoch` to `list`, dropping any later occurrence (priority
/// lists keep the first — highest-priority — occurrence of each epoch).
pub(crate) fn prepend_epoch(epoch: u32, list: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(list.len() + 1);
    out.push(epoch);
    out.extend(list.iter().copied().filter(|&e| e != epoch));
    out
}

/// First-occurrence-wins concatenation of epoch lists, used by
/// `merge_commit` to splice the snapshot's history into the head's.
pub(crate) fn splice_epochs(parts: &[&[u32]]) -> Vec<u32> {
    let mut out = Vec::new();
    for part in parts {
        for &e in *part {
            if !out.contains(&e) {
                out.push(e);
            }
        }
    }
    out
}

/// Rank lookup for mount resolution: epoch → position in a priority list
/// (lower rank wins). Built once per mapping set per mount.
#[derive(Debug)]
pub(crate) struct EpochRanks {
    ranks: std::collections::HashMap<u32, u32>,
}

impl EpochRanks {
    pub fn new(list: &[u32]) -> Self {
        let mut ranks = std::collections::HashMap::with_capacity(list.len());
        for (i, &e) in list.iter().enumerate() {
            // First occurrence wins, matching priority-list semantics.
            ranks.entry(e).or_insert(i as u32);
        }
        Self { ranks }
    }

    pub fn rank(&self, epoch: u32) -> Option<u32> {
        self.ranks.get(&epoch).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> SnapBook {
        let mut b = SnapBook::new(SnapshotConfig::new(), 64);
        b.gen = 7;
        b.head_epochs = vec![6, 3, 0];
        b.snaps = vec![
            SnapEntry {
                id: 42,
                epochs: vec![3, 0],
                map: vec![UNMAPPED; 8],
            },
            SnapEntry {
                id: 1,
                epochs: vec![5, 3, 0],
                map: vec![UNMAPPED; 8],
            },
        ];
        b.seq = 9;
        b
    }

    #[test]
    fn manifest_roundtrips() {
        let b = book();
        let words = b.encode();
        assert_eq!(
            words.len(),
            SnapBook::record_words(3, [2usize, 3].into_iter())
        );
        let rec = decode(&words).expect("roundtrip");
        assert_eq!(rec.seq, 9);
        assert_eq!(rec.gen, 7);
        assert_eq!(rec.head_epochs, vec![6, 3, 0]);
        assert_eq!(rec.snaps, vec![(42, vec![3, 0]), (1, vec![5, 3, 0])]);
    }

    #[test]
    fn corruption_is_rejected() {
        let b = book();
        let good = b.encode();
        assert!(decode(&good).is_some());
        // Flip any single word: the record must fail to parse.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x10_0000_0001;
            assert!(decode(&bad).is_none(), "word {i} corruption accepted");
        }
        // Truncations (a torn commit) must fail too.
        for l in 0..good.len() {
            assert!(decode(&good[..l]).is_none(), "truncation to {l} accepted");
        }
    }

    #[test]
    fn epoch_list_helpers() {
        assert_eq!(prepend_epoch(9, &[4, 2]), vec![9, 4, 2]);
        assert_eq!(prepend_epoch(4, &[4, 2]), vec![4, 2]);
        assert_eq!(
            splice_epochs(&[&[9], &[5, 3, 0], &[6, 3, 0]]),
            vec![9, 5, 3, 0, 6]
        );
        let r = EpochRanks::new(&[6, 3, 0]);
        assert_eq!(r.rank(6), Some(0));
        assert_eq!(r.rank(0), Some(2));
        assert_eq!(r.rank(5), None);
    }

    #[test]
    fn refcounts_roundtrip() {
        let mut b = SnapBook::new(SnapshotConfig::new(), 4);
        b.incref(2);
        b.incref(2);
        assert!(!b.decref(2));
        assert!(b.decref(2));
    }
}
