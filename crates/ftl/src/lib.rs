//! # `ftl` — a page-mapping flash translation layer
//!
//! The fine-grained baseline of the DAC 2007 static wear leveling study:
//! every logical page has its own entry in a RAM translation table, updates
//! are written out-of-place to a log-structured *frontier* block, and a
//! greedy garbage collector reclaims invalid pages.
//!
//! Faithful to the paper's experimental setup (§5.1):
//!
//! - **Greedy cost/benefit Cleaner** — victims are found by a cyclic scan
//!   over the chip; a block qualifies when its benefit (invalid pages)
//!   outweighs its cost (valid pages to copy).
//! - **GC trigger** — garbage collection runs when free blocks drop under
//!   0.2 % of capacity (configurable).
//! - **Dynamic wear leveling** — the allocator always takes the free block
//!   with the lowest erase count.
//! - **Static wear leveling** — optional [`swl_core::SwLeveler`] integration: the FTL
//!   implements [`swl_core::SwlCleaner`], reports every erase to
//!   SWL-BETUpdate and lets SWL-Procedure force cold blocks through GC.
//!
//! ## Example
//!
//! ```
//! use ftl::{FtlConfig, PageMappedFtl};
//! use nand::{CellKind, Geometry, NandDevice};
//! use swl_core::SwlConfig;
//!
//! # fn main() -> Result<(), ftl::FtlError> {
//! let device = NandDevice::new(Geometry::new(64, 16, 2048), CellKind::Mlc2.spec());
//! let mut ftl = PageMappedFtl::with_swl(device, FtlConfig::default(), SwlConfig::new(100, 0))?;
//!
//! ftl.write(10, 0xAA)?;
//! ftl.write(10, 0xBB)?; // out-of-place update
//! assert_eq!(ftl.read(10)?, Some(0xBB));
//! assert_eq!(ftl.counters().host_writes, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod counters;
mod error;
pub mod merge;
mod snapshot;
mod translation;

pub use config::{FtlConfig, SnapshotConfig};
pub use counters::FtlCounters;
pub use error::FtlError;
pub use translation::{PageMappedFtl, SnapshotAudit};
