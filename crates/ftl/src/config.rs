//! FTL configuration.

use hotid::HotDataConfig;

/// Tunables of the copy-on-write snapshot plane (see [`crate::PageMappedFtl`]).
///
/// Enabling snapshots reserves `2 × manifest_blocks` physical blocks at the
/// top of the chip for the dual-buffer snapshot manifest. Those blocks are
/// excluded from the exported logical capacity, the free-block ladder, and
/// GC/SWL victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotConfig {
    /// Blocks per manifest buffer (two buffers are reserved). One block of
    /// `pages_per_block` pages holds `pages_per_block` manifest words; raise
    /// this when keeping many snapshots on a small-page geometry.
    pub manifest_blocks: u32,
}

impl SnapshotConfig {
    /// One block per manifest buffer (two blocks reserved in total).
    pub fn new() -> Self {
        Self { manifest_blocks: 1 }
    }

    /// Replaces the per-buffer manifest block count.
    ///
    /// # Panics
    ///
    /// Panics when `blocks` is zero.
    pub fn with_manifest_blocks(mut self, blocks: u32) -> Self {
        assert!(blocks > 0, "manifest needs at least one block per buffer");
        self.manifest_blocks = blocks;
        self
    }
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Tunables of the page-mapping FTL.
///
/// # Example
///
/// ```
/// use ftl::FtlConfig;
///
/// let config = FtlConfig::default().with_overprovision_blocks(4);
/// assert_eq!(config.overprovision_blocks, 4);
/// assert_eq!(config.gc_free_fraction, 0.002);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtlConfig {
    /// Physical blocks withheld from the logical capacity. The paper exports
    /// the full chip (0), which works because its workload writes only
    /// 36.62 % of the LBA space; raise this when running near-full
    /// workloads.
    pub overprovision_blocks: u32,
    /// Garbage collection triggers when free blocks fall below this fraction
    /// of all blocks (paper: 0.2 %).
    pub gc_free_fraction: f64,
    /// Hard floor of free blocks the Cleaner maintains regardless of the
    /// fraction (safety margin for relocation during GC).
    pub min_free_blocks: u32,
    /// Enables hot/cold data separation: writes classified hot by a
    /// [`hotid::MultiHashIdentifier`] go to their own active block, so
    /// blocks fill with data of similar lifetime and the garbage collector
    /// copies fewer live pages.
    pub hot_data: Option<HotDataConfig>,
    /// Enables copy-on-write snapshots and clones: physical pages become
    /// refcounted, snapshot mappings persist in an on-flash dual-buffer
    /// manifest, and two manifest buffers of [`SnapshotConfig::manifest_blocks`]
    /// blocks each are reserved at the top of the chip.
    pub snapshots: Option<SnapshotConfig>,
}

impl FtlConfig {
    /// The paper's configuration: no overprovisioning, 0.2 % GC trigger.
    pub fn new() -> Self {
        Self {
            overprovision_blocks: 0,
            gc_free_fraction: 0.002,
            min_free_blocks: 2,
            hot_data: None,
            snapshots: None,
        }
    }

    /// Replaces the overprovisioning reserve.
    pub fn with_overprovision_blocks(mut self, blocks: u32) -> Self {
        self.overprovision_blocks = blocks;
        self
    }

    /// Replaces the GC trigger fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    pub fn with_gc_free_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "gc fraction must be in [0, 1)"
        );
        self.gc_free_fraction = fraction;
        self
    }

    /// Enables hot/cold separation with the given identifier settings.
    pub fn with_hot_data(mut self, hot_data: HotDataConfig) -> Self {
        self.hot_data = Some(hot_data);
        self
    }

    /// Enables copy-on-write snapshots with the given manifest settings.
    pub fn with_snapshots(mut self, snapshots: SnapshotConfig) -> Self {
        self.snapshots = Some(snapshots);
        self
    }

    /// Physical blocks reserved for the snapshot manifest (two buffers), or
    /// zero when snapshots are disabled.
    pub fn reserved_blocks(&self) -> u32 {
        self.snapshots.map_or(0, |s| 2 * s.manifest_blocks)
    }

    /// Free blocks the Cleaner must maintain for a chip of `blocks` blocks.
    /// One extra block is reserved when hot/cold separation runs two active
    /// blocks.
    pub fn free_target(&self, blocks: u32) -> u32 {
        let frac = (f64::from(blocks) * self.gc_free_fraction).ceil() as u32;
        let floor = if self.hot_data.is_some() {
            self.min_free_blocks + 1
        } else {
            self.min_free_blocks
        };
        frac.max(floor)
    }
}

impl Default for FtlConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = FtlConfig::default();
        assert_eq!(c.overprovision_blocks, 0);
        assert_eq!(c.gc_free_fraction, 0.002);
    }

    #[test]
    fn free_target_matches_paper_scale() {
        // 4096 blocks × 0.2 % = 8.192 → 9 blocks.
        assert_eq!(FtlConfig::default().free_target(4096), 9);
    }

    #[test]
    fn free_target_floors_at_min() {
        assert_eq!(FtlConfig::default().free_target(16), 2);
    }

    #[test]
    #[should_panic(expected = "gc fraction")]
    fn bad_fraction_rejected() {
        FtlConfig::default().with_gc_free_fraction(1.0);
    }

    #[test]
    fn snapshot_reserve_counts_both_buffers() {
        let c = FtlConfig::default();
        assert_eq!(c.reserved_blocks(), 0);
        let c = c.with_snapshots(SnapshotConfig::new().with_manifest_blocks(2));
        assert_eq!(c.reserved_blocks(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_manifest_blocks_rejected() {
        SnapshotConfig::new().with_manifest_blocks(0);
    }
}
