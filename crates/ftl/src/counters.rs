//! Attribution counters for overhead accounting.
//!
//! The counter definition is shared with `nftl` and `flash-sim`: it lives in
//! `flash-telemetry` ([`flash_telemetry::FlashCounters`]) so the metrics
//! aggregator can reconstruct the same totals from a replayed event log.
//! NFTL-only fields (`full_merges`, `gc_merges`, `swl_merges`) stay zero for
//! this layer.

/// What the FTL did, split by cause — the raw material for the paper's
/// Figures 6 and 7 (extra erases / extra live-page copyings due to SWL).
pub use flash_telemetry::FlashCounters as FtlCounters;
