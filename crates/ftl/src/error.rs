//! FTL error type.

use std::error::Error;
use std::fmt;

use hotid::BuildIdentifierError;
use nand::{NandError, PageAddr};
use swl_core::SwlError;

/// Errors surfaced by [`crate::PageMappedFtl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// The logical address is beyond the exported capacity.
    LbaOutOfRange {
        /// Offending logical page address.
        lba: u64,
        /// Exported logical capacity in pages.
        logical_pages: u64,
    },
    /// Garbage collection found no block with reclaimable (invalid) pages:
    /// the host has filled the logical space beyond what the layout can
    /// absorb. Increase overprovisioning or trim unused data.
    NoReclaimableSpace,
    /// The free-block pool ran dry while relocating data (should not happen
    /// when `min_free_blocks ≥ 2`; indicates a configuration error).
    FreeExhausted,
    /// A page claimed valid carries no LBA in its spare area — an internal
    /// consistency failure.
    CorruptSpare {
        /// The page whose spare area was unusable.
        addr: PageAddr,
    },
    /// Mounting found two valid pages claiming the same logical address.
    MountConflict {
        /// The doubly-claimed logical page.
        lba: u64,
    },
    /// A snapshot verb was called on an FTL built without
    /// [`crate::SnapshotConfig`].
    SnapshotsDisabled,
    /// The named snapshot does not exist.
    UnknownSnapshot {
        /// The snapshot id that was not found.
        id: u64,
    },
    /// A snapshot with this id already exists.
    SnapshotExists {
        /// The duplicate snapshot id.
        id: u64,
    },
    /// The snapshot manifest no longer fits in its reserved blocks; delete
    /// or merge snapshots, or raise `manifest_blocks`.
    ManifestFull,
    /// An online merge is already in flight; commit or finish it first.
    MergeInProgress,
    /// `merge_step`/`merge_commit` was called with no merge begun.
    NoMergeInProgress,
    /// The underlying device rejected an operation.
    Device(NandError),
    /// The attached SW Leveler rejected its configuration.
    Swl(SwlError),
    /// The hot-data identifier rejected its configuration.
    HotData(BuildIdentifierError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LbaOutOfRange { lba, logical_pages } => {
                write!(f, "lba {lba} out of range ({logical_pages} logical pages)")
            }
            FtlError::NoReclaimableSpace => {
                f.write_str("no reclaimable space: logical capacity exhausted")
            }
            FtlError::FreeExhausted => f.write_str("free block pool exhausted during relocation"),
            FtlError::CorruptSpare { addr } => {
                write!(f, "valid page {addr} carries no lba in its spare area")
            }
            FtlError::MountConflict { lba } => {
                write!(f, "mount found two valid pages for lba {lba}")
            }
            FtlError::SnapshotsDisabled => {
                f.write_str("snapshots are not enabled on this ftl")
            }
            FtlError::UnknownSnapshot { id } => write!(f, "no snapshot with id {id}"),
            FtlError::SnapshotExists { id } => write!(f, "snapshot {id} already exists"),
            FtlError::ManifestFull => {
                f.write_str("snapshot manifest exceeds its reserved blocks")
            }
            FtlError::MergeInProgress => f.write_str("a snapshot merge is already in flight"),
            FtlError::NoMergeInProgress => f.write_str("no snapshot merge is in flight"),
            FtlError::Device(e) => write!(f, "device error: {e}"),
            FtlError::Swl(e) => write!(f, "wear leveler error: {e}"),
            FtlError::HotData(e) => write!(f, "hot-data identifier error: {e}"),
        }
    }
}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::Device(e) => Some(e),
            FtlError::Swl(e) => Some(e),
            FtlError::HotData(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for FtlError {
    fn from(e: NandError) -> Self {
        FtlError::Device(e)
    }
}

impl From<SwlError> for FtlError {
    fn from(e: SwlError) -> Self {
        FtlError::Swl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_context() {
        let e = FtlError::LbaOutOfRange {
            lba: 9,
            logical_pages: 4,
        };
        assert!(e.to_string().contains("lba 9"));
        let e = FtlError::Device(NandError::BlockOutOfRange {
            block: 1,
            blocks: 1,
        });
        assert!(e.to_string().starts_with("device error"));
    }

    #[test]
    fn sources_chain() {
        let e = FtlError::Device(NandError::ReadOfFreePage {
            addr: PageAddr::new(0, 0),
        });
        assert!(e.source().is_some());
        assert!(FtlError::NoReclaimableSpace.source().is_none());
    }
}
