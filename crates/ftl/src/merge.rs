//! Streaming mapping-merge: lazy LBA-ordered iterators over translation
//! maps and a dual-iterator combinator that overlays a snapshot's mappings
//! onto its origin without materializing either side.
//!
//! The shape follows dm-thin's `thin-merge` tool (`mapping_iterator.rs`,
//! `merge.rs`, `stream.rs`): each side of the merge is a cheap cursor over
//! its mapping set, and the combinator walks both cursors in LBA order,
//! deciding overlaps one logical page at a time. The FTL's online merge
//! ([`crate::PageMappedFtl::merge_step`]), the offline merge, and the
//! bit-for-bit merge verifier in the test suite all drive the same
//! [`MergeStream`].

use std::iter::Peekable;

/// Sentinel for "logical page unmapped" in a translation map.
pub const UNMAPPED: u32 = u32::MAX;

/// One logical-to-physical mapping yielded by a [`MappingStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Logical page address.
    pub lba: u64,
    /// Flat physical page index.
    pub phys: u32,
}

/// Lazy LBA-ordered cursor over one translation map (`UNMAPPED` entries are
/// skipped). Never copies the map: iteration borrows the live table.
#[derive(Debug, Clone)]
pub struct MappingStream<'a> {
    map: &'a [u32],
    next: usize,
}

impl<'a> MappingStream<'a> {
    /// Streams every mapping of `map` in ascending LBA order.
    pub fn new(map: &'a [u32]) -> Self {
        Self { map, next: 0 }
    }

    /// Streams mappings with `lba >= start` — the windowed form used by the
    /// incremental online merge.
    pub fn starting_at(map: &'a [u32], start: u64) -> Self {
        Self {
            map,
            next: start.min(map.len() as u64) as usize,
        }
    }
}

impl Iterator for MappingStream<'_> {
    type Item = Mapping;

    fn next(&mut self) -> Option<Mapping> {
        while self.next < self.map.len() {
            let lba = self.next as u64;
            let phys = self.map[self.next];
            self.next += 1;
            if phys != UNMAPPED {
                return Some(Mapping { lba, phys });
            }
        }
        None
    }
}

/// Which side of the merge produced a [`MergeStream`] item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeSource {
    /// The mapping came from (or stays with) the origin.
    Origin,
    /// The mapping is overlaid from the snapshot.
    Snapshot,
}

/// Dual-iterator combinator merging an origin map with a snapshot map in
/// LBA order.
///
/// Where only one side maps an LBA, that mapping is yielded. Where both
/// sides map the same LBA, the `keep_origin` policy closure decides: `true`
/// keeps the origin mapping (the online merge uses this for LBAs the host
/// rewrote after `merge_begin`, so live writes beat the historical
/// snapshot), `false` overlays the snapshot mapping.
pub struct MergeStream<'a, F: FnMut(u64, u32) -> bool> {
    origin: Peekable<MappingStream<'a>>,
    snapshot: Peekable<MappingStream<'a>>,
    keep_origin: F,
}

impl<'a, F: FnMut(u64, u32) -> bool> MergeStream<'a, F> {
    /// Builds the combinator from two already-positioned side streams.
    pub fn new(origin: MappingStream<'a>, snapshot: MappingStream<'a>, keep_origin: F) -> Self {
        Self {
            origin: origin.peekable(),
            snapshot: snapshot.peekable(),
            keep_origin,
        }
    }
}

impl<F: FnMut(u64, u32) -> bool> Iterator for MergeStream<'_, F> {
    type Item = (Mapping, MergeSource);

    fn next(&mut self) -> Option<(Mapping, MergeSource)> {
        match (self.origin.peek().copied(), self.snapshot.peek().copied()) {
            (None, None) => None,
            (Some(_), None) => Some((self.origin.next().unwrap(), MergeSource::Origin)),
            (None, Some(_)) => Some((self.snapshot.next().unwrap(), MergeSource::Snapshot)),
            (Some(o), Some(s)) => {
                if o.lba < s.lba {
                    return Some((self.origin.next().unwrap(), MergeSource::Origin));
                }
                if s.lba < o.lba {
                    return Some((self.snapshot.next().unwrap(), MergeSource::Snapshot));
                }
                // Overlap: both cursors advance, the policy picks a side.
                let keep = (self.keep_origin)(o.lba, o.phys);
                self.origin.next();
                self.snapshot.next();
                if keep {
                    Some((o, MergeSource::Origin))
                } else {
                    Some((s, MergeSource::Snapshot))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_stream_skips_unmapped() {
        let map = [UNMAPPED, 7, UNMAPPED, 9];
        let got: Vec<_> = MappingStream::new(&map).collect();
        assert_eq!(
            got,
            vec![
                Mapping { lba: 1, phys: 7 },
                Mapping { lba: 3, phys: 9 }
            ]
        );
    }

    #[test]
    fn mapping_stream_window_start() {
        let map = [1, 2, 3, 4];
        let got: Vec<_> = MappingStream::starting_at(&map, 2).map(|m| m.lba).collect();
        assert_eq!(got, vec![2, 3]);
        assert!(MappingStream::starting_at(&map, 99).next().is_none());
    }

    #[test]
    fn merge_overlays_snapshot_on_overlap() {
        let origin = [10, UNMAPPED, 12, 13];
        let snapshot = [UNMAPPED, 21, 22, UNMAPPED];
        let got: Vec<_> = MergeStream::new(
            MappingStream::new(&origin),
            MappingStream::new(&snapshot),
            |_, _| false,
        )
        .collect();
        assert_eq!(
            got,
            vec![
                (Mapping { lba: 0, phys: 10 }, MergeSource::Origin),
                (Mapping { lba: 1, phys: 21 }, MergeSource::Snapshot),
                (Mapping { lba: 2, phys: 22 }, MergeSource::Snapshot),
                (Mapping { lba: 3, phys: 13 }, MergeSource::Origin),
            ]
        );
    }

    #[test]
    fn keep_origin_policy_wins_overlaps() {
        let origin = [10, 11];
        let snapshot = [20, 21];
        // Keep the origin only at LBA 0.
        let got: Vec<_> = MergeStream::new(
            MappingStream::new(&origin),
            MappingStream::new(&snapshot),
            |lba, phys| {
                assert_eq!(phys, if lba == 0 { 10 } else { 11 });
                lba == 0
            },
        )
        .collect();
        assert_eq!(
            got,
            vec![
                (Mapping { lba: 0, phys: 10 }, MergeSource::Origin),
                (Mapping { lba: 1, phys: 21 }, MergeSource::Snapshot),
            ]
        );
    }

    #[test]
    fn empty_sides_merge_cleanly() {
        let empty: [u32; 0] = [];
        let one = [5u32];
        assert_eq!(
            MergeStream::new(
                MappingStream::new(&empty),
                MappingStream::new(&one),
                |_, _| true,
            )
            .count(),
            1
        );
        assert_eq!(
            MergeStream::new(
                MappingStream::new(&empty),
                MappingStream::new(&empty),
                |_, _| true,
            )
            .count(),
            0
        );
    }
}
