//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A length specification for collection strategies (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty collection size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        Self {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

/// Vectors of `size`-many elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Hash sets with `size`-many distinct elements drawn from `element`.
///
/// If the element domain is too small to reach the chosen size, the set is
/// returned as large as sampling could make it (mirroring upstream
/// proptest's best-effort behavior under rejection limits).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`hash_set`].
#[derive(Debug)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 16 + 64 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}
