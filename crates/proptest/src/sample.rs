//! Sampling helpers: [`Index`] picks a position in a runtime-sized
//! collection.

/// An abstract index resolved against a collection length at use time, so a
/// strategy can pick "some element" before the collection size is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Wraps raw entropy; used by `any::<Index>()`.
    pub fn from_raw(raw: u64) -> Self {
        Self { raw }
    }

    /// Resolves to a concrete index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        ((u128::from(self.raw) * len as u128) >> 64) as usize
    }
}
