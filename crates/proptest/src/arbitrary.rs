//! `any::<T>()`: canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Self::from_raw(rng.next_u64())
    }
}
