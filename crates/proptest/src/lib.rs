//! A minimal, self-contained property-testing harness exposing the subset of
//! the [`proptest`](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment has no access to a crates registry, so the real
//! `proptest` crate cannot be resolved. Rather than give up the nine
//! property-test suites in the workspace, this crate re-implements the small
//! API surface they rely on:
//!
//! - the [`Strategy`](strategy::Strategy) trait with ranges, tuples,
//!   [`prop_map`](strategy::Strategy::prop_map), [`Just`](strategy::Just)
//!   and weighted unions ([`prop_oneof!`]);
//! - [`collection::vec`] / [`collection::hash_set`];
//! - [`any`](arbitrary::any) over primitive types and
//!   [`sample::Index`];
//! - the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//!   [`prop_assert_ne!`] macros backed by a deterministic seeded runner
//!   ([`test_runner::run`]).
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports
//! its fully-formatted inputs and deterministic seed instead, which is
//! enough to reproduce (runs are seeded from the test name, so failures
//! replay exactly under `cargo test`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The `proptest::prelude` equivalent: everything the test files import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias of the crate root, so `prop::collection::vec` and
    /// `prop::sample::Index` resolve as they do with upstream proptest.
    pub use crate as prop;
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with its inputs) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left == *right,
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(*left == *right, $($fmt)+),
        }
    };
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(
                *left != *right,
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => $crate::prop_assert!(*left != *right, $($fmt)+),
        }
    };
}

/// Builds a [`Union`](strategy::Union) strategy choosing among alternatives,
/// optionally weighted (`3 => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over many sampled inputs.
///
/// An optional leading `#![proptest_config(...)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    $config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng, __inputs| {
                        $(let $arg = $crate::strategy::Strategy::sample(&$strategy, __rng);)+
                        *__inputs =
                            format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                        let __result: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        __result
                    },
                );
            }
        )*
    };
}
