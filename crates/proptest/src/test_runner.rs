//! The deterministic case runner behind the [`proptest!`](crate::proptest)
//! macro.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::TestRng;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property assertion (from `prop_assert!` and friends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a, so each test gets a stable seed stream derived from its name.
fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `test` over `config.cases` deterministic cases.
///
/// The closure receives a fresh seeded [`TestRng`] per case plus a slot it
/// fills with the formatted inputs, which are reported on failure. Panics
/// inside the body are caught, annotated with the inputs, and re-raised.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case.
pub fn run<F>(config: ProptestConfig, name: &str, mut test: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for case in 0..config.cases {
        let mut rng = TestRng::from_seed(base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut inputs = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| test(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(err)) => panic!(
                "property `{name}` failed at case {case}/{}:\n  {err}\n  inputs: {inputs}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "property `{name}` panicked at case {case}/{}\n  inputs: {inputs}",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        crate::test_runner::run(ProptestConfig::with_cases(5), "det", |rng, _| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::test_runner::run(ProptestConfig::with_cases(5), "det", |rng, _| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_case_panics_with_inputs() {
        crate::test_runner::run(ProptestConfig::with_cases(3), "fail", |_, inputs| {
            *inputs = "x = 1".into();
            Err(TestCaseError::fail("nope"))
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro front-end: ranges stay in range, tuples and maps
        /// compose, collections honor their size bounds.
        #[test]
        fn macro_front_end_works(
            small in 1u32..10,
            pair in (0u64..5, 0.0f64..1.0),
            items in prop::collection::vec(any::<bool>(), 0..8),
            pick in any::<prop::sample::Index>(),
            tagged in prop_oneof![
                3 => (0u32..4).prop_map(|v| (false, v)),
                1 => (10u32..14).prop_map(|v| (true, v)),
            ],
        ) {
            prop_assert!((1..10).contains(&small));
            prop_assert!(pair.0 < 5 && (0.0..1.0).contains(&pair.1));
            prop_assert!(items.len() < 8);
            prop_assert!(pick.index(7) < 7);
            let (high, v) = tagged;
            if high {
                prop_assert!((10..14).contains(&v));
            } else {
                prop_assert!(v < 4);
            }
            prop_assert_eq!(small, small);
            prop_assert_ne!(small, small + 1);
        }
    }
}
