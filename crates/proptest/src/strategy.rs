//! The [`Strategy`] trait and combinators: how test inputs are described.

use std::fmt;
use std::ops::Range;

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// just samples. Failures are reproduced from the deterministic seed.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among type-erased alternatives; see
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
        Self {
            options,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return option.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is below the total weight")
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty as $uty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $uty).wrapping_sub(self.start as $uty);
                self.start.wrapping_add(rng.below(u64::from(span)) as $ty)
            }
        }
    )*};
}

signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}
