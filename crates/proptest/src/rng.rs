//! The deterministic generator behind every sampled input.
//!
//! A private SplitMix64 (the same algorithm as `swl_core::rng`, duplicated
//! here so the harness has zero dependencies and no dev-dependency cycle
//! with the crates it tests).

/// Deterministic test-case random source.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
