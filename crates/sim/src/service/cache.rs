//! Admission-managed RAM write cache for the block-device service.
//!
//! The cache sits between the service front-end and the engine and exists
//! to absorb **hot rewrites**: pages the host overwrites again and again
//! only need their *latest* value on flash, so every absorbed rewrite is a
//! flash program (and all its downstream GC/SWL work) that never happens —
//! the CACH-FTL argument (arXiv 1209.3099) applied in front of the DAC'07
//! static wear leveler instead of inside the FTL.
//!
//! Three policies make it a cache rather than a buffer:
//!
//! - **Admission**: a write enters the cache only when the multi-hash
//!   counting filter ([`hotid::MultiHashIdentifier`], the paper-adjacent
//!   hot-data identifier already in this workspace) classifies its LBA as
//!   hot. Cold writes pass straight through to the engine, so one
//!   sequential scan cannot wipe out the working set.
//! - **Batched flush-back**: once the dirty count crosses the sync
//!   watermark ([`WriteCache::need_sync`], the WondFS `WriteCache` shape),
//!   the oldest entries are drained in one LBA-sorted batch, which the
//!   service coalesces into contiguous span writes.
//! - **Bounded capacity**: admitting into a full cache first evicts a
//!   batch of the oldest entries (returned to the caller to write back),
//!   so RAM use never exceeds `capacity` entries.
//!
//! The structure keeps exactly **one dirty value per LBA** (a rewrite of a
//! dirty page updates it in place). That single invariant is what makes
//! flush-back order-safe: any value the engine ever sees for an LBA is
//! either an immediate write-through (no dirty entry existed) or the
//! newest cached value at flush time, so flash can never observe an older
//! value after a newer one. `crates/sim/tests/cache_properties.rs` checks
//! that property over randomized workloads.
//!
//! The cache is deliberately engine-agnostic — every method returns the
//! work the caller must forward — so property tests can drive it against a
//! plain model backend.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use flash_telemetry::runtime::{CacheRuntime, CacheSample};
use hotid::{BuildIdentifierError, HotDataConfig, MultiHashIdentifier};

/// Tuning for a [`WriteCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum dirty entries held in RAM (at least 1).
    pub capacity: usize,
    /// Dirty count at which [`WriteCache::need_sync`] starts reporting
    /// `true` (clamped into `1..=capacity`).
    pub sync_watermark: usize,
    /// Entries drained per flush-back batch (at least 1).
    pub batch: usize,
    /// Admission filter configuration (multi-hash counting filter).
    pub hot: HotDataConfig,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::sized(1024)
    }
}

impl CacheConfig {
    /// A config for `capacity` entries with proportional defaults: sync
    /// watermark at 3/4 capacity, flush batches of half the capacity, and
    /// the default admission filter.
    pub fn sized(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            sync_watermark: (capacity * 3 / 4).max(1),
            batch: (capacity / 2).max(1),
            hot: HotDataConfig::default(),
        }
    }

    /// Replaces the admission filter configuration.
    pub fn with_hot(mut self, hot: HotDataConfig) -> Self {
        self.hot = hot;
        self
    }

    /// Replaces the sync watermark (clamped into `1..=capacity` at build).
    pub fn with_watermark(mut self, watermark: usize) -> Self {
        self.sync_watermark = watermark;
        self
    }

    /// Replaces the flush-back batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }
}

/// What a [`WriteCache::write`] decided, and the flash work it implies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The LBA already had a dirty entry; its value was replaced in place.
    /// No flash traffic at all.
    Absorbed,
    /// The write was admitted as a new dirty entry. `evicted` holds the
    /// oldest entries that were pushed out to make room (LBA-sorted,
    /// usually empty); the caller must write them to flash now.
    Admitted {
        /// Capacity-evicted `(lba, value)` pairs to write back, LBA order.
        evicted: Vec<(u64, u64)>,
    },
    /// The admission filter judged the LBA cold; the caller must write the
    /// value to flash directly.
    WriteThrough,
}

/// The admission-managed RAM write cache (see module docs).
#[derive(Debug)]
pub struct WriteCache {
    /// The single dirty value per LBA.
    entries: HashMap<u64, u64>,
    /// Admission order of dirty LBAs (oldest first). May hold LBAs whose
    /// entry was since trimmed away; consumers skip those lazily.
    order: VecDeque<u64>,
    hot: MultiHashIdentifier,
    runtime: Arc<CacheRuntime>,
    capacity: usize,
    watermark: usize,
    batch: usize,
}

impl WriteCache {
    /// Builds the cache and its shared counter block.
    ///
    /// # Errors
    ///
    /// Propagates admission-filter construction errors (zero counters /
    /// hash count out of range).
    pub fn new(config: CacheConfig) -> Result<Self, BuildIdentifierError> {
        let capacity = config.capacity.max(1);
        Ok(Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            hot: MultiHashIdentifier::new(config.hot)?,
            runtime: Arc::new(CacheRuntime::new(capacity as u64)),
            capacity,
            watermark: config.sync_watermark.clamp(1, capacity),
            batch: config.batch.max(1),
        })
    }

    /// The shared counter block, for mid-run observers (`svcbench`'s
    /// JSONL sampler reads it while the service runs).
    pub fn runtime(&self) -> Arc<CacheRuntime> {
        Arc::clone(&self.runtime)
    }

    /// Current counters (convenience over `runtime().sample()`).
    pub fn sample(&self) -> CacheSample {
        self.runtime.sample()
    }

    /// Dirty entries held right now.
    pub fn dirty(&self) -> usize {
        self.entries.len()
    }

    /// Maximum dirty entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accepts one host write and decides its path (see [`WriteOutcome`]).
    pub fn write(&mut self, lba: u64, value: u64) -> WriteOutcome {
        if let Some(entry) = self.entries.get_mut(&lba) {
            *entry = value;
            // Keep heat flowing even for absorbed rewrites, so the decay
            // cadence sees the true write rate.
            self.hot.record_write(lba);
            self.runtime.write_hit();
            return WriteOutcome::Absorbed;
        }
        if !self.hot.record_write(lba) {
            self.runtime.pass_through();
            return WriteOutcome::WriteThrough;
        }
        let evicted = if self.entries.len() >= self.capacity {
            self.take_batch(self.batch, true)
        } else {
            Vec::new()
        };
        self.entries.insert(lba, value);
        self.order.push_back(lba);
        self.runtime.admit();
        self.runtime.set_dirty(self.entries.len() as u64);
        WriteOutcome::Admitted { evicted }
    }

    /// Looks up a dirty entry for a read (counts a read hit when found).
    pub fn lookup(&self, lba: u64) -> Option<u64> {
        let value = self.entries.get(&lba).copied();
        if value.is_some() {
            self.runtime.read_hit();
        }
        value
    }

    /// Drops the dirty entry for `lba`, if any. The dropped value was
    /// never acknowledged as durable (an explicit flush would have drained
    /// it first), so discarding it is legal. Returns whether an entry
    /// existed.
    pub fn trim(&mut self, lba: u64) -> bool {
        // The stale `order` slot is skipped lazily by `take_batch`.
        let existed = self.entries.remove(&lba).is_some();
        if existed {
            self.runtime.trim_drop();
            self.runtime.set_dirty(self.entries.len() as u64);
        }
        existed
    }

    /// Whether the dirty count has crossed the sync watermark and a
    /// [`WriteCache::take_sync_batch`] is due (the WondFS `need_sync()`
    /// contract).
    pub fn need_sync(&self) -> bool {
        self.entries.len() >= self.watermark
    }

    /// Drains one batch of the oldest dirty entries for flush-back,
    /// LBA-sorted so the caller can coalesce contiguous runs into span
    /// writes. Empty when the cache is clean.
    pub fn take_sync_batch(&mut self) -> Vec<(u64, u64)> {
        self.take_batch(self.batch, false)
    }

    /// Drains *every* dirty entry (explicit host flush), LBA-sorted.
    pub fn drain_all(&mut self) -> Vec<(u64, u64)> {
        self.take_batch(usize::MAX, false)
    }

    /// Pops up to `limit` oldest entries, skipping stale order slots.
    fn take_batch(&mut self, limit: usize, evicting: bool) -> Vec<(u64, u64)> {
        let mut batch = Vec::new();
        while batch.len() < limit {
            let Some(lba) = self.order.pop_front() else {
                break;
            };
            if let Some(value) = self.entries.remove(&lba) {
                batch.push((lba, value));
            }
        }
        if !batch.is_empty() {
            batch.sort_unstable_by_key(|&(lba, _)| lba);
            self.runtime.flush_batch(batch.len() as u64, evicting);
            self.runtime.set_dirty(self.entries.len() as u64);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An aggressive filter that admits everything from the first write.
    fn admit_all() -> HotDataConfig {
        HotDataConfig {
            hot_threshold: 1,
            ..HotDataConfig::default()
        }
    }

    fn cache(capacity: usize) -> WriteCache {
        WriteCache::new(CacheConfig::sized(capacity).with_hot(admit_all())).unwrap()
    }

    #[test]
    fn rewrite_absorbs_in_place() {
        let mut c = cache(8);
        assert!(matches!(c.write(3, 10), WriteOutcome::Admitted { .. }));
        assert!(matches!(c.write(3, 11), WriteOutcome::Absorbed));
        assert_eq!(c.lookup(3), Some(11));
        assert_eq!(c.dirty(), 1);
        let s = c.sample();
        assert_eq!((s.admitted, s.write_hits, s.read_hits), (1, 1, 1));
    }

    #[test]
    fn cold_writes_pass_through() {
        let hot = HotDataConfig {
            hot_threshold: 3,
            ..HotDataConfig::default()
        };
        let mut c = WriteCache::new(CacheConfig::sized(8).with_hot(hot)).unwrap();
        assert_eq!(c.write(5, 1), WriteOutcome::WriteThrough);
        assert_eq!(c.write(5, 2), WriteOutcome::WriteThrough);
        // Third write crosses the threshold and is admitted.
        assert!(matches!(c.write(5, 3), WriteOutcome::Admitted { .. }));
        assert_eq!(c.sample().write_through, 2);
    }

    #[test]
    fn capacity_eviction_returns_oldest_sorted() {
        let mut c = WriteCache::new(
            CacheConfig::sized(2)
                .with_hot(admit_all())
                .with_batch(2)
                .with_watermark(2),
        )
        .unwrap();
        assert!(matches!(c.write(9, 90), WriteOutcome::Admitted { evicted } if evicted.is_empty()));
        assert!(matches!(c.write(4, 40), WriteOutcome::Admitted { evicted } if evicted.is_empty()));
        match c.write(7, 70) {
            WriteOutcome::Admitted { evicted } => {
                assert_eq!(evicted, vec![(4, 40), (9, 90)], "oldest two, LBA-sorted");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(c.dirty(), 1);
        assert_eq!(c.sample().evicted, 2);
    }

    #[test]
    fn need_sync_and_batch_drain() {
        let mut c = WriteCache::new(
            CacheConfig::sized(8)
                .with_hot(admit_all())
                .with_watermark(3)
                .with_batch(2),
        )
        .unwrap();
        c.write(1, 1);
        c.write(2, 2);
        assert!(!c.need_sync());
        c.write(3, 3);
        assert!(c.need_sync());
        let batch = c.take_sync_batch();
        assert_eq!(batch, vec![(1, 1), (2, 2)], "oldest first, LBA-sorted");
        assert!(!c.need_sync());
        assert_eq!(c.drain_all(), vec![(3, 3)]);
        assert_eq!(c.dirty(), 0);
        assert_eq!(c.sample().flushed_pages, 3);
        assert_eq!(c.sample().flush_batches, 2);
    }

    #[test]
    fn trim_drops_dirty_entry_and_flushes_skip_it() {
        let mut c = cache(8);
        c.write(1, 1);
        c.write(2, 2);
        assert!(c.trim(1));
        assert!(!c.trim(1), "second trim finds nothing");
        assert_eq!(c.lookup(1), None);
        assert_eq!(c.drain_all(), vec![(2, 2)], "stale order slot skipped");
        assert_eq!(c.sample().trimmed, 1);
    }
}
