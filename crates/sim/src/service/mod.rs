//! Block-device service front-end over the threaded execution engine.
//!
//! [`Engine`] is a closed-loop replayer: one driver owns it
//! and feeds it a trace. This module promotes it to a *served* device:
//! [`Service`] owns the engine plus an optional admission-managed RAM
//! write cache ([`cache::WriteCache`]), exposes the four block-device verbs
//! — `write` / `read` / `trim` / `flush` — and can hand out in-process
//! client handles ([`Service::serve`]) so N concurrent threads drive one
//! array through a bounded request queue.
//!
//! # Ack semantics (the durability contract)
//!
//! - A **write** ack means *accepted*: the data is readable back through
//!   the service, but it may still live only in the RAM cache. A power cut
//!   before the next flush may legally lose it.
//! - A **flush** ack means *durable*: every write accepted before the
//!   flush has been written back to flash and survives a power cut. The
//!   crashmc harness asserts both sides of this contract over exhaustive
//!   cut-point sweeps.
//! - A **trim** is advisory: it drops any cached (never-acked-durable)
//!   data for the span and masks subsequent reads to `None`. It does not
//!   reclaim flash space and the mask is not persisted across a crash.
//! - A **read** ack returns one `Option<u64>` per page — cached dirty
//!   values win over flash, trimmed/never-written pages read `None`.
//!
//! # Determinism
//!
//! The service stamps engine events from a logical clock (one fixed
//! [`ServiceConfig::op_interval_ns`] tick per accepted op), never from
//! wall time, so a single-client run is fully deterministic. With the
//! cache disabled a service run is **bit-identical** to driving the engine
//! directly with the same op sequence — report, per-lane state, and flash
//! contents (`tests/service_oracle.rs` pins this). Cache flush-back keeps
//! at most one dirty value per LBA and never reorders values of the same
//! LBA around a write-through, so the virtual-time oracle still pins
//! cache-on results (see [`cache`] module docs).
//!
//! ## Example
//!
//! ```
//! use flash_sim::service::{cache::CacheConfig, Service, ServiceConfig};
//! use flash_sim::{LayerKind, SimConfig, SwlCoordination};
//! use nand::{CellKind, ChannelGeometry, Geometry};
//!
//! # fn main() -> Result<(), flash_sim::SimError> {
//! let mut service = Service::build(
//!     LayerKind::Ftl,
//!     ChannelGeometry::new(2, 1, Geometry::new(64, 8, 2048)),
//!     CellKind::Mlc2.spec().with_endurance(100_000),
//!     None,
//!     SwlCoordination::PerChannel,
//!     &SimConfig::default(),
//!     ServiceConfig::default().with_cache(CacheConfig::sized(64)),
//! )?;
//! service.write(3, &[7, 8])?;
//! assert_eq!(service.read(3, 2)?, vec![Some(7), Some(8)]);
//! service.flush()?; // now durable
//! let run = service.finish()?;
//! assert_eq!(run.ops, 2); // write + read (flush is a barrier, not an op)
//! # Ok(())
//! # }
//! ```

pub mod cache;

use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use flash_telemetry::health::{HealthMonitor, HealthReport, HealthRuntime};
use flash_telemetry::runtime::{CacheRuntime, CacheSample};
use flash_telemetry::LatencyHistogram;
use flash_trace::TraceEvent;
use nand::{CellSpec, ChannelGeometry, NandDevice};
use swl_core::SwlConfig;

use crate::engine::queue::ShardQueue;
use crate::engine::{Engine, EngineConfig, EngineMetricsHandle, EngineRun, EngineSink};
use crate::error::SimError;
use crate::layer::{LayerKind, SimConfig};
use crate::striped::SwlCoordination;

use cache::{CacheConfig, WriteCache, WriteOutcome};

/// Tuning for a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Engine front-end tuning (threads, queue depth, telemetry, metrics).
    /// Read capture is forced on — the service must return read data.
    pub engine: EngineConfig,
    /// Write-cache tuning; `None` runs cache-less (every write goes
    /// straight to the engine — the oracle-comparable mode).
    pub cache: Option<CacheConfig>,
    /// Virtual nanoseconds the logical clock advances per accepted op
    /// (must be positive; stamps engine events deterministically).
    pub op_interval_ns: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            cache: None,
            op_interval_ns: 1_000,
        }
    }
}

impl ServiceConfig {
    /// Replaces the engine tuning.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Enables the write cache with `cache` tuning.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Disables the write cache (the default).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Replaces the logical-clock tick per accepted op.
    pub fn with_op_interval_ns(mut self, interval: u64) -> Self {
        self.op_interval_ns = interval.max(1);
        self
    }
}

/// Everything a finished [`Service`] produced: the engine run (report,
/// lanes, metrics) plus the final cache counters.
pub struct ServiceRun {
    /// The underlying engine run; `run.report` is the virtual-time report.
    pub run: EngineRun,
    /// Final cache counters (`None` when the service ran cache-less).
    pub cache: Option<CacheSample>,
    /// Final health report (`None` unless the engine ran with
    /// [`EngineConfig::with_health`]).
    pub health: Option<HealthReport>,
    /// Host ops the service accepted (writes + reads + trims).
    pub ops: u64,
}

/// The block-device service: engine + optional write cache + logical
/// clock. Use directly for single-driver runs, or hand out concurrent
/// client handles with [`Service::serve`].
pub struct Service {
    engine: Engine,
    cache: Option<WriteCache>,
    /// Health-plane monitor folding [`HealthRuntime`] samples into wear
    /// rates (present only when the engine runs with
    /// [`EngineConfig::with_health`]).
    monitor: Option<HealthMonitor>,
    /// Pages masked by a trim since their last write. Advisory and
    /// RAM-only: not persisted across a crash.
    trimmed: HashSet<u64>,
    clock_ns: u64,
    op_interval_ns: u64,
    ops: u64,
}

impl Service {
    /// Builds the lanes, spawns the engine workers, and (when configured)
    /// the write cache.
    ///
    /// # Errors
    ///
    /// Propagates layer construction failures.
    ///
    /// # Panics
    ///
    /// Panics when the cache admission-filter config is invalid (zero
    /// counter table / hash count out of range) — cache tuning is
    /// programmer-supplied, not data-dependent.
    pub fn build(
        kind: LayerKind,
        geometry: ChannelGeometry,
        spec: CellSpec,
        swl: Option<SwlConfig>,
        coordination: SwlCoordination,
        sim: &SimConfig,
        config: ServiceConfig,
    ) -> Result<Self, SimError> {
        let engine = Engine::new(
            kind,
            geometry,
            spec,
            swl,
            coordination,
            sim,
            config.engine.with_read_capture(true),
        )?;
        let cache = config
            .cache
            .map(|c| WriteCache::new(c).expect("invalid cache admission config"));
        let monitor = engine
            .health_runtime()
            .map(|rt| HealthMonitor::new(rt.config()));
        Ok(Self {
            engine,
            cache,
            monitor,
            trimmed: HashSet::new(),
            clock_ns: 0,
            op_interval_ns: config.op_interval_ns.max(1),
            ops: 0,
        })
    }

    /// Exported logical capacity in pages (striped over all channels).
    pub fn logical_pages(&self) -> u64 {
        self.engine.logical_pages()
    }

    /// Host ops accepted so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// First block wear-out the engine has finalized so far (`None` until
    /// one happens). Endurance studies poll this to stop at first failure
    /// instead of driving a fixed op count.
    pub fn first_failure(&self) -> Option<crate::report::FirstFailure> {
        self.engine.first_failure()
    }

    /// Current cache counters (`None` when cache-less).
    pub fn cache_sample(&self) -> Option<CacheSample> {
        self.cache.as_ref().map(WriteCache::sample)
    }

    /// The cache's shared counter block for mid-run observers (`None`
    /// when cache-less).
    pub fn cache_runtime(&self) -> Option<Arc<CacheRuntime>> {
        self.cache.as_ref().map(WriteCache::runtime)
    }

    /// The engine's metrics observer handle (all-zero counters unless the
    /// engine was built with [`EngineConfig::with_metrics`]).
    pub fn metrics_handle(&self) -> EngineMetricsHandle {
        self.engine.metrics_handle()
    }

    /// The engine's shared health-plane wear table, for out-of-band
    /// observers (`None` unless built with [`EngineConfig::with_health`]).
    pub fn health_runtime(&self) -> Option<Arc<HealthRuntime>> {
        self.engine.health_runtime()
    }

    /// SMART-style health report at this instant: samples the shared wear
    /// table, folds the delta since the previous report into the wear-rate
    /// estimators, and attaches current cache counters. `None` unless the
    /// engine runs with [`EngineConfig::with_health`].
    ///
    /// A pure read of the management plane: no engine submission, no
    /// logical-clock tick — a cache-off service that interleaves `stats`
    /// calls stays bit-identical to a direct engine run of the same I/O
    /// sequence (`tests/service_oracle.rs` pins this).
    pub fn stats(&mut self) -> Option<HealthReport> {
        let runtime = self.engine.health_runtime()?;
        let sample = runtime.sample();
        let cache = self.cache_sample();
        let monitor = self.monitor.as_mut().expect("monitor exists iff runtime");
        Some(monitor.report_on(&sample, cache))
    }

    /// Advances the logical clock by one op tick and returns the stamp.
    fn tick(&mut self) -> u64 {
        self.ops += 1;
        self.clock_ns += self.op_interval_ns;
        self.clock_ns
    }

    /// Bounds-checks `[lba, lba + len)` against the logical space.
    fn check_span(&self, lba: u64, len: usize) -> Result<(), SimError> {
        let logical_pages = self.engine.logical_pages();
        let end = (len as u64).checked_add(lba).filter(|&e| {
            e <= logical_pages && len <= u32::MAX as usize
        });
        if len > 0 && end.is_none() {
            return Err(SimError::TraceOutOfRange {
                lba: lba.saturating_add(len as u64 - 1),
                logical_pages,
            });
        }
        Ok(())
    }

    /// Accepts one write of `data.len()` pages starting at `lba`. The ack
    /// means *accepted* (readable back), not durable — see the module
    /// docs' durability contract. Zero-length writes are no-ops.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceOutOfRange`] for spans outside the logical space;
    /// otherwise the engine's first finalized lane error (sticky).
    pub fn write(&mut self, lba: u64, data: &[u64]) -> Result<(), SimError> {
        self.check_span(lba, data.len())?;
        if data.is_empty() {
            return Ok(());
        }
        let at = self.tick();
        for i in 0..data.len() as u64 {
            self.trimmed.remove(&(lba + i));
        }
        if self.cache.is_none() {
            return self.engine.submit_write_data(at, lba, data);
        }
        for (i, &value) in data.iter().enumerate() {
            let page = lba + i as u64;
            let outcome = self
                .cache
                .as_mut()
                .expect("cache-on path")
                .write(page, value);
            match outcome {
                WriteOutcome::Absorbed => {}
                WriteOutcome::Admitted { evicted } => {
                    if !evicted.is_empty() {
                        self.submit_batch(at, &evicted)?;
                    }
                }
                WriteOutcome::WriteThrough => {
                    self.engine.submit_write_data(at, page, &[value])?;
                }
            }
        }
        if self.cache.as_ref().expect("cache-on path").need_sync() {
            let batch = self
                .cache
                .as_mut()
                .expect("cache-on path")
                .take_sync_batch();
            self.submit_batch(at, &batch)?;
        }
        Ok(())
    }

    /// Coalesces an LBA-sorted flush-back batch into contiguous span
    /// writes and submits them, preserving batch order.
    fn submit_batch(&mut self, at_ns: u64, batch: &[(u64, u64)]) -> Result<(), SimError> {
        let mut i = 0;
        while i < batch.len() {
            let start = batch[i].0;
            let mut values = vec![batch[i].1];
            let mut j = i + 1;
            while j < batch.len() && batch[j].0 == start + values.len() as u64 {
                values.push(batch[j].1);
                j += 1;
            }
            self.engine.submit_write_data(at_ns, start, &values)?;
            i = j;
        }
        Ok(())
    }

    /// Reads `len` pages starting at `lba`: one `Option<u64>` per page.
    /// Cached dirty values win over flash; trimmed or never-written pages
    /// read `None`. Synchronizing — flushes the engine pipeline when any
    /// page must come from flash.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceOutOfRange`] for spans outside the logical space;
    /// otherwise the engine's first finalized lane error (sticky).
    pub fn read(&mut self, lba: u64, len: usize) -> Result<Vec<Option<u64>>, SimError> {
        self.check_span(lba, len)?;
        if len == 0 {
            return Ok(Vec::new());
        }
        let at = self.tick();
        let mut out: Vec<Option<u64>> = vec![None; len];
        // Contiguous runs of pages that must come from flash, as
        // `(out index, start lba, page count)`.
        let mut spans: Vec<(usize, u64, u32)> = Vec::new();
        let mut run: Option<(usize, u64, u32)> = None;
        for (i, slot) in out.iter_mut().enumerate() {
            let page = lba + i as u64;
            let local = if self.trimmed.contains(&page) {
                Some(None)
            } else {
                self.cache.as_ref().and_then(|c| c.lookup(page)).map(Some)
            };
            match local {
                Some(value) => {
                    *slot = value;
                    if let Some(span) = run.take() {
                        spans.push(span);
                    }
                }
                None => match run.as_mut() {
                    Some(span) => span.2 += 1,
                    None => run = Some((i, page, 1)),
                },
            }
        }
        if let Some(span) = run.take() {
            spans.push(span);
        }
        for &(_, start, pages) in &spans {
            self.engine.submit(TraceEvent::read_span(at, start, pages))?;
        }
        if !spans.is_empty() {
            self.engine.flush()?;
            let mut results = self.engine.take_completed_reads().into_iter();
            for &(index, _, pages) in &spans {
                let values = results
                    .next()
                    .expect("engine returns one result per read span");
                debug_assert_eq!(values.len(), pages as usize);
                for (k, value) in values.into_iter().enumerate() {
                    out[index + k] = value;
                }
            }
        }
        Ok(out)
    }

    /// Advisory trim of `len` pages starting at `lba`: drops cached dirty
    /// data for the span (legal — it was never acked durable) and masks
    /// subsequent reads to `None` until rewritten. RAM-only; a crash
    /// forgets the mask. Zero-length trims are no-ops.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceOutOfRange`] for spans outside the logical space.
    pub fn trim(&mut self, lba: u64, len: usize) -> Result<(), SimError> {
        self.check_span(lba, len)?;
        if len == 0 {
            return Ok(());
        }
        self.tick();
        for i in 0..len as u64 {
            let page = lba + i;
            if let Some(cache) = self.cache.as_mut() {
                cache.trim(page);
            }
            self.trimmed.insert(page);
        }
        Ok(())
    }

    /// Durability barrier: writes back every dirty cache entry and drains
    /// the engine pipeline. When this returns `Ok`, every previously acked
    /// write is on flash and survives a power cut.
    ///
    /// # Errors
    ///
    /// The engine's first finalized lane error (sticky).
    pub fn flush(&mut self) -> Result<(), SimError> {
        let at = self.clock_ns;
        if let Some(cache) = self.cache.as_mut() {
            let batch = cache.drain_all();
            self.submit_batch(at, &batch)?;
        }
        self.engine.flush()
    }

    /// Creates CoW snapshot `id` of the served device. The ack is
    /// *durable and exact*: every write accepted before this call is
    /// flushed to flash first (same barrier as [`Service::flush`]), so the
    /// snapshot images precisely the acked state, and the on-flash
    /// manifest commit makes the snapshot itself survive a power cut —
    /// crashmc sweeps assert that an acked `snapshot_create` is always
    /// present after remount.
    ///
    /// # Errors
    ///
    /// The engine's (sticky) error, or the snapshot plane's rejection
    /// (duplicate id, manifest full, snapshots disabled, NFTL layer).
    pub fn snapshot_create(&mut self, id: u64) -> Result<(), SimError> {
        self.flush()?;
        self.engine.snapshot_create(id)
    }

    /// Deletes snapshot `id`, releasing the flash pages only it pinned.
    ///
    /// # Errors
    ///
    /// As for [`Service::snapshot_create`].
    pub fn snapshot_delete(&mut self, id: u64) -> Result<(), SimError> {
        self.engine.snapshot_delete(id)
    }

    /// Rolls the served device back to snapshot `id`. Rollback discards
    /// the current live image *including* accepted-but-unflushed cache
    /// contents and trim masks — they describe the pre-rollback state the
    /// caller is explicitly abandoning.
    ///
    /// # Errors
    ///
    /// As for [`Service::snapshot_create`].
    pub fn snapshot_clone(&mut self, id: u64) -> Result<(), SimError> {
        if let Some(cache) = self.cache.as_mut() {
            // Dropped, not written back: the rollback supersedes them.
            drop(cache.drain_all());
        }
        self.trimmed.clear();
        self.engine.snapshot_clone(id)
    }

    /// Merges snapshot `id` into the live image and drops it. Accepted
    /// writes are flushed first; at the merge point the snapshot's
    /// mappings win every page it images (that is what merging a snapshot
    /// means), and advisory trim masks are cleared so restored pages are
    /// readable.
    ///
    /// # Errors
    ///
    /// As for [`Service::snapshot_create`].
    pub fn snapshot_merge(&mut self, id: u64) -> Result<(), SimError> {
        self.flush()?;
        self.trimmed.clear();
        self.engine.snapshot_merge(id)
    }

    /// Flushes, tears the engine down, and assembles the run summary.
    ///
    /// # Errors
    ///
    /// Returns the first finalized lane error; the engine is torn down
    /// either way.
    pub fn finish(mut self) -> Result<ServiceRun, SimError> {
        self.flush()?;
        let health = self.stats();
        let cache = self.cache_sample();
        let run = self.engine.finish()?;
        Ok(ServiceRun {
            run,
            cache,
            health,
            ops: self.ops,
        })
    }

    /// Crash-harness teardown: drops the cache (its dirty entries were
    /// never acked durable, so losing them models exactly what a power
    /// cut does to a RAM cache) and returns the raw devices in channel
    /// order for `disarm_power_cut` / `power_cycle` / re-mount.
    pub fn into_devices(self) -> Vec<NandDevice<EngineSink>> {
        self.engine.into_devices()
    }
}

/// One queued client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Write `data` starting at `lba` (ack = accepted, not durable).
    Write {
        /// First logical page of the span.
        lba: u64,
        /// One value per page.
        data: Vec<u64>,
    },
    /// Read `len` pages starting at `lba`.
    Read {
        /// First logical page of the span.
        lba: u64,
        /// Pages to read.
        len: usize,
    },
    /// Advisory trim of `len` pages starting at `lba`.
    Trim {
        /// First logical page of the span.
        lba: u64,
        /// Pages to trim.
        len: usize,
    },
    /// Durability barrier (ack = everything prior is on flash).
    Flush,
    /// Management verb: SMART-style health report (see [`Service::stats`]).
    /// Travels the same bounded queue as I/O — a real production management
    /// plane with no side channel and no new locks in the data path.
    Stats,
    /// Create CoW snapshot `id` (ack = durable, images all acked writes).
    Snapshot {
        /// Snapshot id (caller-chosen, must be unused).
        id: u64,
    },
    /// Delete snapshot `id`.
    DeleteSnapshot {
        /// Snapshot id to delete.
        id: u64,
    },
    /// Roll the device back to snapshot `id` (discards the live image).
    CloneSnapshot {
        /// Snapshot id to roll back to.
        id: u64,
    },
    /// Merge snapshot `id` into the live image and drop it.
    MergeSnapshot {
        /// Snapshot id to merge.
        id: u64,
    },
}

/// The service's reply to one [`Request`].
///
/// (`PartialEq` only: [`HealthReport`] carries `f64` rates, so `Stats`
/// replies have no total equality.)
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The write was accepted.
    Written,
    /// Read results, one per requested page.
    Data(Vec<Option<u64>>),
    /// The trim was applied.
    Trimmed,
    /// Everything previously accepted is durable.
    Flushed,
    /// The health report, boxed to keep reply envelopes small. `None` when
    /// the service runs without the health plane.
    Stats(Option<Box<HealthReport>>),
    /// The snapshot verb (create / delete / clone / merge) completed.
    SnapshotDone,
    /// The op failed (engine errors are sticky — every later op fails
    /// with the same error).
    Error(SimError),
}

/// A request tagged with the client it came from.
#[derive(Debug)]
struct Envelope {
    client: usize,
    request: Request,
}

/// Saturating nanoseconds since `t`.
fn since_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A client handle onto a served [`Service`]: blocking block-device verbs
/// plus wall-clock per-op latency histograms recorded client-side.
/// Requests from all clients serialize through one bounded queue, so every
/// op is linearized by the service thread.
pub struct ServiceClient {
    id: usize,
    requests: Arc<ShardQueue<Envelope>>,
    replies: Arc<ShardQueue<Response>>,
    write_latency: LatencyHistogram,
    read_latency: LatencyHistogram,
    flush_latency: LatencyHistogram,
}

impl ServiceClient {
    /// This client's index (its reply-queue slot).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Wall-clock submit-to-ack latency of this client's writes.
    pub fn write_latency(&self) -> &LatencyHistogram {
        &self.write_latency
    }

    /// Wall-clock submit-to-ack latency of this client's reads.
    pub fn read_latency(&self) -> &LatencyHistogram {
        &self.read_latency
    }

    /// Wall-clock submit-to-ack latency of this client's flushes.
    pub fn flush_latency(&self) -> &LatencyHistogram {
        &self.flush_latency
    }

    /// Round-trips one request.
    ///
    /// # Panics
    ///
    /// Panics when the server was joined while this client was still
    /// active — join the server only after its clients are done.
    fn call(&mut self, request: Request) -> Response {
        let envelope = Envelope {
            client: self.id,
            request,
        };
        if self.requests.push(envelope).is_err() {
            panic!("service joined while client {} was active", self.id);
        }
        self.replies
            .pop()
            .expect("service dropped a reply before answering")
    }

    /// Writes `data` starting at `lba` (ack = accepted, not durable).
    ///
    /// # Errors
    ///
    /// As [`Service::write`].
    pub fn write(&mut self, lba: u64, data: Vec<u64>) -> Result<(), SimError> {
        let start = Instant::now();
        let response = self.call(Request::Write { lba, data });
        self.write_latency.record(since_ns(start));
        match response {
            Response::Written => Ok(()),
            Response::Error(e) => Err(e),
            other => panic!("mismatched reply to write: {other:?}"),
        }
    }

    /// Reads `len` pages starting at `lba`.
    ///
    /// # Errors
    ///
    /// As [`Service::read`].
    pub fn read(&mut self, lba: u64, len: usize) -> Result<Vec<Option<u64>>, SimError> {
        let start = Instant::now();
        let response = self.call(Request::Read { lba, len });
        self.read_latency.record(since_ns(start));
        match response {
            Response::Data(values) => Ok(values),
            Response::Error(e) => Err(e),
            other => panic!("mismatched reply to read: {other:?}"),
        }
    }

    /// Advisory trim of `len` pages starting at `lba`.
    ///
    /// # Errors
    ///
    /// As [`Service::trim`].
    pub fn trim(&mut self, lba: u64, len: usize) -> Result<(), SimError> {
        let response = self.call(Request::Trim { lba, len });
        match response {
            Response::Trimmed => Ok(()),
            Response::Error(e) => Err(e),
            other => panic!("mismatched reply to trim: {other:?}"),
        }
    }

    /// Queries the service's SMART-style health report over the same
    /// bounded queue as I/O (linearized with the data path, no side
    /// channel). `None` when the service runs without the health plane.
    pub fn stats(&mut self) -> Option<HealthReport> {
        match self.call(Request::Stats) {
            Response::Stats(report) => report.map(|b| *b),
            other => panic!("mismatched reply to stats: {other:?}"),
        }
    }

    /// Durability barrier: when this returns `Ok`, every write this (or
    /// any) client had acked before the call survives a power cut.
    ///
    /// # Errors
    ///
    /// As [`Service::flush`].
    pub fn flush(&mut self) -> Result<(), SimError> {
        let start = Instant::now();
        let response = self.call(Request::Flush);
        self.flush_latency.record(since_ns(start));
        match response {
            Response::Flushed => Ok(()),
            Response::Error(e) => Err(e),
            other => panic!("mismatched reply to flush: {other:?}"),
        }
    }

    /// Dispatches one snapshot-plane request and decodes the shared
    /// `SnapshotDone` ack.
    fn snapshot_call(&mut self, request: Request) -> Result<(), SimError> {
        match self.call(request) {
            Response::SnapshotDone => Ok(()),
            Response::Error(e) => Err(e),
            other => panic!("mismatched reply to snapshot verb: {other:?}"),
        }
    }

    /// Creates CoW snapshot `id` (ack = durable; see
    /// [`Service::snapshot_create`]).
    ///
    /// # Errors
    ///
    /// As [`Service::snapshot_create`].
    pub fn snapshot(&mut self, id: u64) -> Result<(), SimError> {
        self.snapshot_call(Request::Snapshot { id })
    }

    /// Deletes snapshot `id`.
    ///
    /// # Errors
    ///
    /// As [`Service::snapshot_delete`].
    pub fn delete_snapshot(&mut self, id: u64) -> Result<(), SimError> {
        self.snapshot_call(Request::DeleteSnapshot { id })
    }

    /// Rolls the device back to snapshot `id`.
    ///
    /// # Errors
    ///
    /// As [`Service::snapshot_clone`].
    pub fn clone_snapshot(&mut self, id: u64) -> Result<(), SimError> {
        self.snapshot_call(Request::CloneSnapshot { id })
    }

    /// Merges snapshot `id` into the live image and drops it.
    ///
    /// # Errors
    ///
    /// As [`Service::snapshot_merge`].
    pub fn merge_snapshot(&mut self, id: u64) -> Result<(), SimError> {
        self.snapshot_call(Request::MergeSnapshot { id })
    }
}

/// Handle onto the thread running a served [`Service`]; join it to get
/// the service back (for [`Service::finish`] or crash teardown).
pub struct ServiceServer {
    requests: Arc<ShardQueue<Envelope>>,
    thread: JoinHandle<Service>,
}

impl ServiceServer {
    /// Closes the request queue (after letting it drain) and recovers the
    /// service. Clients must be done first: a client op racing this call
    /// can panic on the closed queue.
    pub fn join(self) -> Service {
        self.requests.close();
        self.thread.join().expect("service thread panicked")
    }
}

impl Service {
    /// Serves this service to `clients` concurrent in-process clients
    /// (at least 1). All requests funnel through one bounded queue into a
    /// dedicated service thread, so ops are linearized in arrival order;
    /// each client gets its own single-slot reply queue.
    pub fn serve(self, clients: usize) -> (ServiceServer, Vec<ServiceClient>) {
        let clients = clients.max(1);
        let requests: Arc<ShardQueue<Envelope>> = Arc::new(ShardQueue::new(clients * 2));
        let reply_queues: Vec<Arc<ShardQueue<Response>>> =
            (0..clients).map(|_| Arc::new(ShardQueue::new(1))).collect();
        let thread = {
            let requests = Arc::clone(&requests);
            let reply_queues = reply_queues.clone();
            std::thread::Builder::new()
                .name("service".into())
                .spawn(move || {
                    let mut service = self;
                    while let Some(Envelope { client, request }) = requests.pop() {
                        let response = service.handle(request);
                        // A closed reply queue means the client hung up;
                        // its reply is moot.
                        let _ = reply_queues[client].push(response);
                    }
                    service
                })
                .expect("failed to spawn service thread")
        };
        let handles = reply_queues
            .into_iter()
            .enumerate()
            .map(|(id, replies)| ServiceClient {
                id,
                requests: Arc::clone(&requests),
                replies,
                write_latency: LatencyHistogram::new(),
                read_latency: LatencyHistogram::new(),
                flush_latency: LatencyHistogram::new(),
            })
            .collect();
        (ServiceServer { requests, thread }, handles)
    }

    /// Executes one client request.
    fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Write { lba, data } => match self.write(lba, &data) {
                Ok(()) => Response::Written,
                Err(e) => Response::Error(e),
            },
            Request::Read { lba, len } => match self.read(lba, len) {
                Ok(values) => Response::Data(values),
                Err(e) => Response::Error(e),
            },
            Request::Trim { lba, len } => match self.trim(lba, len) {
                Ok(()) => Response::Trimmed,
                Err(e) => Response::Error(e),
            },
            Request::Flush => match self.flush() {
                Ok(()) => Response::Flushed,
                Err(e) => Response::Error(e),
            },
            Request::Stats => Response::Stats(self.stats().map(Box::new)),
            Request::Snapshot { id } => match self.snapshot_create(id) {
                Ok(()) => Response::SnapshotDone,
                Err(e) => Response::Error(e),
            },
            Request::DeleteSnapshot { id } => match self.snapshot_delete(id) {
                Ok(()) => Response::SnapshotDone,
                Err(e) => Response::Error(e),
            },
            Request::CloneSnapshot { id } => match self.snapshot_clone(id) {
                Ok(()) => Response::SnapshotDone,
                Err(e) => Response::Error(e),
            },
            Request::MergeSnapshot { id } => match self.snapshot_merge(id) {
                Ok(()) => Response::SnapshotDone,
                Err(e) => Response::Error(e),
            },
        }
    }
}
