//! Unified error type over both translation layers.

use std::error::Error;
use std::fmt;

use ftl::FtlError;
use nftl::NftlError;

/// Errors surfaced while simulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The page-mapping FTL failed.
    Ftl(FtlError),
    /// The block-mapping NFTL failed.
    Nftl(NftlError),
    /// A trace event addressed a page outside the layer's logical space.
    TraceOutOfRange {
        /// Offending logical page.
        lba: u64,
        /// The layer's logical capacity.
        logical_pages: u64,
    },
    /// A snapshot verb reached a layer that cannot serve it (the
    /// block-mapping NFTL has no copy-on-write machinery).
    SnapshotUnsupported,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Ftl(e) => write!(f, "ftl: {e}"),
            SimError::Nftl(e) => write!(f, "nftl: {e}"),
            SimError::TraceOutOfRange { lba, logical_pages } => write!(
                f,
                "trace event lba {lba} outside logical space of {logical_pages} pages"
            ),
            SimError::SnapshotUnsupported => {
                f.write_str("this translation layer does not support snapshots")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Ftl(e) => Some(e),
            SimError::Nftl(e) => Some(e),
            SimError::TraceOutOfRange { .. } | SimError::SnapshotUnsupported => None,
        }
    }
}

impl From<FtlError> for SimError {
    fn from(e: FtlError) -> Self {
        SimError::Ftl(e)
    }
}

impl From<NftlError> for SimError {
    fn from(e: NftlError) -> Self {
        SimError::Nftl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_layer_errors() {
        let e: SimError = FtlError::NoReclaimableSpace.into();
        assert!(matches!(e, SimError::Ftl(_)));
        assert!(e.source().is_some());
        let e: SimError = NftlError::FreeExhausted.into();
        assert!(e.to_string().starts_with("nftl:"));
    }
}
