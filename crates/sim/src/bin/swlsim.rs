//! `swlsim` — command-line front end to the flash endurance simulator.
//!
//! ```text
//! swlsim [OPTIONS]
//!
//!   --layer ftl|nftl        translation layer           (default ftl)
//!   --blocks N              erase blocks on the chip    (default 1024)
//!   --pages N               pages per block             (default 128)
//!   --endurance N           erase cycles per block      (default 512)
//!   --swl T:K               attach the SW Leveler       (default off)
//!   --seed N                workload/leveler seed       (default 42)
//!   --years F               stop after F simulated years
//!   --events N              stop after N trace events
//!   --failure               stop at the first wear-out  (default)
//!   --rates W:R             write/read ops per second   (default 1.82:1.97)
//!   --frozen F              frozen fraction of footprint (default 0.75)
//!   --trace FILE            replay a text trace instead of the synthetic
//!                           workload (format: "at_ns R|W lba len" lines)
//! ```
//!
//! Example: compare NFTL with and without leveling in one minute —
//!
//! ```text
//! swlsim --layer nftl --blocks 256 --endurance 256 --failure
//! swlsim --layer nftl --blocks 256 --endurance 256 --failure --swl 13:0
//! ```

use std::process::ExitCode;

use flash_sim::{Layer, LayerKind, SimConfig, Simulator, StopCondition, TranslationLayer};
use flash_trace::{parse_trace, SegmentResampler, TraceEvent, WorkloadSpec};
use nand::{CellKind, Geometry, NandDevice};
use swl_core::SwlConfig;

const NANOS_PER_YEAR: f64 = 365.25 * 86_400.0 * 1e9;

#[derive(Debug)]
struct Options {
    layer: LayerKind,
    blocks: u32,
    pages: u32,
    endurance: u32,
    swl: Option<(u64, u32)>,
    seed: u64,
    stop: StopCondition,
    rates: (f64, f64),
    frozen: f64,
    trace_file: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            layer: LayerKind::Ftl,
            blocks: 1024,
            pages: 128,
            endurance: 512,
            swl: None,
            seed: 42,
            stop: StopCondition::first_failure(),
            rates: (1.82, 1.97),
            frozen: 0.75,
            trace_file: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--layer" => {
                options.layer = match value("--layer")?.as_str() {
                    "ftl" => LayerKind::Ftl,
                    "nftl" => LayerKind::Nftl,
                    other => return Err(format!("unknown layer {other:?}")),
                }
            }
            "--blocks" => {
                options.blocks = value("--blocks")?
                    .parse()
                    .map_err(|e| format!("--blocks: {e}"))?
            }
            "--pages" => {
                options.pages = value("--pages")?
                    .parse()
                    .map_err(|e| format!("--pages: {e}"))?
            }
            "--endurance" => {
                options.endurance = value("--endurance")?
                    .parse()
                    .map_err(|e| format!("--endurance: {e}"))?
            }
            "--swl" => {
                let spec = value("--swl")?;
                let (t, k) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--swl expects T:K, got {spec:?}"))?;
                options.swl = Some((
                    t.parse().map_err(|e| format!("--swl threshold: {e}"))?,
                    k.parse().map_err(|e| format!("--swl k: {e}"))?,
                ));
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--years" => {
                let years: f64 = value("--years")?
                    .parse()
                    .map_err(|e| format!("--years: {e}"))?;
                options.stop = StopCondition::horizon((years * NANOS_PER_YEAR) as u64);
            }
            "--events" => {
                let events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?;
                options.stop = StopCondition::events(events);
            }
            "--failure" => options.stop = StopCondition::first_failure(),
            "--rates" => {
                let spec = value("--rates")?;
                let (w, r) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--rates expects W:R, got {spec:?}"))?;
                options.rates = (
                    w.parse().map_err(|e| format!("--rates writes: {e}"))?,
                    r.parse().map_err(|e| format!("--rates reads: {e}"))?,
                );
            }
            "--frozen" => {
                options.frozen = value("--frozen")?
                    .parse()
                    .map_err(|e| format!("--frozen: {e}"))?
            }
            "--trace" => options.trace_file = Some(value("--trace")?),
            "--help" | "-h" => {
                return Err("usage: swlsim [--layer ftl|nftl] [--blocks N] [--pages N] \
                            [--endurance N] [--swl T:K] [--seed N] [--years F | --events N | \
                            --failure] [--rates W:R] [--frozen F] [--trace FILE]"
                    .to_owned())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn run(options: &Options) -> Result<(), String> {
    let device = NandDevice::new(
        Geometry::new(options.blocks, options.pages, 2048),
        CellKind::Mlc2.spec().with_endurance(options.endurance),
    );
    let swl = options
        .swl
        .map(|(t, k)| SwlConfig::new(t, k).with_seed(options.seed));
    let mut layer = Layer::build(options.layer, device, swl, &SimConfig::default())
        .map_err(|e| e.to_string())?;

    let report = if let Some(path) = &options.trace_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let events: Vec<TraceEvent> = parse_trace(&text).map_err(|e| e.to_string())?;
        println!("replaying {} events from {path}", events.len());
        Simulator::new()
            .run(&mut layer, events, options.stop)
            .map_err(|e| e.to_string())?
    } else {
        let spec = WorkloadSpec::paper(layer.logical_pages())
            .with_seed(options.seed)
            .with_rates(options.rates.0, options.rates.1)
            .with_frozen_fraction(options.frozen);
        let trace = spec.fill_events().chain(SegmentResampler::from_spec(
            spec.clone(),
            options.seed ^ 0xABCD,
        ));
        Simulator::new()
            .run(&mut layer, trace, options.stop)
            .map_err(|e| e.to_string())?
    };

    println!("{report}");
    println!(
        "  device: {} reads, {} programs, {} erases; busy {:.2} s",
        report.device.reads,
        report.device.programs,
        report.device.erases,
        report.device_busy_ns as f64 / 1e9
    );
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("swlsim: {message}");
            ExitCode::FAILURE
        }
    }
}
