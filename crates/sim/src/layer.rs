//! A unified interface over the two translation layers.

use std::fmt;

use flash_telemetry::{NullSink, Sink};
use ftl::{FtlConfig, PageMappedFtl};
use nand::{FaultPlan, NandDevice};
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::{LevelOutcome, SwLeveler, SwlConfig};

use crate::error::SimError;

/// Which translation layer to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Page-mapping FTL (fine-grained).
    Ftl,
    /// Block-mapping NFTL (coarse-grained).
    Nftl,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Ftl => f.write_str("FTL"),
            LayerKind::Nftl => f.write_str("NFTL"),
        }
    }
}

/// Shared layer configuration used when building a [`Layer`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimConfig {
    /// FTL-specific settings.
    pub ftl: FtlConfig,
    /// NFTL-specific settings.
    pub nftl: NftlConfig,
    /// Deterministic fault-injection plan attached to the device at build
    /// time (`None` leaves the chip fault-free; reports are bit-identical
    /// to a build without the field).
    pub fault: Option<FaultPlan>,
}

/// Cause-attributed counters, unified across layers.
///
/// The definition is shared with the translation layers themselves (it is
/// the same [`flash_telemetry::FlashCounters`] both re-export), so a
/// [`crate::SimReport`] carries every field either layer maintains and the
/// telemetry aggregator can reproduce it from a replayed event log.
pub use flash_telemetry::FlashCounters as LayerCounters;

/// Unified view of a translation layer for the simulator.
pub trait TranslationLayer {
    /// Telemetry sink the underlying device is instrumented with
    /// ([`NullSink`] for plain layers).
    type Sink: Sink;

    /// Writes one logical page.
    ///
    /// # Errors
    ///
    /// Propagates layer failures as [`SimError`].
    fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError>;

    /// Reads one logical page (`None` if never written).
    ///
    /// # Errors
    ///
    /// Propagates layer failures as [`SimError`].
    fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError>;

    /// Exported logical capacity in pages.
    fn logical_pages(&self) -> u64;

    /// The underlying simulated chip.
    fn device(&self) -> &NandDevice<Self::Sink>;

    /// Unified counters.
    fn counters(&self) -> LayerCounters;

    /// The attached SW Leveler, if any.
    fn swl(&self) -> Option<&SwLeveler>;

    /// Display name ("FTL" / "NFTL").
    fn kind(&self) -> LayerKind;

    /// Forces recycling of a block range (external wear-leveling hook);
    /// returns the number of blocks erased.
    ///
    /// # Errors
    ///
    /// Propagates reclamation failures as [`SimError`].
    fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, SimError>;
}

impl<S: Sink> TranslationLayer for PageMappedFtl<S> {
    type Sink = S;

    fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError> {
        PageMappedFtl::write(self, lba, data).map_err(SimError::from)
    }

    fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError> {
        PageMappedFtl::read(self, lba).map_err(SimError::from)
    }

    fn logical_pages(&self) -> u64 {
        PageMappedFtl::logical_pages(self)
    }

    fn device(&self) -> &NandDevice<S> {
        PageMappedFtl::device(self)
    }

    fn counters(&self) -> LayerCounters {
        PageMappedFtl::counters(self)
    }

    fn swl(&self) -> Option<&SwLeveler> {
        PageMappedFtl::swl(self)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Ftl
    }

    fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, SimError> {
        PageMappedFtl::force_recycle(self, first_block, count).map_err(SimError::from)
    }
}

impl<S: Sink> TranslationLayer for BlockMappedNftl<S> {
    type Sink = S;

    fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError> {
        BlockMappedNftl::write(self, lba, data).map_err(SimError::from)
    }

    fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError> {
        BlockMappedNftl::read(self, lba).map_err(SimError::from)
    }

    fn logical_pages(&self) -> u64 {
        BlockMappedNftl::logical_pages(self)
    }

    fn device(&self) -> &NandDevice<S> {
        BlockMappedNftl::device(self)
    }

    fn counters(&self) -> LayerCounters {
        BlockMappedNftl::counters(self)
    }

    fn swl(&self) -> Option<&SwLeveler> {
        BlockMappedNftl::swl(self)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Nftl
    }

    fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, SimError> {
        BlockMappedNftl::force_recycle(self, first_block, count).map_err(SimError::from)
    }
}

/// Either translation layer, statically dispatched.
// One Layer exists per simulation run, so the size gap between the two
// variants costs nothing; boxing would only add indirection to every op.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Layer<S: Sink = NullSink> {
    /// Page-mapping FTL.
    Ftl(PageMappedFtl<S>),
    /// Block-mapping NFTL.
    Nftl(BlockMappedNftl<S>),
}

impl<S: Sink> Layer<S> {
    /// Builds a layer of `kind` over `device`, attaching a SW Leveler when
    /// `swl` is given. Instrumented runs pass a device pre-wired with
    /// [`NandDevice::with_sink`]; the sink observes every layer below.
    ///
    /// # Errors
    ///
    /// Propagates layer construction failures.
    pub fn build(
        kind: LayerKind,
        device: NandDevice<S>,
        swl: Option<SwlConfig>,
        config: &SimConfig,
    ) -> Result<Self, SimError> {
        let device = match config.fault {
            Some(plan) => device.with_fault_plan(plan),
            None => device,
        };
        Ok(match (kind, swl) {
            (LayerKind::Ftl, None) => Layer::Ftl(PageMappedFtl::new(device, config.ftl)?),
            (LayerKind::Ftl, Some(s)) => {
                Layer::Ftl(PageMappedFtl::with_swl(device, config.ftl, s)?)
            }
            (LayerKind::Nftl, None) => Layer::Nftl(BlockMappedNftl::new(device, config.nftl)?),
            (LayerKind::Nftl, Some(s)) => {
                Layer::Nftl(BlockMappedNftl::with_swl(device, config.nftl, s)?)
            }
        })
    }

    /// Re-attaches a previously used chip through the layers' firmware
    /// mount paths, rebuilding translation state from the spare areas on
    /// flash — pair with [`Layer::into_device`] to simulate power cycles.
    /// No fault plan is applied and no SW Leveler is attached: `config`
    /// supplies only the layer settings, and a leveler recovered from a
    /// [`swl_core::persist::DualBuffer`] snapshot can be re-attached with
    /// the layers' `attach_swl` afterwards.
    ///
    /// # Errors
    ///
    /// Propagates mount failures (corrupt spare areas, duplicate logical
    /// mappings) as [`SimError`].
    pub fn mount(
        kind: LayerKind,
        device: NandDevice<S>,
        config: &SimConfig,
    ) -> Result<Self, SimError> {
        Ok(match kind {
            LayerKind::Ftl => Layer::Ftl(PageMappedFtl::mount(device, config.ftl)?),
            LayerKind::Nftl => Layer::Nftl(BlockMappedNftl::mount(device, config.nftl)?),
        })
    }

    /// Shuts the layer down, returning the chip (and the telemetry sink
    /// riding on it — recover it with [`NandDevice::into_sink`]).
    pub fn into_device(self) -> NandDevice<S> {
        match self {
            Layer::Ftl(l) => l.into_device(),
            Layer::Nftl(l) => l.into_device(),
        }
    }

    /// Attaches (or replaces) a pre-built SW Leveler — e.g. one restored
    /// from a persistence snapshot after [`Layer::mount`].
    pub fn attach_swl(&mut self, swl: SwLeveler) {
        match self {
            Layer::Ftl(l) => l.attach_swl(swl),
            Layer::Nftl(l) => l.attach_swl(swl),
        }
    }

    /// Manually invokes SWL-Procedure (e.g. from a timer).
    ///
    /// # Errors
    ///
    /// Propagates reclamation failures as [`SimError`].
    pub fn run_swl(&mut self) -> Result<LevelOutcome, SimError> {
        match self {
            Layer::Ftl(l) => l.run_swl().map_err(SimError::from),
            Layer::Nftl(l) => l.run_swl().map_err(SimError::from),
        }
    }

    /// Runs exactly one SWL-Procedure step, ignoring the local threshold —
    /// the multi-shard coordinator's entry point.
    ///
    /// # Errors
    ///
    /// Propagates reclamation failures as [`SimError`].
    pub fn run_swl_step(&mut self) -> Result<LevelOutcome, SimError> {
        match self {
            Layer::Ftl(l) => l.run_swl_step().map_err(SimError::from),
            Layer::Nftl(l) => l.run_swl_step().map_err(SimError::from),
        }
    }

    /// Creates copy-on-write snapshot `id` of the current logical contents.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotUnsupported`] on the NFTL; FTL failures
    /// (disabled snapshots, duplicate id, full manifest, …) as
    /// [`SimError::Ftl`].
    pub fn snapshot_create(&mut self, id: u64) -> Result<(), SimError> {
        match self {
            Layer::Ftl(l) => l.snapshot_create(id).map_err(SimError::from),
            Layer::Nftl(_) => Err(SimError::SnapshotUnsupported),
        }
    }

    /// Deletes snapshot `id`, releasing the pages only it pinned.
    ///
    /// # Errors
    ///
    /// As for [`Layer::snapshot_create`].
    pub fn snapshot_delete(&mut self, id: u64) -> Result<(), SimError> {
        match self {
            Layer::Ftl(l) => l.snapshot_delete(id).map_err(SimError::from),
            Layer::Nftl(_) => Err(SimError::SnapshotUnsupported),
        }
    }

    /// Rolls the live image back to snapshot `id` (a writable clone).
    ///
    /// # Errors
    ///
    /// As for [`Layer::snapshot_create`].
    pub fn snapshot_clone(&mut self, id: u64) -> Result<(), SimError> {
        match self {
            Layer::Ftl(l) => l.snapshot_clone(id).map_err(SimError::from),
            Layer::Nftl(_) => Err(SimError::SnapshotUnsupported),
        }
    }

    /// Merges snapshot `id` into the live image (streamed begin → steps →
    /// commit) and drops it.
    ///
    /// # Errors
    ///
    /// As for [`Layer::snapshot_create`].
    pub fn snapshot_merge(&mut self, id: u64) -> Result<(), SimError> {
        match self {
            Layer::Ftl(l) => l.merge_offline(id).map_err(SimError::from),
            Layer::Nftl(_) => Err(SimError::SnapshotUnsupported),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Layer::Ftl($inner) => $body,
            Layer::Nftl($inner) => $body,
        }
    };
}

impl<S: Sink> TranslationLayer for Layer<S> {
    type Sink = S;

    fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError> {
        delegate!(self, l => TranslationLayer::write(l, lba, data))
    }

    fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError> {
        delegate!(self, l => TranslationLayer::read(l, lba))
    }

    fn logical_pages(&self) -> u64 {
        delegate!(self, l => TranslationLayer::logical_pages(l))
    }

    fn device(&self) -> &NandDevice<S> {
        delegate!(self, l => TranslationLayer::device(l))
    }

    fn counters(&self) -> LayerCounters {
        delegate!(self, l => TranslationLayer::counters(l))
    }

    fn swl(&self) -> Option<&SwLeveler> {
        delegate!(self, l => TranslationLayer::swl(l))
    }

    fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, SimError> {
        delegate!(self, l => TranslationLayer::force_recycle(l, first_block, count))
    }

    fn kind(&self) -> LayerKind {
        delegate!(self, l => TranslationLayer::kind(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand::{CellKind, Geometry};

    fn device() -> NandDevice {
        NandDevice::new(Geometry::new(16, 4, 2048), CellKind::Mlc2.spec())
    }

    #[test]
    fn builds_all_variants() {
        let cfg = SimConfig::default();
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            for swl in [None, Some(SwlConfig::new(100, 0))] {
                let layer = Layer::build(kind, device(), swl, &cfg).unwrap();
                assert_eq!(layer.kind(), kind);
                assert_eq!(layer.swl().is_some(), swl.is_some());
            }
        }
    }

    #[test]
    fn layer_round_trips_data() {
        let mut layer =
            Layer::build(LayerKind::Nftl, device(), None, &SimConfig::default()).unwrap();
        layer.write(5, 77).unwrap();
        assert_eq!(layer.read(5).unwrap(), Some(77));
        assert_eq!(layer.counters().host_writes, 1);
    }

    #[test]
    fn counters_unify_across_layers() {
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            let mut layer = Layer::build(kind, device(), None, &SimConfig::default()).unwrap();
            for round in 0..30u64 {
                for lba in 0..8u64 {
                    layer.write(lba, round).unwrap();
                }
            }
            let c = layer.counters();
            assert_eq!(c.host_writes, 240);
            assert_eq!(
                c.total_erases(),
                layer.device().counters().erases,
                "{kind}: unified counters must cover device erases"
            );
        }
    }

    #[test]
    fn force_recycle_reports_erases_and_keeps_data() {
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            let mut layer = Layer::build(kind, device(), None, &SimConfig::default()).unwrap();
            for lba in 0..24u64 {
                layer.write(lba, 500 + lba).unwrap();
            }
            let mut recycled = 0u64;
            for b in 0..16u32 {
                recycled += layer.force_recycle(b, 1).unwrap();
            }
            assert!(recycled > 0, "{kind}: forced recycling must erase");
            for lba in 0..24u64 {
                assert_eq!(layer.read(lba).unwrap(), Some(500 + lba), "{kind}");
            }
        }
    }

    #[test]
    fn mount_round_trips_data_through_power_cycle() {
        let cfg = SimConfig::default();
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            let mut layer = Layer::build(kind, device(), None, &cfg).unwrap();
            for lba in 0..16u64 {
                layer.write(lba, 900 + lba).unwrap();
            }
            let chip = layer.into_device();
            let mut layer = Layer::mount(kind, chip, &cfg).unwrap();
            for lba in 0..16u64 {
                assert_eq!(layer.read(lba).unwrap(), Some(900 + lba), "{kind}");
            }
        }
    }

    #[test]
    fn fault_plan_reaches_device_through_config() {
        let cfg = SimConfig {
            fault: Some(FaultPlan::new(7).with_program_fail_prob(0.05)),
            ..SimConfig::default()
        };
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            let mut layer = Layer::build(kind, device(), None, &cfg).unwrap();
            assert!(layer.device().fault_plan().is_some(), "{kind}");
            for round in 0..40u64 {
                for lba in 0..8u64 {
                    if layer.write(lba, round).is_err() {
                        break;
                    }
                }
            }
            assert!(
                layer.counters().retired_blocks > 0,
                "{kind}: injected program failures must retire blocks"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(LayerKind::Ftl.to_string(), "FTL");
        assert_eq!(LayerKind::Nftl.to_string(), "NFTL");
    }
}
