//! A unified interface over the two translation layers.

use std::fmt;

use ftl::{FtlConfig, PageMappedFtl};
use nand::NandDevice;
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::{SwLeveler, SwlConfig};

use crate::error::SimError;

/// Which translation layer to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Page-mapping FTL (fine-grained).
    Ftl,
    /// Block-mapping NFTL (coarse-grained).
    Nftl,
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Ftl => f.write_str("FTL"),
            LayerKind::Nftl => f.write_str("NFTL"),
        }
    }
}

/// Shared layer configuration used when building a [`Layer`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimConfig {
    /// FTL-specific settings.
    pub ftl: FtlConfig,
    /// NFTL-specific settings.
    pub nftl: NftlConfig,
}

/// Cause-attributed counters, unified across layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCounters {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Host page reads served.
    pub host_reads: u64,
    /// Block erases from regular operation (GC, merges).
    pub gc_erases: u64,
    /// Block erases on behalf of the SW Leveler.
    pub swl_erases: u64,
    /// Live-page copies from regular operation.
    pub gc_live_copies: u64,
    /// Live-page copies on behalf of the SW Leveler.
    pub swl_live_copies: u64,
    /// Blocks retired by bad-block management.
    pub retired_blocks: u64,
}

impl LayerCounters {
    /// All block erases.
    pub fn total_erases(&self) -> u64 {
        self.gc_erases + self.swl_erases
    }

    /// All live-page copies.
    pub fn total_live_copies(&self) -> u64 {
        self.gc_live_copies + self.swl_live_copies
    }

    /// Average live copies per regular erase (the paper's `L`).
    pub fn avg_live_copies_per_gc_erase(&self) -> f64 {
        if self.gc_erases == 0 {
            0.0
        } else {
            self.gc_live_copies as f64 / self.gc_erases as f64
        }
    }
}

/// Object-safe view of a translation layer for the simulator.
pub trait TranslationLayer {
    /// Writes one logical page.
    ///
    /// # Errors
    ///
    /// Propagates layer failures as [`SimError`].
    fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError>;

    /// Reads one logical page (`None` if never written).
    ///
    /// # Errors
    ///
    /// Propagates layer failures as [`SimError`].
    fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError>;

    /// Exported logical capacity in pages.
    fn logical_pages(&self) -> u64;

    /// The underlying simulated chip.
    fn device(&self) -> &NandDevice;

    /// Unified counters.
    fn counters(&self) -> LayerCounters;

    /// The attached SW Leveler, if any.
    fn swl(&self) -> Option<&SwLeveler>;

    /// Display name ("FTL" / "NFTL").
    fn kind(&self) -> LayerKind;

    /// Forces recycling of a block range (external wear-leveling hook);
    /// returns the number of blocks erased.
    ///
    /// # Errors
    ///
    /// Propagates reclamation failures as [`SimError`].
    fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, SimError>;
}

impl TranslationLayer for PageMappedFtl {
    fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError> {
        PageMappedFtl::write(self, lba, data).map_err(SimError::from)
    }

    fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError> {
        PageMappedFtl::read(self, lba).map_err(SimError::from)
    }

    fn logical_pages(&self) -> u64 {
        PageMappedFtl::logical_pages(self)
    }

    fn device(&self) -> &NandDevice {
        PageMappedFtl::device(self)
    }

    fn counters(&self) -> LayerCounters {
        let c = PageMappedFtl::counters(self);
        LayerCounters {
            host_writes: c.host_writes,
            host_reads: c.host_reads,
            gc_erases: c.gc_erases,
            swl_erases: c.swl_erases,
            gc_live_copies: c.gc_live_copies,
            swl_live_copies: c.swl_live_copies,
            retired_blocks: c.retired_blocks,
        }
    }

    fn swl(&self) -> Option<&SwLeveler> {
        PageMappedFtl::swl(self)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Ftl
    }

    fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, SimError> {
        PageMappedFtl::force_recycle(self, first_block, count).map_err(SimError::from)
    }
}

impl TranslationLayer for BlockMappedNftl {
    fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError> {
        BlockMappedNftl::write(self, lba, data).map_err(SimError::from)
    }

    fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError> {
        BlockMappedNftl::read(self, lba).map_err(SimError::from)
    }

    fn logical_pages(&self) -> u64 {
        BlockMappedNftl::logical_pages(self)
    }

    fn device(&self) -> &NandDevice {
        BlockMappedNftl::device(self)
    }

    fn counters(&self) -> LayerCounters {
        let c = BlockMappedNftl::counters(self);
        LayerCounters {
            host_writes: c.host_writes,
            host_reads: c.host_reads,
            gc_erases: c.gc_erases,
            swl_erases: c.swl_erases,
            gc_live_copies: c.gc_live_copies,
            swl_live_copies: c.swl_live_copies,
            retired_blocks: c.retired_blocks,
        }
    }

    fn swl(&self) -> Option<&SwLeveler> {
        BlockMappedNftl::swl(self)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Nftl
    }

    fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, SimError> {
        BlockMappedNftl::force_recycle(self, first_block, count).map_err(SimError::from)
    }
}

/// Either translation layer, statically dispatched.
#[derive(Debug)]
pub enum Layer {
    /// Page-mapping FTL.
    Ftl(PageMappedFtl),
    /// Block-mapping NFTL.
    Nftl(BlockMappedNftl),
}

impl Layer {
    /// Builds a layer of `kind` over `device`, attaching a SW Leveler when
    /// `swl` is given.
    ///
    /// # Errors
    ///
    /// Propagates layer construction failures.
    pub fn build(
        kind: LayerKind,
        device: NandDevice,
        swl: Option<SwlConfig>,
        config: &SimConfig,
    ) -> Result<Self, SimError> {
        Ok(match (kind, swl) {
            (LayerKind::Ftl, None) => Layer::Ftl(PageMappedFtl::new(device, config.ftl)?),
            (LayerKind::Ftl, Some(s)) => {
                Layer::Ftl(PageMappedFtl::with_swl(device, config.ftl, s)?)
            }
            (LayerKind::Nftl, None) => Layer::Nftl(BlockMappedNftl::new(device, config.nftl)?),
            (LayerKind::Nftl, Some(s)) => {
                Layer::Nftl(BlockMappedNftl::with_swl(device, config.nftl, s)?)
            }
        })
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Layer::Ftl($inner) => $body,
            Layer::Nftl($inner) => $body,
        }
    };
}

impl TranslationLayer for Layer {
    fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError> {
        delegate!(self, l => TranslationLayer::write(l, lba, data))
    }

    fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError> {
        delegate!(self, l => TranslationLayer::read(l, lba))
    }

    fn logical_pages(&self) -> u64 {
        delegate!(self, l => TranslationLayer::logical_pages(l))
    }

    fn device(&self) -> &NandDevice {
        delegate!(self, l => TranslationLayer::device(l))
    }

    fn counters(&self) -> LayerCounters {
        delegate!(self, l => TranslationLayer::counters(l))
    }

    fn swl(&self) -> Option<&SwLeveler> {
        delegate!(self, l => TranslationLayer::swl(l))
    }

    fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, SimError> {
        delegate!(self, l => TranslationLayer::force_recycle(l, first_block, count))
    }

    fn kind(&self) -> LayerKind {
        delegate!(self, l => TranslationLayer::kind(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand::{CellKind, Geometry};

    fn device() -> NandDevice {
        NandDevice::new(Geometry::new(16, 4, 2048), CellKind::Mlc2.spec())
    }

    #[test]
    fn builds_all_variants() {
        let cfg = SimConfig::default();
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            for swl in [None, Some(SwlConfig::new(100, 0))] {
                let layer = Layer::build(kind, device(), swl, &cfg).unwrap();
                assert_eq!(layer.kind(), kind);
                assert_eq!(layer.swl().is_some(), swl.is_some());
            }
        }
    }

    #[test]
    fn layer_round_trips_data() {
        let mut layer =
            Layer::build(LayerKind::Nftl, device(), None, &SimConfig::default()).unwrap();
        layer.write(5, 77).unwrap();
        assert_eq!(layer.read(5).unwrap(), Some(77));
        assert_eq!(layer.counters().host_writes, 1);
    }

    #[test]
    fn counters_unify_across_layers() {
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            let mut layer = Layer::build(kind, device(), None, &SimConfig::default()).unwrap();
            for round in 0..30u64 {
                for lba in 0..8u64 {
                    layer.write(lba, round).unwrap();
                }
            }
            let c = layer.counters();
            assert_eq!(c.host_writes, 240);
            assert_eq!(
                c.total_erases(),
                layer.device().counters().erases,
                "{kind}: unified counters must cover device erases"
            );
        }
    }

    #[test]
    fn force_recycle_reports_erases_and_keeps_data() {
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            let mut layer = Layer::build(kind, device(), None, &SimConfig::default()).unwrap();
            for lba in 0..24u64 {
                layer.write(lba, 500 + lba).unwrap();
            }
            let mut recycled = 0u64;
            for b in 0..16u32 {
                recycled += layer.force_recycle(b, 1).unwrap();
            }
            assert!(recycled > 0, "{kind}: forced recycling must erase");
            for lba in 0..24u64 {
                assert_eq!(layer.read(lba).unwrap(), Some(500 + lba), "{kind}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(LayerKind::Ftl.to_string(), "FTL");
        assert_eq!(LayerKind::Nftl.to_string(), "NFTL");
    }
}
