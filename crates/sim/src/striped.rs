//! Multi-channel striped layer and its trace-driven run loop.
//!
//! A [`StripedLayer`] owns one translation layer per channel of a
//! [`ChannelGeometry`] and stripes host pages round-robin across them
//! (`channel = lba % C`, lane page `lba / C`). Every lane emits into one
//! shared telemetry stream ([`SharedSink`]), with [`Event::Channel`] markers
//! interleaved whenever the active lane changes — at `channels = 1` no
//! marker is ever emitted and the stream is byte-identical to a plain
//! single-chip run.
//!
//! Static wear leveling runs in one of two modes ([`SwlCoordination`]):
//! per-channel (each lane's leveler triggers on its own local unevenness,
//! exactly as a standalone layer would) or global (lanes are *deferred*
//! shards that only feed SWL-BETUpdate; the striped layer watches the
//! global unevenness `Σecnt / Σfcnt` and drives one
//! [`Layer::run_swl_step`] on the worst shard at a time until the global
//! level is back under `T`).
//!
//! [`Simulator::run_striped`] is the multi-channel analogue of
//! [`Simulator::run`]: identical per-page latency bookkeeping (bit-identical
//! at one channel), plus a virtual-time [`ChannelScheduler`] that overlaps
//! the per-channel busy deltas of each host op and reports op-level
//! latencies, per-channel busy time, and the achieved overlap factor.

use flash_telemetry::{Event, NullSink, SharedSink, Sink};
use flash_trace::{Op, TraceEvent};
use nand::{CellSpec, ChannelGeometry, DeviceCounters, EraseStats, NandDevice};
use swl_core::{global_over_threshold, worst_shard, ShardView, SwLeveler, SwlConfig};

use crate::error::SimError;
use crate::latency::LatencyStats;
use crate::layer::{Layer, LayerCounters, LayerKind, SimConfig, TranslationLayer};
use crate::report::{FirstFailure, NANOS_PER_YEAR};
use crate::sched::ChannelScheduler;
use crate::simulator::{Simulator, StopCondition};

/// How static wear leveling is driven across the channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwlCoordination {
    /// Each lane's leveler triggers on its own local unevenness, exactly as
    /// a standalone single-channel layer would.
    #[default]
    PerChannel,
    /// Lanes are deferred BET shards; the striped layer triggers on the
    /// global unevenness and steps the worst shard (mediant-inequality
    /// selection, see [`swl_core::shard`]).
    Global,
}

impl SwlCoordination {
    /// Short token for labels.
    pub fn token(self) -> &'static str {
        match self {
            SwlCoordination::PerChannel => "per-channel",
            SwlCoordination::Global => "global",
        }
    }
}

/// A `channels × chips-per-channel` array of translation layers striped
/// over one logical space.
#[derive(Debug)]
pub struct StripedLayer<S: Sink = NullSink> {
    lanes: Vec<Layer<SharedSink<S>>>,
    sink: SharedSink<S>,
    geometry: ChannelGeometry,
    kind: LayerKind,
    coordination: SwlCoordination,
    /// `(T, k)` of the attached levelers, when any.
    swl: Option<(u64, u32)>,
    last_channel: u32,
    logical_pages: u64,
}

impl StripedLayer<NullSink> {
    /// Builds an uninstrumented striped layer.
    ///
    /// # Errors
    ///
    /// Propagates layer construction failures.
    pub fn build(
        kind: LayerKind,
        geometry: ChannelGeometry,
        spec: CellSpec,
        swl: Option<SwlConfig>,
        coordination: SwlCoordination,
        config: &SimConfig,
    ) -> Result<Self, SimError> {
        Self::with_sink(kind, geometry, spec, swl, coordination, config, NullSink)
    }
}

impl<S: Sink> StripedLayer<S> {
    /// Builds a striped layer whose lanes all emit into `sink` (one shared,
    /// totally ordered stream). When the sink is enabled, one array-level
    /// [`Event::Meta`] header is emitted covering the whole array; at one
    /// channel it is identical to the header a plain instrumented device
    /// would write.
    ///
    /// With `swl`, every lane gets its own leveler over its lane-local
    /// blocks. Lane 0 keeps the configured seed (so a one-channel striped
    /// leveler is bit-identical to a standalone one); other lanes decorrelate
    /// their reset randomisation with a lane-indexed seed offset. Under
    /// [`SwlCoordination::Global`] with more than one channel, lanes are
    /// built *deferred* and this layer drives them.
    ///
    /// # Errors
    ///
    /// Propagates layer construction failures.
    pub fn with_sink(
        kind: LayerKind,
        geometry: ChannelGeometry,
        spec: CellSpec,
        swl: Option<SwlConfig>,
        coordination: SwlCoordination,
        config: &SimConfig,
        sink: S,
    ) -> Result<Self, SimError> {
        let mut shared = SharedSink::new(sink);
        if S::ENABLED {
            shared.event(Event::Meta {
                version: flash_telemetry::SCHEMA_VERSION,
                blocks: geometry
                    .total_blocks()
                    .try_into()
                    .expect("array block count exceeds u32"),
                pages_per_block: geometry.chip().pages_per_block(),
            });
            shared.event(Event::Endurance {
                limit: spec.endurance as u64,
            });
        }
        let channels = geometry.channels();
        let deferred = channels > 1 && coordination == SwlCoordination::Global;
        let mut lanes = Vec::with_capacity(channels as usize);
        for lane in 0..channels {
            let device = NandDevice::new(geometry.lane_geometry(), spec)
                .with_sink_silent(shared.clone());
            let lane_swl = swl.map(|base| {
                let seed = if lane == 0 {
                    base.seed
                } else {
                    base.seed
                        .wrapping_add(u64::from(lane).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                };
                base.with_seed(seed).with_deferred(deferred)
            });
            lanes.push(Layer::build(kind, device, lane_swl, config)?);
        }
        let logical_pages = lanes[0].logical_pages() * u64::from(channels);
        Ok(Self {
            lanes,
            sink: shared,
            geometry,
            kind,
            coordination,
            swl: swl.map(|s| (s.threshold, s.k)),
            last_channel: 0,
            logical_pages,
        })
    }

    /// Array shape.
    pub fn geometry(&self) -> ChannelGeometry {
        self.geometry
    }

    /// Which translation layer runs on each lane.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// SWL coordination mode.
    pub fn coordination(&self) -> SwlCoordination {
        self.coordination
    }

    /// `(T, k)` of the attached levelers, when any.
    pub fn swl(&self) -> Option<(u64, u32)> {
        self.swl
    }

    /// Exported logical capacity in pages (striped over all channels).
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// One lane's layer.
    pub fn lane(&self, channel: u32) -> &Layer<SharedSink<S>> {
        &self.lanes[channel as usize]
    }

    /// All lanes, in channel order.
    pub fn lanes(&self) -> &[Layer<SharedSink<S>>] {
        &self.lanes
    }

    /// Marks `channel` as the active lane in the telemetry stream. No-op
    /// when the lane is already active (so one-channel streams carry no
    /// markers at all).
    fn mark_channel(&mut self, channel: u32) {
        if S::ENABLED && channel != self.last_channel {
            self.sink.event(Event::Channel { id: channel });
            self.last_channel = channel;
        }
    }

    /// Writes one logical page, routing it to its stripe lane, then (in
    /// global coordination) levels shards while the global unevenness is
    /// over threshold.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range addresses and propagates lane failures.
    pub fn write(&mut self, lba: u64, data: u64) -> Result<(), SimError> {
        if lba >= self.logical_pages {
            return Err(SimError::TraceOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        let channel = self.geometry.channel_of(lba);
        let lane_lba = self.geometry.lane_lba(lba);
        self.mark_channel(channel);
        self.lanes[channel as usize].write(lane_lba, data)?;
        self.coordinate_swl()
    }

    /// Reads one logical page from its stripe lane.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range addresses and propagates lane failures.
    pub fn read(&mut self, lba: u64) -> Result<Option<u64>, SimError> {
        if lba >= self.logical_pages {
            return Err(SimError::TraceOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        let channel = self.geometry.channel_of(lba);
        let lane_lba = self.geometry.lane_lba(lba);
        self.mark_channel(channel);
        self.lanes[channel as usize].read(lane_lba)
    }

    /// The global-coordination loop: while `Σecnt / Σfcnt ≥ T`, run one
    /// SWL-Procedure step on the worst shard. Terminates because each step
    /// either erases (growing `fcnt` faster than the threshold for a stable
    /// `T > 2^k`), resets a full shard interval (dropping its counters to
    /// zero), or makes no progress at all — and a bounded streak of
    /// no-progress steps aborts the loop.
    fn coordinate_swl(&mut self) -> Result<(), SimError> {
        if self.coordination != SwlCoordination::Global || self.geometry.channels() <= 1 {
            return Ok(());
        }
        let Some((threshold, _)) = self.swl else {
            return Ok(());
        };
        // A stalled Cleaner (nothing to recycle anywhere) advances no
        // counter; give up after one fruitless pass over every flag.
        let flag_budget: u64 = self
            .lanes
            .iter()
            .filter_map(|l| l.swl())
            .map(|s| s.bet().flags() as u64)
            .sum();
        let mut fruitless = 0u64;
        loop {
            let views: Vec<ShardView> = self
                .lanes
                .iter()
                .map(|l| l.swl().map(ShardView::of).unwrap_or_default())
                .collect();
            if !global_over_threshold(&views, threshold) {
                return Ok(());
            }
            let Some(worst) = worst_shard(&views) else {
                return Ok(());
            };
            let before = (views[worst].ecnt, views[worst].fcnt);
            self.mark_channel(worst as u32);
            self.lanes[worst].run_swl_step()?;
            let after = self.lanes[worst]
                .swl()
                .map(ShardView::of)
                .unwrap_or_default();
            if (after.ecnt, after.fcnt) == before {
                fruitless += 1;
                if fruitless > flag_budget {
                    return Ok(());
                }
            } else {
                fruitless = 0;
            }
        }
    }

    /// Attaches (or replaces) lane `channel`'s SW Leveler — e.g. one
    /// restored from a persistence snapshot after [`StripedLayer::mount`].
    pub fn attach_swl(&mut self, channel: u32, swl: SwLeveler) {
        let config = swl.config();
        self.swl = Some((config.threshold, config.k));
        self.lanes[channel as usize].attach_swl(swl);
    }

    /// Shuts every lane down, returning the chips in channel order (each
    /// still carrying its shared sink handle) — pair with
    /// [`StripedLayer::mount`] to simulate power cycles.
    pub fn into_devices(self) -> Vec<NandDevice<SharedSink<S>>> {
        self.lanes.into_iter().map(Layer::into_device).collect()
    }

    /// Re-attaches previously used chips through the layers' firmware mount
    /// paths (the multi-channel analogue of [`Layer::mount`]). `devices`
    /// must come from [`StripedLayer::into_devices`] with the same
    /// `geometry`, in channel order. No levelers are attached; recovered
    /// ones can be re-attached per lane with [`StripedLayer::attach_swl`].
    ///
    /// # Errors
    ///
    /// Propagates mount failures.
    ///
    /// # Panics
    ///
    /// Panics when `devices` does not have one device per channel.
    pub fn mount(
        kind: LayerKind,
        geometry: ChannelGeometry,
        devices: Vec<NandDevice<SharedSink<S>>>,
        coordination: SwlCoordination,
        config: &SimConfig,
    ) -> Result<Self, SimError> {
        assert_eq!(
            devices.len(),
            geometry.channels() as usize,
            "one device per channel"
        );
        let mut devices = devices;
        let sink = devices[0].sink_mut().clone();
        let mut lanes = Vec::with_capacity(devices.len());
        for device in devices.drain(..) {
            lanes.push(Layer::mount(kind, device, config)?);
        }
        let logical_pages = lanes[0].logical_pages() * u64::from(geometry.channels());
        Ok(Self {
            lanes,
            sink,
            geometry,
            kind,
            coordination,
            swl: None,
            last_channel: 0,
            logical_pages,
        })
    }

    /// Shuts the array down and recovers the telemetry sink. All lane
    /// handles are dropped first, so this cannot fail.
    pub fn into_sink(self) -> S {
        let Self { lanes, sink, .. } = self;
        drop(lanes);
        sink.into_inner()
    }
}

/// Everything measured by one [`Simulator::run_striped`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct StripedReport {
    /// Which layer ran on each lane.
    pub layer: LayerKind,
    /// Number of channels.
    pub channels: u32,
    /// Whether SW Levelers were attached, with their `(T, k)` when so.
    pub swl: Option<(u64, u32)>,
    /// SWL coordination mode.
    pub coordination: SwlCoordination,
    /// Trace events processed.
    pub events: u64,
    /// Host time span covered by the processed events.
    pub host_span_ns: u64,
    /// First wear-out on any lane (block in the array-wide flat namespace),
    /// lowest channel winning ties within one event.
    pub first_failure: Option<FirstFailure>,
    /// Per-block erase-count distribution over the whole array.
    pub erase_stats: EraseStats,
    /// Cause-attributed counters summed over lanes.
    pub counters: LayerCounters,
    /// Device operation counters summed over lanes.
    pub device: DeviceCounters,
    /// Total device busy time across lanes.
    pub device_busy_ns: u64,
    /// Virtual time at which the last channel went idle.
    pub makespan_ns: u64,
    /// Busy time per channel, in channel order.
    pub channel_busy_ns: Vec<u64>,
    /// Per-page device-time write latency (one sample per page, as in
    /// [`crate::SimReport`] — bit-identical at one channel).
    pub write_latency: LatencyStats,
    /// Per-page device-time read latency.
    pub read_latency: LatencyStats,
    /// Scheduled latency of each host *write op* (sub-requests overlapped
    /// across channels; the max lane delta, not the sum).
    pub op_write_latency: LatencyStats,
    /// Scheduled latency of each host *read op*.
    pub op_read_latency: LatencyStats,
}

impl StripedReport {
    /// Host span in simulated years.
    pub fn span_years(&self) -> f64 {
        self.host_span_ns as f64 / NANOS_PER_YEAR
    }

    /// Achieved parallelism: total busy time divided by the makespan
    /// (`1.0` = serial, `channels` = perfect overlap). `None` before any
    /// device work.
    pub fn overlap_factor(&self) -> Option<f64> {
        (self.makespan_ns > 0).then(|| {
            let total: u64 = self.channel_busy_ns.iter().sum();
            total as f64 / self.makespan_ns as f64
        })
    }

    /// Short label like `"FTL×4ch+SWL(T=100,k=0,global)"`.
    pub fn label(&self) -> String {
        match self.swl {
            Some((t, k)) => format!(
                "{}×{}ch+SWL(T={t},k={k},{})",
                self.layer,
                self.channels,
                self.coordination.token()
            ),
            None => format!("{}×{}ch", self.layer, self.channels),
        }
    }
}

impl std::fmt::Display for StripedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} events over {:.3} simulated years",
            self.label(),
            self.events,
            self.span_years()
        )?;
        writeln!(f, "  erase counts: {}", self.erase_stats)?;
        match self.overlap_factor() {
            Some(overlap) => writeln!(
                f,
                "  makespan: {} ns, overlap ×{overlap:.2} over {} channels",
                self.makespan_ns, self.channels
            )?,
            None => writeln!(f, "  makespan: 0 ns")?,
        }
        write!(f, "  op write latency: {}", self.op_write_latency)
    }
}

pub(crate) fn sum_counters(lanes: impl Iterator<Item = LayerCounters>) -> LayerCounters {
    let mut total = LayerCounters::default();
    for c in lanes {
        total.host_writes += c.host_writes;
        total.host_reads += c.host_reads;
        total.trims += c.trims;
        total.gc_collections += c.gc_collections;
        total.full_merges += c.full_merges;
        total.gc_merges += c.gc_merges;
        total.swl_merges += c.swl_merges;
        total.gc_erases += c.gc_erases;
        total.swl_erases += c.swl_erases;
        total.gc_live_copies += c.gc_live_copies;
        total.swl_live_copies += c.swl_live_copies;
        total.retired_blocks += c.retired_blocks;
    }
    total
}

impl Simulator {
    /// Feeds `trace` into a striped multi-channel layer until `stop`
    /// triggers or the trace ends — the multi-channel analogue of
    /// [`Simulator::run`].
    ///
    /// Per-page latencies are recorded exactly as in the single-chip loop
    /// (the touched lane's busy delta), so a one-channel striped run
    /// reproduces [`Simulator::run`]'s histograms bit for bit. On top of
    /// that, each host op's per-channel busy deltas are submitted to a
    /// virtual-time [`ChannelScheduler`]: sub-requests on different
    /// channels overlap, the op's scheduled latency is the slowest lane's
    /// delta, and the report carries the makespan, per-channel busy time,
    /// and op-level latency histograms.
    ///
    /// # Errors
    ///
    /// Propagates lane failures and rejects trace events outside the
    /// striped logical space.
    pub fn run_striped<S, I>(
        &mut self,
        striped: &mut StripedLayer<S>,
        trace: I,
        stop: StopCondition,
    ) -> Result<StripedReport, SimError>
    where
        S: Sink,
        I: IntoIterator<Item = TraceEvent>,
    {
        let channels = striped.geometry().channels();
        let mut scheduler = ChannelScheduler::new(channels);
        let mut events = 0u64;
        let mut host_span_ns = 0u64;
        let mut first_failure: Option<FirstFailure> = None;
        let mut write_latency = LatencyStats::new();
        let mut read_latency = LatencyStats::new();
        let mut op_write_latency = LatencyStats::new();
        let mut op_read_latency = LatencyStats::new();
        let mut busy_before = vec![0u64; channels as usize];

        for event in trace {
            if let Some(h) = stop.horizon_ns {
                if event.at_ns >= h {
                    break;
                }
            }
            if let Some(m) = stop.max_events {
                if events >= m {
                    break;
                }
            }
            events += 1;
            host_span_ns = host_span_ns.max(event.at_ns);

            scheduler.op_begin();
            for (c, before) in busy_before.iter_mut().enumerate() {
                *before = striped.lane(c as u32).device().busy_ns();
            }

            for lba in event.pages() {
                let channel = striped.geometry().channel_of(lba);
                let page_before = striped.lane(channel).device().busy_ns();
                match event.op {
                    Op::Write => {
                        self.next_token += 1;
                        striped.write(lba, self.next_token)?;
                        write_latency
                            .record(striped.lane(channel).device().busy_ns() - page_before);
                    }
                    Op::Read => {
                        let _ = striped.read(lba)?;
                        read_latency
                            .record(striped.lane(channel).device().busy_ns() - page_before);
                    }
                }
            }

            for (c, &before) in busy_before.iter().enumerate() {
                let delta = striped.lane(c as u32).device().busy_ns() - before;
                if delta > 0 {
                    scheduler.submit(c as u32, delta);
                }
            }
            let op_latency = scheduler.op_complete();
            match event.op {
                Op::Write => op_write_latency.record(op_latency),
                Op::Read => op_read_latency.record(op_latency),
            }

            if first_failure.is_none() {
                for c in 0..channels {
                    if let Some(f) = striped.lane(c).device().first_failure() {
                        first_failure = Some(FirstFailure {
                            block: striped
                                .geometry()
                                .flat_block(c, f.block)
                                .try_into()
                                .expect("array block index exceeds u32"),
                            host_ns: event.at_ns,
                            total_erases: f.total_erases,
                        });
                        break;
                    }
                }
                if first_failure.is_some() && stop.at_first_failure {
                    break;
                }
            }
        }

        let erase_stats = EraseStats::from_counts(
            striped
                .lanes()
                .iter()
                .flat_map(|l| l.device().erase_counts()),
        );
        let counters = sum_counters(striped.lanes().iter().map(|l| l.counters()));
        let mut device = DeviceCounters::default();
        let mut device_busy_ns = 0u64;
        for lane in striped.lanes() {
            let c = lane.device().counters();
            device.reads += c.reads;
            device.programs += c.programs;
            device.erases += c.erases;
            device_busy_ns += lane.device().busy_ns();
        }

        Ok(StripedReport {
            layer: striped.kind(),
            channels,
            swl: striped.swl(),
            coordination: striped.coordination(),
            events,
            host_span_ns,
            first_failure,
            erase_stats,
            counters,
            device,
            device_busy_ns,
            makespan_ns: scheduler.makespan_ns(),
            channel_busy_ns: scheduler.channel_busy_ns().to_vec(),
            write_latency,
            read_latency,
            op_write_latency,
            op_read_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_trace::{SyntheticTrace, TraceEvent, WorkloadSpec};
    use nand::{CellKind, Geometry};

    fn chip() -> Geometry {
        Geometry::new(64, 8, 2048)
    }

    fn spec(endurance: u32) -> CellSpec {
        CellKind::Mlc2.spec().with_endurance(endurance)
    }

    fn striped(
        kind: LayerKind,
        channels: u32,
        swl: Option<SwlConfig>,
        coordination: SwlCoordination,
    ) -> StripedLayer {
        StripedLayer::build(
            kind,
            ChannelGeometry::new(channels, 1, chip()),
            spec(1_000_000),
            swl,
            coordination,
            &SimConfig::default(),
        )
        .unwrap()
    }

    fn trace(logical_pages: u64, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(WorkloadSpec::paper(logical_pages).with_seed(seed))
    }

    #[test]
    fn striping_round_trips_data() {
        let mut s = striped(LayerKind::Ftl, 4, None, SwlCoordination::PerChannel);
        for lba in 0..64u64 {
            s.write(lba, 7000 + lba).unwrap();
        }
        for lba in 0..64u64 {
            assert_eq!(s.read(lba).unwrap(), Some(7000 + lba));
        }
        // Consecutive pages landed on different lanes.
        for lane in s.lanes() {
            assert!(lane.counters().host_writes == 16);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = striped(LayerKind::Nftl, 2, None, SwlCoordination::PerChannel);
        let lba = s.logical_pages();
        assert!(matches!(
            s.write(lba, 1),
            Err(SimError::TraceOutOfRange { .. })
        ));
        assert!(matches!(
            s.read(lba),
            Err(SimError::TraceOutOfRange { .. })
        ));
    }

    #[test]
    fn single_channel_report_matches_plain_simulator() {
        // The C=1 bit-identity anchor: a one-channel striped run must
        // reproduce the plain single-chip run field for field.
        for kind in [LayerKind::Ftl, LayerKind::Nftl] {
            for swl in [None, Some(SwlConfig::new(100, 0).with_seed(11))] {
                let device = NandDevice::new(chip(), spec(1_000_000));
                let mut plain =
                    Layer::build(kind, device, swl, &SimConfig::default()).unwrap();
                let t = trace(plain.logical_pages(), 5);
                let plain_report = Simulator::new()
                    .run(&mut plain, t, StopCondition::events(8_000))
                    .unwrap();

                let mut s = striped(kind, 1, swl, SwlCoordination::Global);
                let t = trace(s.logical_pages(), 5);
                let striped_report = Simulator::new()
                    .run_striped(&mut s, t, StopCondition::events(8_000))
                    .unwrap();

                assert_eq!(striped_report.events, plain_report.events);
                assert_eq!(striped_report.host_span_ns, plain_report.host_span_ns);
                assert_eq!(striped_report.erase_stats, plain_report.erase_stats);
                assert_eq!(striped_report.counters, plain_report.counters);
                assert_eq!(striped_report.device, plain_report.device);
                assert_eq!(striped_report.device_busy_ns, plain_report.device_busy_ns);
                assert_eq!(striped_report.write_latency, plain_report.write_latency);
                assert_eq!(striped_report.read_latency, plain_report.read_latency);
                assert_eq!(striped_report.first_failure, plain_report.first_failure);
                // One channel: scheduled op time is fully serial.
                assert_eq!(striped_report.makespan_ns, plain_report.device_busy_ns);
                assert_eq!(striped_report.overlap_factor(), Some(1.0));
            }
        }
    }

    #[test]
    fn four_channels_overlap_writes() {
        // Single-page ops touch one lane each, so overlap needs multi-page
        // host requests: widen the page-granular trace to 8-page spans,
        // which stripe across all four channels within one op.
        let mut s = striped(LayerKind::Ftl, 4, None, SwlCoordination::PerChannel);
        let pages = s.logical_pages();
        let t = trace(pages, 9).map(move |e| e.widen(8, pages));
        let report = Simulator::new()
            .run_striped(&mut s, t, StopCondition::events(10_000))
            .unwrap();
        let overlap = report.overlap_factor().unwrap();
        assert!(
            overlap > 1.5,
            "4-channel striping must overlap busy time, got ×{overlap:.2}"
        );
        assert!(report.makespan_ns < report.device_busy_ns);
        // Scheduled op latency beats the serial 8-page sum.
        assert!(
            report.op_write_latency.mean_ns() < 8.0 * report.write_latency.mean_ns()
        );
        assert_eq!(report.channel_busy_ns.len(), 4);
        assert!(report.channel_busy_ns.iter().all(|&b| b > 0));
    }

    /// Pins every page once (cold data that GC never touches), then hammers
    /// a small hot set: erases concentrate on a few blocks per lane, so
    /// ecnt grows while fcnt stays small and unevenness provably crosses
    /// the threshold in every shard.
    fn hot_cold_trace(logical_pages: u64, rounds: u64) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        let mut at = 0u64;
        // 70% cold fill: leaves the FTL headroom to garbage-collect the
        // hot updates without running out of reclaimable space.
        for lba in 0..logical_pages * 7 / 10 {
            events.push(TraceEvent::write(at, lba));
            at += 1_000;
        }
        for _ in 0..rounds {
            for lba in 0..16u64 {
                events.push(TraceEvent::write(at, lba));
                at += 1_000;
            }
        }
        events
    }

    #[test]
    fn global_coordination_levels_wear() {
        let run = |coordination: SwlCoordination| {
            let mut s = striped(
                LayerKind::Ftl,
                4,
                Some(SwlConfig::new(32, 0).with_seed(3)),
                coordination,
            );
            let t = hot_cold_trace(s.logical_pages(), 1_500);
            Simulator::new()
                .run_striped(&mut s, t, StopCondition::default())
                .unwrap()
        };
        let global = run(SwlCoordination::Global);
        assert!(
            global.counters.swl_erases > 0,
            "global coordination must drive SWL steps"
        );
        // The wear spread stays bounded, as with per-channel SWL.
        let per_channel = run(SwlCoordination::PerChannel);
        assert!(per_channel.counters.swl_erases > 0);
        assert!(global.erase_stats.max <= 2 * per_channel.erase_stats.max.max(1));
    }

    #[test]
    fn run_striped_is_deterministic() {
        let run = || {
            let mut s = striped(
                LayerKind::Nftl,
                4,
                Some(SwlConfig::new(64, 1).with_seed(21)),
                SwlCoordination::Global,
            );
            let t = trace(s.logical_pages(), 17);
            Simulator::new()
                .run_striped(&mut s, t, StopCondition::events(15_000))
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn power_cycle_round_trips_through_mount() {
        let geometry = ChannelGeometry::new(2, 1, chip());
        let mut s = StripedLayer::build(
            LayerKind::Ftl,
            geometry,
            spec(1_000_000),
            None,
            SwlCoordination::PerChannel,
            &SimConfig::default(),
        )
        .unwrap();
        for lba in 0..40u64 {
            s.write(lba, 100 + lba).unwrap();
        }
        let devices = s.into_devices();
        let mut s = StripedLayer::mount(
            LayerKind::Ftl,
            geometry,
            devices,
            SwlCoordination::PerChannel,
            &SimConfig::default(),
        )
        .unwrap();
        for lba in 0..40u64 {
            assert_eq!(s.read(lba).unwrap(), Some(100 + lba));
        }
    }
}
