//! The trace-driven simulation loop.

use flash_trace::{Op, TraceEvent};

use crate::error::SimError;
use crate::latency::LatencyStats;
use crate::layer::TranslationLayer;
use crate::report::{FirstFailure, SimReport};

/// When to stop a run. Conditions combine with OR; the first one hit ends
/// the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StopCondition {
    /// Stop at the first block wear-out (Figure 5 runs).
    pub at_first_failure: bool,
    /// Stop when an event's host time passes this horizon (Table 4 runs).
    pub horizon_ns: Option<u64>,
    /// Stop after this many trace events.
    pub max_events: Option<u64>,
}

impl StopCondition {
    /// Run until the first wear-out.
    pub fn first_failure() -> Self {
        Self {
            at_first_failure: true,
            ..Self::default()
        }
    }

    /// Run until host time reaches `horizon_ns`.
    pub fn horizon(horizon_ns: u64) -> Self {
        Self {
            horizon_ns: Some(horizon_ns),
            ..Self::default()
        }
    }

    /// Run for a fixed number of events.
    pub fn events(max_events: u64) -> Self {
        Self {
            max_events: Some(max_events),
            ..Self::default()
        }
    }

    /// Additionally stop at the first wear-out (builder style).
    pub fn or_first_failure(mut self) -> Self {
        self.at_first_failure = true;
        self
    }
}

/// Trace-driven simulator.
///
/// Writes carry a monotonically increasing data token so correctness checks
/// can verify version ordering; reads exercise the lookup path (misses on
/// never-written pages are fine and are not errors).
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    pub(crate) next_token: u64,
}

impl Simulator {
    /// A fresh simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds `trace` into `layer` until `stop` triggers or the trace ends.
    ///
    /// # Errors
    ///
    /// Propagates layer failures and rejects trace events outside the
    /// layer's logical space.
    pub fn run<L, I>(
        &mut self,
        layer: &mut L,
        trace: I,
        stop: StopCondition,
    ) -> Result<SimReport, SimError>
    where
        L: TranslationLayer,
        I: IntoIterator<Item = TraceEvent>,
    {
        let logical_pages = layer.logical_pages();
        let mut events = 0u64;
        let mut host_span_ns = 0u64;
        let mut first_failure: Option<FirstFailure> = None;
        let mut write_latency = LatencyStats::new();
        let mut read_latency = LatencyStats::new();

        for event in trace {
            if let Some(h) = stop.horizon_ns {
                if event.at_ns >= h {
                    break;
                }
            }
            if let Some(m) = stop.max_events {
                if events >= m {
                    break;
                }
            }
            events += 1;
            host_span_ns = host_span_ns.max(event.at_ns);

            for lba in event.pages() {
                if lba >= logical_pages {
                    return Err(SimError::TraceOutOfRange { lba, logical_pages });
                }
                let busy_before = layer.device().busy_ns();
                match event.op {
                    Op::Write => {
                        self.next_token += 1;
                        layer.write(lba, self.next_token)?;
                        write_latency.record(layer.device().busy_ns() - busy_before);
                    }
                    Op::Read => {
                        let _ = layer.read(lba)?;
                        read_latency.record(layer.device().busy_ns() - busy_before);
                    }
                }
            }

            if first_failure.is_none() {
                if let Some(f) = layer.device().first_failure() {
                    first_failure = Some(FirstFailure {
                        block: f.block,
                        host_ns: event.at_ns,
                        total_erases: f.total_erases,
                    });
                    if stop.at_first_failure {
                        break;
                    }
                }
            }
        }

        let device = layer.device();
        Ok(SimReport {
            layer: layer.kind(),
            swl: layer.swl().map(|s| (s.config().threshold, s.config().k)),
            events,
            host_span_ns,
            first_failure,
            erase_stats: device.erase_stats(),
            counters: layer.counters(),
            device: device.counters(),
            device_busy_ns: device.busy_ns(),
            write_latency,
            read_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, LayerKind, SimConfig};
    use flash_trace::{SyntheticTrace, WorkloadSpec};
    use nand::{CellKind, Geometry, NandDevice};

    fn build(kind: LayerKind, endurance: u32) -> Layer {
        let device = NandDevice::new(
            Geometry::new(64, 8, 2048),
            CellKind::Mlc2.spec().with_endurance(endurance),
        );
        Layer::build(kind, device, None, &SimConfig::default()).unwrap()
    }

    fn trace(layer: &Layer, seed: u64) -> SyntheticTrace {
        SyntheticTrace::new(WorkloadSpec::paper(layer.logical_pages()).with_seed(seed))
    }

    #[test]
    fn event_budget_respected() {
        let mut layer = build(LayerKind::Ftl, 1_000_000);
        let t = trace(&layer, 1);
        let report = Simulator::new()
            .run(&mut layer, t, StopCondition::events(5000))
            .unwrap();
        assert_eq!(report.events, 5000);
        assert!(report.counters.host_writes > 0);
        assert!(report.counters.host_reads > 0);
    }

    #[test]
    fn horizon_respected() {
        let mut layer = build(LayerKind::Nftl, 1_000_000);
        let t = trace(&layer, 2);
        let horizon = 3_600 * 1_000_000_000u64; // one hour
        let report = Simulator::new()
            .run(&mut layer, t, StopCondition::horizon(horizon))
            .unwrap();
        assert!(report.host_span_ns < horizon);
        assert!(report.events > 0);
    }

    #[test]
    fn first_failure_stops_run() {
        let mut layer = build(LayerKind::Ftl, 12);
        let t = trace(&layer, 3);
        let report = Simulator::new()
            .run(&mut layer, t, StopCondition::first_failure())
            .unwrap();
        let ff = report.first_failure.expect("tiny endurance must fail");
        assert!(ff.years() > 0.0);
        assert!(report.erase_stats.max >= 12);
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            let mut layer = build(LayerKind::Nftl, 1_000_000);
            let t = trace(&layer, 7);
            Simulator::new()
                .run(&mut layer, t, StopCondition::events(20_000))
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn out_of_range_event_rejected() {
        let mut layer = build(LayerKind::Ftl, 1_000_000);
        let events = vec![TraceEvent::write(0, layer.logical_pages())];
        let err = Simulator::new()
            .run(&mut layer, events, StopCondition::default())
            .unwrap_err();
        assert!(matches!(err, SimError::TraceOutOfRange { .. }));
    }

    #[test]
    fn finite_trace_ends_run() {
        let mut layer = build(LayerKind::Ftl, 1_000_000);
        let events = vec![TraceEvent::write(0, 1), TraceEvent::read(10, 1)];
        let report = Simulator::new()
            .run(&mut layer, events, StopCondition::default())
            .unwrap();
        assert_eq!(report.events, 2);
        assert_eq!(report.counters.host_writes, 1);
        assert_eq!(report.counters.host_reads, 1);
    }
}
