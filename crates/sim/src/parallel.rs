//! Deterministic fan-out of independent experiment runs across threads.
//!
//! Every sweep point of [`crate::experiments`] is an isolated simulation:
//! it builds its own chip and derives its own trace from fixed seeds, so
//! points can run concurrently and still produce bit-identical reports.
//! [`run_indexed`] distributes point indices over `std::thread::scope`
//! workers via an atomic work-stealing counter and returns the results in
//! index order, so callers observe exactly the serial output regardless of
//! scheduling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the sweep worker count.
pub const THREADS_ENV: &str = "SWL_SWEEP_THREADS";

/// Number of worker threads sweeps will use: `SWL_SWEEP_THREADS` when set
/// to a positive integer, else the machine's available parallelism.
pub fn sweep_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `task(0..tasks)` across [`sweep_threads`] scoped workers and
/// returns the results in index order.
///
/// `task` must be a pure function of its index for the output to be
/// deterministic — which holds for experiment runs, as each builds all of
/// its state from per-point seeds. With one worker (or one task) this
/// degenerates to a plain serial loop.
pub fn run_indexed<T, F>(tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_on(sweep_threads(), tasks, task)
}

/// [`run_indexed`] with an explicit worker count (exposed for tests and
/// benchmarks that compare serial against parallel execution).
pub fn run_indexed_on<T, F>(threads: usize, tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(tasks);
    if threads <= 1 {
        return (0..tasks).map(task).collect();
    }
    let next = AtomicUsize::new(0);
    let task = &task;
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        done.push((i, task(i)));
                    }
                    done
                })
            })
            .collect();
        for worker in workers {
            for (i, result) in worker.join().expect("sweep worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every task index ran exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 7] {
            let out = run_indexed_on(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(run_indexed_on(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed_on(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(run_indexed_on(16, 3, |i| i), vec![0, 1, 2]);
    }
}
