//! Deterministic fan-out of independent experiment runs across threads.
//!
//! Every sweep point of [`crate::experiments`] is an isolated simulation:
//! it builds its own chip and derives its own trace from fixed seeds, so
//! points can run concurrently and still produce bit-identical reports.
//! [`run_indexed`] distributes point indices over `std::thread::scope`
//! workers via an atomic work-stealing counter and returns the results in
//! index order, so callers observe exactly the serial output regardless of
//! scheduling.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the sweep worker count.
pub const THREADS_ENV: &str = "SWL_SWEEP_THREADS";

/// Number of worker threads sweeps will use: `SWL_SWEEP_THREADS` when set
/// to a positive integer, else the machine's available parallelism.
pub fn sweep_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `task(0..tasks)` across [`sweep_threads`] scoped workers and
/// returns the results in index order.
///
/// `task` must be a pure function of its index for the output to be
/// deterministic — which holds for experiment runs, as each builds all of
/// its state from per-point seeds. With one worker (or one task) this
/// degenerates to a plain serial loop.
///
/// # Panics
///
/// A panicking task panics the calling thread (not an opaque worker
/// `join` failure), with the task index in the message. Sweeps that know
/// their grid use [`run_indexed_labeled`] so the message names the failing
/// grid point.
pub fn run_indexed<T, F>(tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_labeled_on(sweep_threads(), tasks, |i| format!("task #{i}"), task)
}

/// [`run_indexed`] with an explicit worker count (exposed for tests and
/// benchmarks that compare serial against parallel execution).
pub fn run_indexed_on<T, F>(threads: usize, tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_labeled_on(threads, tasks, |i| format!("task #{i}"), task)
}

/// [`run_indexed`] with a `label` naming each task for panic propagation:
/// when `task(i)` panics, the coordinator re-panics with `label(i)` and the
/// original payload in the message, so a failing sweep names its grid
/// point — e.g. `(T=100, k=2)` — instead of an anonymous worker thread.
///
/// When several tasks panic, the lowest index wins (matching the "first
/// failing grid point in grid order" error contract of the sweeps).
pub fn run_indexed_labeled<T, F, L>(tasks: usize, label: L, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    L: Fn(usize) -> String,
{
    run_indexed_labeled_on(sweep_threads(), tasks, label, task)
}

/// [`run_indexed_labeled`] with an explicit worker count.
pub fn run_indexed_labeled_on<T, F, L>(threads: usize, tasks: usize, label: L, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    L: Fn(usize) -> String,
{
    let threads = threads.max(1).min(tasks);
    let run_one = |i: usize| catch_unwind(AssertUnwindSafe(|| task(i)));
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    let note_panic =
        |first: &mut Option<(usize, Box<dyn std::any::Any + Send>)>,
         i: usize,
         payload: Box<dyn std::any::Any + Send>| {
            if first.as_ref().is_none_or(|(j, _)| i < *j) {
                *first = Some((i, payload));
            }
        };
    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            match run_one(i) {
                Ok(result) => *slot = Some(result),
                Err(payload) => {
                    note_panic(&mut first_panic, i, payload);
                    break;
                }
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let run_one = &run_one;
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            done.push((i, run_one(i)));
                        }
                        done
                    })
                })
                .collect();
            for worker in workers {
                for (i, result) in worker.join().expect("sweep worker died outside a task") {
                    match result {
                        Ok(result) => slots[i] = Some(result),
                        Err(payload) => note_panic(&mut first_panic, i, payload),
                    }
                }
            }
        });
    }
    if let Some((i, payload)) = first_panic {
        panic!("sweep point {} panicked: {}", label(i), payload_text(&*payload));
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every task index ran exactly once"))
        .collect()
}

/// Best-effort rendering of a panic payload (`&str` and `String` cover
/// everything `panic!` produces in practice).
fn payload_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 7] {
            let out = run_indexed_on(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(run_indexed_on(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed_on(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(run_indexed_on(16, 3, |i| i), vec![0, 1, 2]);
    }

    /// Runs `f` with panic output silenced (the hook is process-global, so
    /// the two panic-propagation tests serialise on a lock).
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static HOOK_LOCK: Mutex<()> = Mutex::new(());
        let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(prev);
        drop(guard);
        result
    }

    #[test]
    fn panics_name_the_failing_grid_point() {
        for threads in [1, 4] {
            let caught = with_quiet_panics(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    run_indexed_labeled_on(
                        threads,
                        4,
                        |i| {
                            if i == 0 {
                                "baseline".to_string()
                            } else {
                                format!("(T={}, k={})", 100 * i, i - 1)
                            }
                        },
                        |i| {
                            if i == 2 {
                                panic!("simulated failure");
                            }
                            i
                        },
                    )
                }))
            })
            .expect_err("the panicking task must propagate");
            let text = caught
                .downcast_ref::<String>()
                .expect("re-panic carries a formatted message")
                .clone();
            assert!(text.contains("(T=200, k=1)"), "missing label: {text}");
            assert!(text.contains("simulated failure"), "missing payload: {text}");
        }
    }

    #[test]
    fn lowest_failing_index_wins() {
        let caught = with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                run_indexed_labeled_on(
                    4,
                    8,
                    |i| format!("point {i}"),
                    |i| {
                        if i % 2 == 1 {
                            panic!("odd index {i}");
                        }
                        i
                    },
                )
            }))
        })
        .expect_err("panics must propagate");
        let text = caught.downcast_ref::<String>().unwrap().clone();
        assert!(text.contains("point 1"), "lowest index must win: {text}");
    }
}
