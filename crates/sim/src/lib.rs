//! # `flash-sim` — simulation engine and experiment presets
//!
//! Drives a host trace ([`flash_trace`]) into a translation layer
//! ([`ftl`] or [`nftl`], optionally wearing the [`swl_core`] leveler) on a
//! simulated chip ([`nand`]), and measures what the paper measures:
//!
//! - **first failure time** — host years until any block exceeds its
//!   endurance (Figure 5);
//! - **erase-count distribution** — average / standard deviation / maximum
//!   per-block erase counts (Table 4);
//! - **extra overheads** — increased ratios of block erases and live-page
//!   copyings of a `+SWL` run over its baseline (Figures 6 and 7).
//!
//! The [`experiments`] module packages the full parameter sweeps behind the
//! paper's figures; the `flash-bench` crate prints them as tables.
//!
//! ## Example
//!
//! ```
//! use flash_sim::{Layer, LayerKind, SimConfig, Simulator, StopCondition, TranslationLayer};
//! use flash_trace::{SyntheticTrace, WorkloadSpec};
//! use nand::{CellKind, Geometry, NandDevice};
//!
//! # fn main() -> Result<(), flash_sim::SimError> {
//! let device = NandDevice::new(
//!     Geometry::new(64, 16, 2048),
//!     CellKind::Mlc2.spec().with_endurance(2_000),
//! );
//! let mut layer = Layer::build(LayerKind::Ftl, device, None, &SimConfig::default())?;
//! let trace = SyntheticTrace::new(WorkloadSpec::paper(layer.logical_pages()).with_seed(1));
//!
//! let report = Simulator::new().run(&mut layer, trace, StopCondition::events(20_000))?;
//! assert_eq!(report.events, 20_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
mod error;
pub mod experiments;
mod latency;
mod layer;
pub mod parallel;
mod report;
pub mod sched;
pub mod service;
mod simulator;
mod striped;

pub use engine::{Engine, EngineConfig, EngineMetricsHandle, EngineRun, EngineSink};
pub use error::SimError;
pub use latency::LatencyStats;
pub use layer::{Layer, LayerCounters, LayerKind, SimConfig, TranslationLayer};
pub use report::{FirstFailure, SimReport};
pub use sched::{ChannelScheduler, Completion, EventQueue};
pub use service::{Service, ServiceClient, ServiceConfig, ServiceRun, ServiceServer};
pub use simulator::{Simulator, StopCondition};
pub use striped::{StripedLayer, StripedReport, SwlCoordination};
