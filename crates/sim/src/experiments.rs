//! Preset experiments reproducing the paper's figures and tables.
//!
//! Each experiment is parameterised by an [`ExperimentScale`]. The paper's
//! full setup (`ExperimentScale::paper`: 1 GiB MLC×2, 10 000-cycle
//! endurance) takes hours of CPU per sweep point because first failures
//! occur only after hundreds of millions of host writes; the scaled presets
//! shrink the chip and the endurance proportionally, which preserves the
//! *ratios* the paper's figures compare (wear accumulates linearly in both
//! dimensions) while finishing in seconds to minutes. `EXPERIMENTS.md` in
//! the repository root records scaled-vs-paper numbers side by side.

use flash_telemetry::Sink;
use flash_trace::{Op, SegmentResampler, WorkloadSpec};
use nand::{CellKind, ChannelGeometry, Geometry, NandDevice, WearPolicy};
use swl_core::counting::CountingLeveler;
use swl_core::SwlConfig;

use crate::error::SimError;
use crate::layer::{Layer, LayerKind, SimConfig, TranslationLayer};
use crate::report::SimReport;
use crate::simulator::{Simulator, StopCondition};
use crate::striped::{StripedLayer, StripedReport, SwlCoordination};

/// Nanoseconds per year (re-exported for bench binaries).
pub const NANOS_PER_YEAR: f64 = crate::report::NANOS_PER_YEAR;

/// The unevenness thresholds swept in Figures 5–7.
pub const PAPER_THRESHOLDS: [u64; 4] = [100, 400, 700, 1000];

/// The BET group factors swept in Figures 5–7.
pub const PAPER_KS: [u32; 4] = [0, 1, 2, 3];

/// Chip size / endurance / seed of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Blocks on the chip.
    pub blocks: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Erase cycles before a block wears out.
    pub endurance: u32,
    /// Master seed for workload generation.
    pub seed: u64,
}

impl ExperimentScale {
    /// Tiny setup for unit tests and smoke runs (seconds).
    pub fn quick() -> Self {
        Self {
            blocks: 64,
            pages_per_block: 32,
            endurance: 256,
            seed: 42,
        }
    }

    /// Default bench setup: 1/4-size chip, 1/20 endurance — minutes per
    /// sweep, same qualitative shape as the paper.
    pub fn scaled() -> Self {
        Self {
            blocks: 1024,
            pages_per_block: 128,
            endurance: 512,
            seed: 42,
        }
    }

    /// The paper's full setup: 1 GiB MLC×2 (4096 × 128 × 2 KiB), 10 000
    /// cycles. Expect very long runtimes.
    pub fn paper() -> Self {
        Self {
            blocks: 4096,
            pages_per_block: 128,
            endurance: 10_000,
            seed: 42,
        }
    }

    /// Builds the chip for this scale.
    pub fn device(&self) -> NandDevice {
        NandDevice::new(
            Geometry::new(self.blocks, self.pages_per_block, 2048),
            CellKind::Mlc2.spec().with_endurance(self.endurance),
        )
    }

    /// Hard event cap used as a safety net in first-failure runs: enough
    /// writes to erase every block to its endurance several times over.
    fn event_cap(&self) -> u64 {
        u64::from(self.blocks) * u64::from(self.pages_per_block) * u64::from(self.endurance) * 4
    }

    /// Maps one of the paper's threshold values onto this scale.
    ///
    /// The unevenness threshold `T` fires SWL-Procedure when the average
    /// erase count per touched block set reaches `T`, so its meaningful
    /// range is relative to the endurance: the paper sweeps
    /// `T ∈ [100, 1000]` against 10 000 cycles (1–10 % of a lifetime).
    /// Scaled runs must shrink `T` by the same factor as the endurance or
    /// SWL would first trigger when blocks are already nearly dead.
    pub fn scaled_threshold(&self, paper_t: u64) -> u64 {
        let ratio = f64::from(self.endurance) / 10_000.0;
        (((paper_t as f64) * ratio).round() as u64).max(1)
    }

    /// Builds the SWL configuration for a paper `(T, k)` grid point.
    ///
    /// Besides [`ExperimentScale::scaled_threshold`], the threshold is
    /// clamped to `2^k + 1`: SWL-Procedure is only stable when `T` exceeds
    /// the blocks-per-flag, because each cleaned set adds `2^k` to `ecnt`
    /// but at most 1 to `fcnt` — with `T ≤ 2^k` every activation cascades
    /// into a full-chip sweep. The paper's own sweep (`T ≥ 100`, `k ≤ 3`)
    /// always satisfies the condition; aggressive down-scaling must
    /// preserve it.
    pub fn swl_config(&self, paper_t: u64, k: u32) -> SwlConfig {
        let threshold = self.scaled_threshold(paper_t).max((1u64 << k) + 1);
        SwlConfig::new(threshold, k).with_seed(self.seed)
    }
}

/// The paper-calibrated workload over a layer's logical space.
pub fn paper_workload(logical_pages: u64, seed: u64) -> WorkloadSpec {
    WorkloadSpec::paper(logical_pages).with_seed(seed)
}

fn build(
    kind: LayerKind,
    swl: Option<SwlConfig>,
    scale: &ExperimentScale,
) -> Result<Layer, SimError> {
    Layer::build(kind, scale.device(), swl, &SimConfig::default())
}

/// The full experiment input: a one-time fill of the footprint (ageing the
/// device as a month of use would) followed by the unlimited resampled
/// steady-state trace.
fn unlimited_trace<S: Sink>(
    layer: &Layer<S>,
    scale: &ExperimentScale,
) -> impl Iterator<Item = flash_trace::TraceEvent> {
    let spec = paper_workload(layer.logical_pages(), scale.seed);
    let fill = spec.fill_events();
    fill.chain(SegmentResampler::from_spec(
        spec,
        scale.seed.wrapping_mul(0x9E37_79B9),
    ))
}

/// Runs one configuration until the first block wears out (Figure 5).
///
/// # Errors
///
/// Propagates layer failures.
pub fn first_failure_run(
    kind: LayerKind,
    swl: Option<SwlConfig>,
    scale: &ExperimentScale,
) -> Result<SimReport, SimError> {
    first_failure_run_with(kind, swl, scale, |spec| spec)
}

/// Like [`first_failure_run`], with a hook to adjust the workload — the
/// entry point for ablation and robustness studies (different frozen
/// fractions, placement granularities, hot-set shapes, ...).
///
/// # Errors
///
/// Propagates layer failures.
pub fn first_failure_run_with(
    kind: LayerKind,
    swl: Option<SwlConfig>,
    scale: &ExperimentScale,
    tweak: impl FnOnce(WorkloadSpec) -> WorkloadSpec,
) -> Result<SimReport, SimError> {
    let mut layer = build(kind, swl, scale)?;
    let spec = tweak(paper_workload(layer.logical_pages(), scale.seed));
    let trace = spec.fill_events().chain(SegmentResampler::from_spec(
        spec.clone(),
        scale.seed.wrapping_mul(0x9E37_79B9),
    ));
    let stop = StopCondition {
        at_first_failure: true,
        horizon_ns: None,
        max_events: Some(scale.event_cap()),
    };
    Simulator::new().run(&mut layer, trace, stop)
}

/// One point of the Figure 5 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FailurePoint {
    /// `None` for the baseline (no SWL).
    pub threshold: Option<u64>,
    /// BET group factor (0 for the baseline).
    pub k: u32,
    /// First-failure time in host years (`None` if the event cap was hit).
    pub years: Option<f64>,
    /// The full report.
    pub report: SimReport,
}

/// The Figure 5 sweep for one layer: baseline plus every `(T, k)` pair.
///
/// `thresholds` are the *paper's* `T` values; each is mapped through
/// [`ExperimentScale::scaled_threshold`] before running, and reported back
/// unscaled in [`FailurePoint::threshold`].
///
/// Grid points are independent simulations, so they fan out over
/// [`crate::parallel::sweep_threads`] workers; the returned points are
/// bit-identical to a serial sweep (deterministic per-point seeds, results
/// gathered in grid order).
///
/// # Errors
///
/// Propagates layer failures (the first failing grid point in grid order).
pub fn first_failure_sweep(
    kind: LayerKind,
    scale: &ExperimentScale,
    thresholds: &[u64],
    ks: &[u32],
) -> Result<Vec<FailurePoint>, SimError> {
    let mut grid: Vec<(Option<u64>, u32)> = vec![(None, 0)];
    for &t in thresholds {
        for &k in ks {
            grid.push((Some(t), k));
        }
    }
    let reports = crate::parallel::run_indexed_labeled(
        grid.len(),
        |i| match grid[i] {
            (None, _) => "baseline".to_string(),
            (Some(t), k) => format!("(T={t}, k={k})"),
        },
        |i| {
            let (t, k) = grid[i];
            let config = t.map(|t| scale.swl_config(t, k));
            first_failure_run(kind, config, scale)
        },
    );
    let mut points = Vec::with_capacity(grid.len());
    for ((threshold, k), report) in grid.into_iter().zip(reports) {
        let report = report?;
        points.push(FailurePoint {
            threshold,
            k,
            years: report.first_failure.map(|f| f.years()),
            report,
        });
    }
    Ok(points)
}

/// Runs one configuration with a telemetry sink riding on the device,
/// observing the full event stream (host ops, GC picks, cause-attributed
/// erases and copies, SWL invocations, interval resets). The workload and
/// stop handling are identical to the uninstrumented experiment runs —
/// telemetry never perturbs behaviour — and the sink is handed back with
/// the report (e.g. a [`flash_telemetry::JsonlSink`] ready to finish, or a
/// [`flash_telemetry::MetricsAggregator`] full of snapshots).
///
/// # Errors
///
/// Propagates layer failures.
pub fn instrumented_run<S: Sink>(
    kind: LayerKind,
    swl: Option<SwlConfig>,
    scale: &ExperimentScale,
    sink: S,
    stop: StopCondition,
) -> Result<(SimReport, S), SimError> {
    let device = scale.device().with_sink(sink);
    let mut layer = Layer::build(kind, device, swl, &SimConfig::default())?;
    let trace = unlimited_trace(&layer, scale);
    let report = Simulator::new().run(&mut layer, trace, stop)?;
    Ok((report, layer.into_device().into_sink()))
}

/// Runs one configuration to a fixed host-time horizon with a
/// [`flash_telemetry::MetricsAggregator`] riding on the device, so the run
/// comes back with full causal-span attribution: per-cause latency
/// histograms (host / gc / swl / merge), per-op write amplification, and a
/// span-structure health check, alongside the ordinary [`SimReport`].
///
/// The aggregator's per-op histograms match the report's own
/// [`SimReport::write_latency`] / [`SimReport::read_latency`] **bit-exactly**
/// — both bracket the same `busy_ns` window — which is the gate the
/// attribution tests pin.
///
/// # Errors
///
/// Propagates layer failures.
pub fn attributed_horizon_run(
    kind: LayerKind,
    swl: Option<SwlConfig>,
    scale: &ExperimentScale,
    horizon_ns: u64,
) -> Result<(SimReport, flash_telemetry::MetricsAggregator), SimError> {
    instrumented_run(
        kind,
        swl,
        scale,
        flash_telemetry::MetricsAggregator::new(),
        StopCondition::horizon(horizon_ns),
    )
}

/// Runs one configuration to a fixed host-time horizon (Table 4 and the
/// Figure 6/7 overhead measurements).
///
/// # Errors
///
/// Propagates layer failures.
pub fn horizon_run(
    kind: LayerKind,
    swl: Option<SwlConfig>,
    scale: &ExperimentScale,
    horizon_ns: u64,
) -> Result<SimReport, SimError> {
    let mut layer = build(kind, swl, scale)?;
    let trace = unlimited_trace(&layer, scale);
    Simulator::new().run(&mut layer, trace, StopCondition::horizon(horizon_ns))
}

/// One point of the Figure 6/7 sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadPoint {
    /// Unevenness threshold `T`.
    pub threshold: u64,
    /// BET group factor `k`.
    pub k: u32,
    /// Increased ratio of block erases over the baseline (Figure 6),
    /// e.g. `0.012` for +1.2 %.
    pub erase_overhead: f64,
    /// Increased ratio of live-page copies over the baseline (Figure 7).
    pub copy_overhead: f64,
    /// The full report of the `+SWL` run.
    pub report: SimReport,
}

/// The Figure 6/7 sweep for one layer: every `(T, k)` pair measured against
/// a shared baseline run of the same horizon. `thresholds` are the paper's
/// values, mapped through [`ExperimentScale::scaled_threshold`].
///
/// The baseline and all grid points fan out over
/// [`crate::parallel::sweep_threads`] workers; results are bit-identical
/// to a serial sweep.
///
/// # Errors
///
/// Propagates layer failures (baseline first, then grid order).
pub fn overhead_sweep(
    kind: LayerKind,
    scale: &ExperimentScale,
    thresholds: &[u64],
    ks: &[u32],
    horizon_ns: u64,
) -> Result<(SimReport, Vec<OverheadPoint>), SimError> {
    // Index 0 is the baseline; the overhead ratios are computed after the
    // fan-out, once the baseline report is in hand.
    let mut grid: Vec<Option<(u64, u32)>> = vec![None];
    for &t in thresholds {
        for &k in ks {
            grid.push(Some((t, k)));
        }
    }
    let mut reports = crate::parallel::run_indexed_labeled(
        grid.len(),
        |i| match grid[i] {
            None => "baseline".to_string(),
            Some((t, k)) => format!("(T={t}, k={k})"),
        },
        |i| match grid[i] {
            None => horizon_run(kind, None, scale, horizon_ns),
            Some((t, k)) => horizon_run(kind, Some(scale.swl_config(t, k)), scale, horizon_ns),
        },
    )
    .into_iter();
    let baseline = reports.next().expect("baseline slot")?;
    let mut points = Vec::with_capacity(grid.len() - 1);
    for (config, report) in grid[1..].iter().zip(reports) {
        let (t, k) = config.expect("grid tail holds (T, k) pairs");
        let report = report?;
        let erase_overhead = report.erase_overhead_vs(&baseline).unwrap_or(0.0);
        let copy_overhead = report.copy_overhead_vs(&baseline).unwrap_or(0.0);
        points.push(OverheadPoint {
            threshold: t,
            k,
            erase_overhead,
            copy_overhead,
            report,
        });
    }
    Ok((baseline, points))
}

/// Result of a device-lifetime run (an extension beyond the paper, enabled
/// by bad-block management): blocks that wear out are retired and the run
/// continues until the layer can no longer absorb writes.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// Host years until the first write was refused.
    pub years: f64,
    /// Host writes absorbed over the whole device life.
    pub host_writes: u64,
    /// Blocks retired by bad-block management by end of life.
    pub retired_blocks: u64,
    /// When the *first* block wore out, for comparison with Figure 5.
    pub first_failure_years: Option<f64>,
    /// Total erases absorbed.
    pub total_erases: u64,
}

/// Runs one configuration with bad-block management until the device can
/// no longer serve writes, measuring usable lifetime instead of
/// first-failure time.
///
/// # Errors
///
/// Propagates unexpected layer failures (end-of-life conditions —
/// reclamation failure or an exhausted free pool — terminate the run
/// normally).
pub fn lifetime_run(
    kind: LayerKind,
    swl: Option<SwlConfig>,
    scale: &ExperimentScale,
) -> Result<LifetimeReport, SimError> {
    let device = scale.device().with_wear_policy(WearPolicy::FailWornBlocks);
    let mut layer = Layer::build(kind, device, swl, &SimConfig::default())?;
    let spec = paper_workload(layer.logical_pages(), scale.seed);
    let trace = spec.fill_events().chain(SegmentResampler::from_spec(
        spec.clone(),
        scale.seed.wrapping_mul(0x9E37_79B9),
    ));

    let mut token = 0u64;
    let mut end_ns = 0u64;
    let mut first_failure_ns: Option<u64> = None;
    let cap = scale.event_cap();
    let mut events = 0u64;
    'run: for event in trace {
        events += 1;
        if events > cap {
            break;
        }
        end_ns = end_ns.max(event.at_ns);
        for lba in event.pages() {
            match event.op {
                Op::Write => {
                    token += 1;
                    match layer.write(lba, token) {
                        Ok(()) => {}
                        Err(
                            SimError::Ftl(
                                ftl::FtlError::NoReclaimableSpace | ftl::FtlError::FreeExhausted,
                            )
                            | SimError::Nftl(
                                nftl::NftlError::NoReclaimableSpace
                                | nftl::NftlError::FreeExhausted,
                            ),
                        ) => break 'run,
                        Err(other) => return Err(other),
                    }
                }
                Op::Read => {
                    let _ = layer.read(lba)?;
                }
            }
        }
        if first_failure_ns.is_none() {
            if let Some(f) = layer.device().first_failure() {
                let _ = f;
                first_failure_ns = Some(event.at_ns);
            }
        }
    }

    let counters = layer.counters();
    Ok(LifetimeReport {
        years: end_ns as f64 / NANOS_PER_YEAR,
        host_writes: counters.host_writes,
        retired_blocks: counters.retired_blocks,
        first_failure_years: first_failure_ns.map(|ns| ns as f64 / NANOS_PER_YEAR),
        total_erases: counters.total_erases(),
    })
}

/// Runs a first-failure experiment under the *counting* wear leveler — the
/// full-erase-count-table strawman ([`CountingLeveler`]) the BET design
/// competes against. Every `check_every` host writes the leveler inspects
/// the spread and force-recycles the least-worn block while it exceeds
/// `margin`.
///
/// # Errors
///
/// Propagates layer failures.
pub fn counting_wl_run(
    kind: LayerKind,
    margin: u32,
    check_every: u64,
    scale: &ExperimentScale,
) -> Result<SimReport, SimError> {
    let mut layer = build(kind, None, scale)?;
    let spec = paper_workload(layer.logical_pages(), scale.seed);
    let trace = spec.fill_events().chain(SegmentResampler::from_spec(
        spec.clone(),
        scale.seed.wrapping_mul(0x9E37_79B9),
    ));

    let mut token = 0u64;
    let mut events = 0u64;
    let mut host_span_ns = 0u64;
    let mut writes_since_check = 0u64;
    let cap = scale.event_cap();
    let mut first_failure = None;

    for event in trace {
        events += 1;
        if events > cap {
            break;
        }
        host_span_ns = host_span_ns.max(event.at_ns);
        for lba in event.pages() {
            match event.op {
                Op::Write => {
                    token += 1;
                    layer.write(lba, token)?;
                    writes_since_check += 1;
                }
                Op::Read => {
                    let _ = layer.read(lba)?;
                }
            }
        }
        if writes_since_check >= check_every {
            writes_since_check = 0;
            let mut wl = CountingLeveler::from_counts(&layer.device().erase_counts(), margin);
            // Level fully: recycle least-worn blocks until the spread drops
            // under the margin (bounded by the block count per check).
            let mut guard = 0u32;
            while let Some(victim) = wl.pick_victim() {
                let erased = layer.force_recycle(victim, 1)?;
                guard += 1;
                if erased == 0 || guard > scale.blocks {
                    break;
                }
                wl = CountingLeveler::from_counts(&layer.device().erase_counts(), margin);
            }
        }
        if first_failure.is_none() {
            if let Some(f) = layer.device().first_failure() {
                first_failure = Some(crate::report::FirstFailure {
                    block: f.block,
                    host_ns: event.at_ns,
                    total_erases: f.total_erases,
                });
                break;
            }
        }
    }

    let device = layer.device();
    Ok(SimReport {
        layer: layer.kind(),
        swl: None,
        events,
        host_span_ns,
        first_failure,
        erase_stats: device.erase_stats(),
        counters: layer.counters(),
        device: device.counters(),
        device_busy_ns: device.busy_ns(),
        write_latency: crate::LatencyStats::new(),
        read_latency: crate::LatencyStats::new(),
    })
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Row label, e.g. `"FTL + SWL + k=0 + T=100"`.
    pub label: String,
    /// Average per-block erase count.
    pub avg: f64,
    /// Standard deviation of per-block erase counts.
    pub dev: f64,
    /// Maximum per-block erase count.
    pub max: u64,
}

/// Regenerates Table 4: erase-count statistics for FTL and NFTL, baseline
/// and the four `(k, T)` corner configurations, over a fixed horizon.
///
/// All rows (both layers, baselines included) fan out over
/// [`crate::parallel::sweep_threads`] workers; the rows come back in the
/// serial order.
///
/// # Errors
///
/// Propagates layer failures (the first failing row in row order).
pub fn table4(
    scale: &ExperimentScale,
    horizon_ns: u64,
    configs: &[(u32, u64)],
) -> Result<Vec<Table4Row>, SimError> {
    let mut tasks: Vec<(LayerKind, Option<(u32, u64)>)> = Vec::new();
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        tasks.push((kind, None));
        for &(k, t) in configs {
            tasks.push((kind, Some((k, t))));
        }
    }
    let reports = crate::parallel::run_indexed_labeled(
        tasks.len(),
        |i| match tasks[i] {
            (kind, None) => format!("{kind} baseline"),
            (kind, Some((k, t))) => format!("{kind} (T={t}, k={k})"),
        },
        |i| {
            let (kind, config) = tasks[i];
            let swl = config.map(|(k, t)| scale.swl_config(t, k));
            horizon_run(kind, swl, scale, horizon_ns)
        },
    );
    let mut rows = Vec::with_capacity(tasks.len());
    for ((kind, config), report) in tasks.into_iter().zip(reports) {
        let report = report?;
        let label = match config {
            None => kind.to_string(),
            Some((k, t)) => format!("{kind} + SWL + k={k} + T={t}"),
        };
        rows.push(Table4Row {
            label,
            avg: report.erase_stats.mean,
            dev: report.erase_stats.std_dev,
            max: report.erase_stats.max,
        });
    }
    Ok(rows)
}

/// The `(k, T)` corner configurations of Table 4.
pub const TABLE4_CONFIGS: [(u32, u64); 4] = [(0, 100), (0, 1000), (3, 100), (3, 1000)];

/// Host request size (pages) used by the channel-scaling experiment. Eight
/// 2 KiB pages model a 16 KiB host request — wide enough to stripe across
/// every lane count the sweep visits.
pub const CHANNEL_SPAN: u32 = 8;

/// One point of the channel-scaling experiment: the same total capacity and
/// workload served by `channels` lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPoint {
    /// Lane count.
    pub channels: u32,
    /// Achieved busy-time overlap (`Σ channel busy / makespan`), ×1.0 when
    /// fully serial — `None` when the run recorded no device time at all
    /// (e.g. an empty trace), in which case no overlap claim is meaningful.
    pub overlap: Option<f64>,
    /// Virtual device time to serve the whole run.
    pub makespan_ns: u64,
    /// Host pages served per virtual millisecond of device time.
    pub pages_per_ms: f64,
    /// The full striped report.
    pub report: StripedReport,
}

/// Runs one multi-channel configuration with a telemetry sink shared by
/// every lane, producing the interleaved stream (`Event::Channel` lane
/// markers included) that `swlspan` attributes per channel. The workload is
/// the [`CHANNEL_SPAN`]-page widened paper trace, exactly as in
/// [`channel_scaling`]; `channels` must divide `scale.blocks`.
///
/// # Errors
///
/// Propagates layer failures.
pub fn instrumented_striped_run<S: Sink>(
    kind: LayerKind,
    channels: u32,
    swl: Option<SwlConfig>,
    scale: &ExperimentScale,
    sink: S,
    stop: StopCondition,
) -> Result<(StripedReport, S), SimError> {
    assert!(
        channels >= 1 && scale.blocks.is_multiple_of(channels),
        "channel count {channels} must divide {} blocks",
        scale.blocks
    );
    let geometry = ChannelGeometry::new(
        channels,
        1,
        Geometry::new(scale.blocks / channels, scale.pages_per_block, 2048),
    );
    let mut striped = StripedLayer::with_sink(
        kind,
        geometry,
        CellKind::Mlc2.spec().with_endurance(scale.endurance),
        swl,
        SwlCoordination::Global,
        &SimConfig::default(),
        sink,
    )?;
    let pages = striped.logical_pages();
    let trace = SegmentResampler::from_spec(
        paper_workload(pages, scale.seed),
        scale.seed.wrapping_mul(0x9E37_79B9),
    )
    .map(move |e| e.widen(CHANNEL_SPAN, pages));
    let report = Simulator::new().run_striped(&mut striped, trace, stop)?;
    Ok((report, striped.into_sink()))
}

/// The channel-scaling sweep: fixed total capacity, workload, and SWL
/// configuration (`T`, `k`), varying only the lane count. The page-granular
/// paper workload is widened to [`CHANNEL_SPAN`]-page host requests
/// ([`flash_trace::TraceEvent::widen`]) so each op can stripe across lanes;
/// throughput and overlap then measure what the extra channels buy.
///
/// Every `channels` value must divide `scale.blocks` (lanes split the chip
/// evenly). Points fan out over [`crate::parallel::sweep_threads`] workers
/// and come back in input order, bit-identical to a serial sweep.
///
/// # Errors
///
/// Propagates layer failures (the first failing point in input order).
pub fn channel_scaling(
    kind: LayerKind,
    scale: &ExperimentScale,
    channel_counts: &[u32],
    swl: Option<(u64, u32)>,
    events: u64,
) -> Result<Vec<ChannelPoint>, SimError> {
    for &c in channel_counts {
        assert!(
            c >= 1 && scale.blocks.is_multiple_of(c),
            "channel count {c} must divide {} blocks",
            scale.blocks
        );
    }
    let reports = crate::parallel::run_indexed_labeled(
        channel_counts.len(),
        |i| format!("{}ch", channel_counts[i]),
        |i| {
            let channels = channel_counts[i];
            let geometry = ChannelGeometry::new(
                channels,
                1,
                Geometry::new(scale.blocks / channels, scale.pages_per_block, 2048),
            );
            let config = swl.map(|(t, k)| scale.swl_config(t, k));
            let mut striped = StripedLayer::build(
                kind,
                geometry,
                CellKind::Mlc2.spec().with_endurance(scale.endurance),
                config,
                SwlCoordination::Global,
                &SimConfig::default(),
            )?;
            let pages = striped.logical_pages();
            let trace = SegmentResampler::from_spec(
                paper_workload(pages, scale.seed),
                scale.seed.wrapping_mul(0x9E37_79B9),
            )
            .map(move |e| e.widen(CHANNEL_SPAN, pages));
            Simulator::new().run_striped(&mut striped, trace, StopCondition::events(events))
        },
    );
    let mut points = Vec::with_capacity(channel_counts.len());
    for (&channels, report) in channel_counts.iter().zip(reports) {
        let report = report?;
        let overlap = report.overlap_factor();
        let makespan_ns = report.makespan_ns;
        let pages = report.counters.host_writes + report.counters.host_reads;
        let pages_per_ms = if makespan_ns == 0 {
            0.0
        } else {
            pages as f64 / (makespan_ns as f64 / 1e6)
        };
        points.push(ChannelPoint {
            channels,
            overlap,
            makespan_ns,
            pages_per_ms,
            report,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentScale {
        ExperimentScale::quick()
    }

    #[test]
    fn first_failure_baseline_vs_swl_ftl() {
        let scale = quick();
        let base = first_failure_run(LayerKind::Ftl, None, &scale).unwrap();
        let swl = first_failure_run(
            LayerKind::Ftl,
            Some(SwlConfig::new(scale.scaled_threshold(100), 0).with_seed(scale.seed)),
            &scale,
        )
        .unwrap();
        let base_years = base.first_failure.expect("baseline must fail").years();
        let swl_years = swl
            .first_failure
            .expect("+SWL must fail eventually")
            .years();
        assert!(
            swl_years > base_years,
            "SWL must extend first failure: {swl_years:.3} vs {base_years:.3} years"
        );
    }

    #[test]
    fn first_failure_baseline_vs_swl_nftl() {
        let scale = quick();
        let base = first_failure_run(LayerKind::Nftl, None, &scale).unwrap();
        let swl = first_failure_run(
            LayerKind::Nftl,
            Some(SwlConfig::new(scale.scaled_threshold(100), 0).with_seed(scale.seed)),
            &scale,
        )
        .unwrap();
        let base_years = base.first_failure.expect("baseline must fail").years();
        let swl_years = swl
            .first_failure
            .expect("+SWL must fail eventually")
            .years();
        assert!(
            swl_years > base_years,
            "SWL must extend NFTL first failure: {swl_years:.3} vs {base_years:.3} years"
        );
    }

    #[test]
    fn overhead_is_small_and_positive_in_erases() {
        let scale = quick();
        let horizon = (0.02 * NANOS_PER_YEAR) as u64;
        let (baseline, points) =
            overhead_sweep(LayerKind::Nftl, &scale, &[100], &[0], horizon).unwrap();
        assert!(baseline.counters.host_writes > 0);
        let p = &points[0];
        assert!(
            p.erase_overhead > -0.05 && p.erase_overhead < 0.5,
            "erase overhead out of plausible band: {}",
            p.erase_overhead
        );
    }

    #[test]
    fn table4_shows_dev_reduction() {
        let scale = quick();
        let horizon = (0.05 * NANOS_PER_YEAR) as u64;
        let rows = table4(&scale, horizon, &[(0, 100)]).unwrap();
        assert_eq!(rows.len(), 4); // (FTL, NFTL) × (baseline, one config)
        let ftl_base = &rows[0];
        let ftl_swl = &rows[1];
        assert!(
            ftl_swl.dev <= ftl_base.dev,
            "SWL must not worsen FTL erase deviation: {} vs {}",
            ftl_swl.dev,
            ftl_base.dev
        );
    }

    #[test]
    fn swl_config_clamps_to_stability_condition() {
        let scale = ExperimentScale {
            blocks: 64,
            pages_per_block: 16,
            endurance: 256, // scaled_threshold(100) = 3
            seed: 1,
        };
        assert_eq!(scale.swl_config(100, 0).threshold, 3);
        assert_eq!(scale.swl_config(100, 1).threshold, 3);
        assert_eq!(scale.swl_config(100, 2).threshold, 5); // clamped to 2^2+1
        assert_eq!(scale.swl_config(100, 3).threshold, 9); // clamped to 2^3+1
        assert_eq!(scale.swl_config(1000, 3).threshold, 26); // unclamped
    }

    #[test]
    fn counting_wl_levels_and_extends_life() {
        let scale = quick();
        let base = first_failure_run(LayerKind::Ftl, None, &scale).unwrap();
        let counting = counting_wl_run(LayerKind::Ftl, 32, 500, &scale).unwrap();
        assert!(
            counting.erase_stats.std_dev < base.erase_stats.std_dev,
            "counting WL must flatten wear: {} vs {}",
            counting.erase_stats.std_dev,
            base.erase_stats.std_dev
        );
        let base_years = base.first_failure.unwrap().years();
        let counting_years = counting.first_failure.unwrap().years();
        assert!(
            counting_years > base_years,
            "counting WL must extend life: {counting_years:.4} vs {base_years:.4}"
        );
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let scale = ExperimentScale {
            blocks: 64,
            pages_per_block: 16,
            endurance: 24,
            seed: 7,
        };
        // Parallel sweep (worker count from the environment/machine)...
        let points = first_failure_sweep(LayerKind::Ftl, &scale, &[50, 100], &[0, 1]).unwrap();
        // ...against the hand-rolled serial loop it replaced.
        let mut serial = vec![first_failure_run(LayerKind::Ftl, None, &scale).unwrap()];
        for t in [50u64, 100] {
            for k in [0u32, 1] {
                serial.push(
                    first_failure_run(LayerKind::Ftl, Some(scale.swl_config(t, k)), &scale)
                        .unwrap(),
                );
            }
        }
        assert_eq!(points.len(), serial.len());
        for (point, report) in points.iter().zip(&serial) {
            assert_eq!(&point.report, report, "sweep point diverged from serial");
        }

        let horizon = (0.02 * NANOS_PER_YEAR) as u64;
        let (baseline, overhead) =
            overhead_sweep(LayerKind::Nftl, &scale, &[100], &[0, 1], horizon).unwrap();
        let serial_base = horizon_run(LayerKind::Nftl, None, &scale, horizon).unwrap();
        assert_eq!(baseline, serial_base);
        for (point, k) in overhead.iter().zip([0u32, 1]) {
            let serial =
                horizon_run(LayerKind::Nftl, Some(scale.swl_config(100, k)), &scale, horizon)
                    .unwrap();
            assert_eq!(point.report, serial, "overhead point k={k} diverged");
        }
    }

    #[test]
    fn channel_scaling_gains_overlap() {
        let scale = quick();
        let points =
            channel_scaling(LayerKind::Ftl, &scale, &[1, 4], Some((100, 0)), 4_000).unwrap();
        assert_eq!(points.len(), 2);
        let one = &points[0];
        let four = &points[1];
        assert_eq!((one.channels, four.channels), (1, 4));
        // One channel is fully serial by construction.
        let one_overlap = one.overlap.expect("non-empty run has device time");
        assert!((one_overlap - 1.0).abs() < 1e-9);
        assert_eq!(one.makespan_ns, one.report.device_busy_ns);
        // Four channels overlap busy time and serve pages faster.
        let four_overlap = four.overlap.expect("non-empty run has device time");
        assert!(
            four_overlap > 1.5,
            "4 channels must overlap, got ×{four_overlap:.2}"
        );
        assert!(four.pages_per_ms > one.pages_per_ms);
    }

    #[test]
    fn channel_scaling_survives_an_empty_trace() {
        // Zero events means zero device time: the sweep must report the
        // absence of an overlap measurement instead of fabricating ×1.00
        // (or panicking on a division by a zero makespan).
        let scale = quick();
        let points = channel_scaling(LayerKind::Ftl, &scale, &[1, 4], None, 0).unwrap();
        for point in &points {
            assert_eq!(point.overlap, None);
            assert_eq!(point.makespan_ns, 0);
            assert_eq!(point.pages_per_ms, 0.0);
            assert_eq!(point.report.events, 0);
        }
    }

    #[test]
    fn sweep_covers_grid() {
        let scale = ExperimentScale {
            blocks: 64,
            pages_per_block: 16,
            endurance: 24,
            seed: 1,
        };
        let points = first_failure_sweep(LayerKind::Ftl, &scale, &[50], &[0, 1]).unwrap();
        assert_eq!(points.len(), 3); // baseline + 2 grid points
        assert_eq!(points[0].threshold, None);
        assert!(points.iter().all(|p| p.years.is_some()));
    }
}
