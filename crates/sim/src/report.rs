//! Simulation results.

use std::fmt;

use nand::{DeviceCounters, EraseStats};

use crate::latency::LatencyStats;
use crate::layer::{LayerCounters, LayerKind};

/// Nanoseconds per (Julian) year, for first-failure-time conversion.
pub(crate) const NANOS_PER_YEAR: f64 = 365.25 * 86_400.0 * 1e9;

/// The first wear-out event, in host time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirstFailure {
    /// Block that wore out first.
    pub block: u32,
    /// Host time of the erase that crossed the endurance limit.
    pub host_ns: u64,
    /// Total block erases across the chip at that point.
    pub total_erases: u64,
}

impl FirstFailure {
    /// Host time of the failure in years — the paper's Figure 5 metric.
    pub fn years(&self) -> f64 {
        self.host_ns as f64 / NANOS_PER_YEAR
    }
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Which layer ran.
    pub layer: LayerKind,
    /// Whether a SW Leveler was attached, with its `(T, k)` when so.
    pub swl: Option<(u64, u32)>,
    /// Trace events processed.
    pub events: u64,
    /// Host time span covered by the processed events.
    pub host_span_ns: u64,
    /// First wear-out, if it happened before the run ended.
    pub first_failure: Option<FirstFailure>,
    /// Per-block erase-count distribution at the end of the run.
    pub erase_stats: EraseStats,
    /// Cause-attributed layer counters.
    pub counters: LayerCounters,
    /// Raw device operation counters.
    pub device: DeviceCounters,
    /// Simulated device busy time in nanoseconds.
    pub device_busy_ns: u64,
    /// Device-time latency of each host write (includes any GC and SWL
    /// work done synchronously under it).
    pub write_latency: LatencyStats,
    /// Device-time latency of each host read.
    pub read_latency: LatencyStats,
}

impl SimReport {
    /// Host span in simulated years.
    pub fn span_years(&self) -> f64 {
        self.host_span_ns as f64 / NANOS_PER_YEAR
    }

    /// Increased ratio of block erases of this run over `baseline`,
    /// normalised per host write (the runs may have processed different
    /// spans): `(erases/write) / (baseline erases/write) − 1`.
    ///
    /// This is the Figure 6 metric. Returns `None` when either run did no
    /// host write or the baseline did no erase.
    pub fn erase_overhead_vs(&self, baseline: &SimReport) -> Option<f64> {
        let ours = per_write(self.counters.total_erases(), self.counters.host_writes)?;
        let theirs = per_write(
            baseline.counters.total_erases(),
            baseline.counters.host_writes,
        )?;
        (theirs > 0.0).then(|| ours / theirs - 1.0)
    }

    /// Increased ratio of live-page copies over `baseline`, per host write
    /// (the Figure 7 metric).
    pub fn copy_overhead_vs(&self, baseline: &SimReport) -> Option<f64> {
        let ours = per_write(self.counters.total_live_copies(), self.counters.host_writes)?;
        let theirs = per_write(
            baseline.counters.total_live_copies(),
            baseline.counters.host_writes,
        )?;
        (theirs > 0.0).then(|| ours / theirs - 1.0)
    }

    /// Short label like `"FTL+SWL(T=100,k=0)"`.
    pub fn label(&self) -> String {
        match self.swl {
            Some((t, k)) => format!("{}+SWL(T={t},k={k})", self.layer),
            None => self.layer.to_string(),
        }
    }
}

fn per_write(amount: u64, writes: u64) -> Option<f64> {
    (writes > 0).then(|| amount as f64 / writes as f64)
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} events over {:.3} simulated years",
            self.label(),
            self.events,
            self.span_years()
        )?;
        writeln!(f, "  erase counts: {}", self.erase_stats)?;
        match &self.first_failure {
            Some(ff) => writeln!(
                f,
                "  first failure: block {} at {:.3} years ({} erases)",
                ff.block,
                ff.years(),
                ff.total_erases
            )?,
            None => writeln!(f, "  first failure: none")?,
        }
        writeln!(
            f,
            "  erases: {} gc + {} swl; copies: {} gc + {} swl",
            self.counters.gc_erases,
            self.counters.swl_erases,
            self.counters.gc_live_copies,
            self.counters.swl_live_copies
        )?;
        write!(f, "  write latency: {}", self.write_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(host_writes: u64, gc_erases: u64, swl_erases: u64) -> SimReport {
        SimReport {
            layer: LayerKind::Ftl,
            swl: None,
            events: 0,
            host_span_ns: NANOS_PER_YEAR as u64,
            first_failure: None,
            erase_stats: EraseStats::from_counts(std::iter::empty()),
            counters: LayerCounters {
                host_writes,
                gc_erases,
                swl_erases,
                ..LayerCounters::default()
            },
            device: DeviceCounters::default(),
            device_busy_ns: 0,
            write_latency: LatencyStats::new(),
            read_latency: LatencyStats::new(),
        }
    }

    #[test]
    fn years_conversion() {
        let ff = FirstFailure {
            block: 0,
            host_ns: (2.0 * NANOS_PER_YEAR) as u64,
            total_erases: 10,
        };
        assert!((ff.years() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn erase_overhead_ratio() {
        let baseline = report(1000, 100, 0);
        let with_swl = report(1000, 100, 5);
        let ratio = with_swl.erase_overhead_vs(&baseline).unwrap();
        assert!((ratio - 0.05).abs() < 1e-12);
    }

    #[test]
    fn overhead_normalises_per_write() {
        // Same per-write erase rate over a longer run ⇒ zero overhead.
        let baseline = report(1000, 100, 0);
        let longer = report(2000, 200, 0);
        assert!(longer.erase_overhead_vs(&baseline).unwrap().abs() < 1e-12);
    }

    #[test]
    fn overhead_none_when_degenerate() {
        let baseline = report(0, 0, 0);
        let run = report(100, 10, 0);
        assert_eq!(run.erase_overhead_vs(&baseline), None);
    }

    #[test]
    fn labels() {
        let mut r = report(1, 1, 0);
        assert_eq!(r.label(), "FTL");
        r.swl = Some((100, 3));
        assert_eq!(r.label(), "FTL+SWL(T=100,k=3)");
    }

    #[test]
    fn display_is_multi_line() {
        let text = report(10, 5, 1).to_string();
        assert!(text.contains("first failure: none"));
        assert!(text.contains("5 gc + 1 swl"));
    }
}
