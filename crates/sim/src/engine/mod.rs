//! Real-thread channel execution engine.
//!
//! [`Simulator::run_striped`](crate::Simulator::run_striped) overlaps
//! channels only in *virtual* time: one thread walks the trace and a
//! [`ChannelScheduler`] replays the per-lane busy deltas. This module runs
//! the same array on real cores: each channel lane (translation layer +
//! NAND device) is owned by a worker thread, fed through a bounded per-lane
//! command queue ([`ShardQueue`]) and drained through a shared completion
//! queue. The front-end ([`Engine`]) accepts in-flight host requests up to
//! a configurable queue depth and finalizes them strictly in submission
//! order.
//!
//! # Determinism
//!
//! The engine must reproduce `run_striped` **bit for bit** — lane contents,
//! erase counters, SWL/BET state, histograms, the whole
//! [`StripedReport`] — with only wall-clock timing allowed to differ. That
//! holds by construction:
//!
//! - all wear/GC/SWL state is lane-local and each lane executes its
//!   sub-request stream in submission order (per-lane FIFO queues), so lane
//!   state never depends on cross-lane interleaving;
//! - write tokens are assigned by the front-end in global trace order,
//!   exactly as the virtual-time loop does;
//! - everything *derived across lanes* (op latencies, makespan, first
//!   failure) is computed at finalize time, in op order, from per-op deltas
//!   carried on completions — never from live lane state, which may already
//!   be ahead of the op being finalized.
//!
//! Under [`SwlCoordination::Global`] the virtual-time loop runs the
//! coordinator after *every page write*, so its decisions depend on the
//! global interleaving. The engine therefore degrades that mode to page
//! lockstep: each page is dispatched and awaited individually and the
//! coordinator consumes the epoch-stamped [`ShardSnapshot`]s carried on
//! completions — published at quiescent lane points, no locks — exactly
//! reproducing the sequential coordination schedule. Per-channel SWL and
//! SWL-less runs keep full run-ahead at any queue depth.
//!
//! # Wall-clock observability
//!
//! With [`EngineConfig::with_metrics`] the engine additionally accounts for
//! where *wall-clock* time goes, without touching any simulation state:
//! per-worker busy/starved/backpressured time from monotonic timestamps,
//! per-lane wall busy time, queue occupancy gauges with high-water marks,
//! and wall-clock latency histograms (per-worker command execution, and
//! front-end submit-to-finalize per host op). Counters live in a shared
//! [`EngineRuntime`] atomics block, so an [`EngineSnapshot`] can be read
//! mid-run through [`Engine::metrics_handle`] while workers keep running;
//! the final [`EngineMetricsReport`] lands on [`EngineRun::metrics`]. The
//! disabled path is monomorphized out of the worker loop (`METRICS = false`
//! takes no timestamps at all), and enabling metrics cannot perturb the
//! bit-exact virtual-time results — `tests/engine_oracle.rs` pins both.

pub mod queue;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use flash_telemetry::buffer::{merge_lane_buffers, LaneBuffer};
use flash_telemetry::health::{HealthConfig, HealthRuntime};
use flash_telemetry::runtime::{EngineMetricsReport, EngineRuntime, EngineSnapshot, QueueSample};
use flash_telemetry::{Event, LatencyHistogram, Sink};
use flash_trace::{Op, TraceEvent};
use nand::{CellSpec, ChannelGeometry, DeviceCounters, EraseStats, FailureRecord, NandDevice};
use swl_core::{global_over_threshold, worst_shard, ShardSnapshot, ShardView, SwlConfig};

use crate::error::SimError;
use crate::latency::LatencyStats;
use crate::layer::{Layer, LayerKind, SimConfig, TranslationLayer};
use crate::report::FirstFailure;
use crate::sched::ChannelScheduler;
use crate::simulator::StopCondition;
use crate::striped::{sum_counters, StripedReport, SwlCoordination};

use queue::ShardQueue;

/// Lane-seed decorrelation stride (mirrors [`crate::StripedLayer`]).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Ordinal used for errors raised outside the page loop (SWL steps).
const SWL_ORDINAL: u32 = u32::MAX;

/// Per-lane telemetry sink for worker threads: a [`LaneBuffer`] whose epoch
/// stamp is driven by the worker through a shared cell (the worker sets it
/// to the host-op sequence number before executing each command). With
/// telemetry disabled the buffer stays empty and emission is a no-op.
#[derive(Debug)]
pub struct EngineSink {
    enabled: bool,
    epoch: Arc<AtomicU64>,
    buffer: LaneBuffer,
    /// Health-plane tap: the shared wear table plus this lane's flat-block
    /// base. Rides the emission sites the device already has — no clock
    /// reads, no locks, just relaxed stores on wear-bearing events — and is
    /// independent of `enabled`, so health stays live with telemetry
    /// buffering off.
    health: Option<(Arc<HealthRuntime>, u64)>,
}

impl EngineSink {
    fn new(
        lane: u32,
        enabled: bool,
        epoch: Arc<AtomicU64>,
        health: Option<(Arc<HealthRuntime>, u64)>,
    ) -> Self {
        Self {
            enabled,
            epoch,
            buffer: LaneBuffer::new(lane),
            health,
        }
    }

    /// The buffered per-lane stream (empty when telemetry was disabled).
    pub fn into_buffer(self) -> LaneBuffer {
        self.buffer
    }
}

impl Sink for EngineSink {
    #[inline]
    fn event(&mut self, event: Event) {
        if let Some((health, base)) = &self.health {
            health.observe_event(*base, &event);
        }
        if self.enabled {
            self.buffer.set_epoch(self.epoch.load(Ordering::Relaxed));
            self.buffer.event(event);
        }
    }
}

/// One page of a host op, routed to a lane.
#[derive(Debug, Clone)]
struct PageCmd {
    lane_lba: u64,
    /// Write token (front-end-assigned, global trace order); 0 for reads.
    token: u64,
    /// Position of this page within the host op (for deterministic error
    /// attribution).
    ordinal: u32,
}

/// A device-wide management verb executed on every lane at a barrier.
#[derive(Debug, Clone, Copy)]
enum AdminVerb {
    /// Create CoW snapshot `id`.
    Create(u64),
    /// Delete snapshot `id`.
    Delete(u64),
    /// Roll the live image back to snapshot `id`.
    Clone(u64),
    /// Merge snapshot `id` into the live image and drop it.
    Merge(u64),
}

/// Work shipped to a lane worker.
#[derive(Debug)]
enum LaneCommand {
    /// Execute this lane's pages of host op `op_seq`, in order.
    Exec {
        op_seq: u64,
        lane: u32,
        op: Op,
        pages: Vec<PageCmd>,
    },
    /// Run one SWL-Procedure step on the lane (global coordination).
    SwlStep { op_seq: u64, lane: u32 },
    /// Execute a management verb on the lane (snapshot plane). Dispatched
    /// to every lane at once, after a full flush, and awaited as a barrier.
    Admin {
        op_seq: u64,
        lane: u32,
        verb: AdminVerb,
    },
}

/// A lane's acknowledgement of one command.
#[derive(Debug)]
struct LaneCompletion {
    op_seq: u64,
    lane: u32,
    /// Device busy time this command added to the lane.
    busy_delta: u64,
    /// Per-page busy deltas for the successfully executed pages, in page
    /// order (empty for SWL steps).
    page_latencies: Vec<u64>,
    /// Values produced by successfully executed read pages, tagged with the
    /// page's op-wide ordinal so the front-end can reassemble an op split
    /// across lanes. Empty for writes and SWL steps.
    read_values: Vec<(u32, Option<u64>)>,
    /// First error hit, with the ordinal of the offending page.
    error: Option<(u32, SimError)>,
    /// The lane's first wear-out as of completing this command.
    failure: Option<FailureRecord>,
    /// Epoch-stamped leveler summary (all-zero view when no SWL attached).
    shard: ShardSnapshot,
}

/// One lane owned by a worker thread.
struct WorkerLane {
    channel: u32,
    layer: Layer<EngineSink>,
    epoch: Arc<AtomicU64>,
    snap_epoch: u64,
}

/// What a worker hands back on shutdown: its lanes, tagged by channel, plus
/// its wall-clock command-latency histogram (empty when metrics were off).
type ReturnedLanes = (Vec<(u32, Layer<EngineSink>)>, LatencyHistogram);

/// Signature shared by both monomorphizations of [`worker_loop`], so
/// [`Engine::new`] can pick the instrumented or the compiled-out body at
/// runtime while each stays a static, fully inlined function.
type WorkerBody = fn(
    usize,
    Vec<WorkerLane>,
    Arc<ShardQueue<LaneCommand>>,
    Arc<ShardQueue<LaneCompletion>>,
    Arc<EngineRuntime>,
) -> ReturnedLanes;

/// Saturating nanoseconds since `t` (monotonic).
fn since_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Saturating nanoseconds from `a` to `b` (monotonic instants).
fn ns_between(a: Instant, b: Instant) -> u64 {
    u64::try_from(b.saturating_duration_since(a).as_nanos()).unwrap_or(u64::MAX)
}

/// Commands a worker accumulates locally before flushing its counters to
/// the shared atomics. Snapshots taken mid-run lag by at most one window;
/// blocking boundaries (empty command queue, full completion queue) flush
/// eagerly so a parked worker never holds back its numbers.
const FLUSH_EVERY: u64 = 64;

/// Thread-local metrics accumulator for one worker.
///
/// The instrumented fast path takes exactly one `Instant::now()` per
/// command: `mark` chains from command to command, so a command's busy
/// span absorbs the queue handling around it and *idle* is reduced to
/// scheduler preemption plus shutdown drain. Counter deltas stay local and
/// hit the [`EngineRuntime`] atomics only every [`FLUSH_EVERY`] commands or
/// when the worker is about to block — that keeps the metrics-on overhead
/// inside the `telbench` budget even on a single hardware thread, where
/// every clock read is serial work.
struct WorkerMeter {
    spawned: Instant,
    /// When the previous command finished (or the worker last unparked).
    mark: Instant,
    busy_ns: u64,
    starved_ns: u64,
    backpressure_ns: u64,
    commands: u64,
    pages: u64,
    /// Per-owned-lane `(channel, busy_ns, commands, pages)` deltas.
    lanes: Vec<(u32, u64, u64, u64)>,
    since_flush: u64,
}

impl WorkerMeter {
    fn new(lanes: &[WorkerLane]) -> Self {
        let now = Instant::now();
        Self {
            spawned: now,
            mark: now,
            busy_ns: 0,
            starved_ns: 0,
            backpressure_ns: 0,
            commands: 0,
            pages: 0,
            lanes: lanes.iter().map(|w| (w.channel, 0, 0, 0)).collect(),
            since_flush: 0,
        }
    }

    fn add_command(&mut self, lane: u32, ns: u64, pages: u64) {
        self.busy_ns += ns;
        self.commands += 1;
        self.pages += pages;
        let slot = self
            .lanes
            .iter_mut()
            .find(|(channel, ..)| *channel == lane)
            .expect("metered command on a lane this worker does not own");
        slot.1 += ns;
        slot.2 += 1;
        slot.3 += pages;
        self.since_flush += 1;
    }

    /// Publishes the accumulated deltas to the shared atomics and resets.
    fn flush(&mut self, runtime: &EngineRuntime, worker: usize) {
        if self.commands > 0 {
            runtime
                .worker(worker)
                .add_busy(self.busy_ns, self.commands, self.pages);
        }
        if self.starved_ns > 0 {
            runtime.worker(worker).add_starved(self.starved_ns);
        }
        if self.backpressure_ns > 0 {
            runtime.worker(worker).add_backpressure(self.backpressure_ns);
        }
        for (channel, ns, commands, pages) in &mut self.lanes {
            if *commands > 0 {
                runtime
                    .lane(*channel as usize)
                    .add_commands(*ns, *commands, *pages);
            }
            *ns = 0;
            *commands = 0;
            *pages = 0;
        }
        self.busy_ns = 0;
        self.starved_ns = 0;
        self.backpressure_ns = 0;
        self.commands = 0;
        self.pages = 0;
        self.since_flush = 0;
    }
}

fn worker_loop<const METRICS: bool>(
    worker: usize,
    mut lanes: Vec<WorkerLane>,
    commands: Arc<ShardQueue<LaneCommand>>,
    completions: Arc<ShardQueue<LaneCompletion>>,
    runtime: Arc<EngineRuntime>,
) -> ReturnedLanes {
    let mut meter = METRICS.then(|| WorkerMeter::new(&lanes));
    let mut cmd_latency = LatencyHistogram::new();
    loop {
        // Both monomorphizations take the same try-then-block queue path,
        // so metrics-on differs from metrics-off only by the timestamp and
        // counter arithmetic — not by locking or wakeup patterns. The clock
        // is read only when actually about to park.
        let command = match commands.try_pop() {
            Some(command) => command,
            None => {
                let wait = meter.as_mut().map(|meter| {
                    let wait = Instant::now();
                    meter.busy_ns += ns_between(meter.mark, wait);
                    meter.flush(&runtime, worker);
                    wait
                });
                let Some(command) = commands.pop() else {
                    // Closed and drained: the wait for shutdown lands in
                    // the derived idle remainder, not starvation.
                    break;
                };
                if let (Some(meter), Some(wait)) = (meter.as_mut(), wait) {
                    let woke = Instant::now();
                    meter.starved_ns += ns_between(wait, woke);
                    meter.mark = woke;
                }
                command
            }
        };
        let (op_seq, lane_id) = match &command {
            LaneCommand::Exec { op_seq, lane, .. }
            | LaneCommand::SwlStep { op_seq, lane }
            | LaneCommand::Admin { op_seq, lane, .. } => (*op_seq, *lane),
        };
        let wl = lanes
            .iter_mut()
            .find(|w| w.channel == lane_id)
            .expect("command routed to a worker that does not own the lane");
        wl.epoch.store(op_seq, Ordering::Relaxed);
        let busy_before = wl.layer.device().busy_ns();
        let mut page_latencies = Vec::new();
        let mut read_values = Vec::new();
        let mut error = None;
        match command {
            LaneCommand::Exec { op, pages, .. } => {
                page_latencies.reserve(pages.len());
                for page in &pages {
                    let page_before = wl.layer.device().busy_ns();
                    let result = match op {
                        Op::Write => wl.layer.write(page.lane_lba, page.token),
                        Op::Read => wl.layer.read(page.lane_lba).map(|value| {
                            read_values.push((page.ordinal, value));
                        }),
                    };
                    match result {
                        Ok(()) => {
                            page_latencies.push(wl.layer.device().busy_ns() - page_before);
                        }
                        Err(e) => {
                            error = Some((page.ordinal, e));
                            break;
                        }
                    }
                }
            }
            LaneCommand::SwlStep { .. } => {
                if let Err(e) = wl.layer.run_swl_step() {
                    error = Some((SWL_ORDINAL, e));
                }
            }
            LaneCommand::Admin { verb, .. } => {
                let result = match verb {
                    AdminVerb::Create(id) => wl.layer.snapshot_create(id),
                    AdminVerb::Delete(id) => wl.layer.snapshot_delete(id),
                    AdminVerb::Clone(id) => wl.layer.snapshot_clone(id),
                    AdminVerb::Merge(id) => wl.layer.snapshot_merge(id),
                };
                if let Err(e) = result {
                    error = Some((SWL_ORDINAL, e));
                }
            }
        }
        wl.snap_epoch += 1;
        let shard = match wl.layer.swl() {
            Some(s) => ShardSnapshot::of(s, wl.snap_epoch),
            None => ShardSnapshot {
                epoch: wl.snap_epoch,
                ..ShardSnapshot::default()
            },
        };
        let completion = LaneCompletion {
            op_seq,
            lane: lane_id,
            busy_delta: wl.layer.device().busy_ns() - busy_before,
            page_latencies,
            read_values,
            error,
            failure: wl.layer.device().first_failure(),
            shard,
        };
        if let Some(meter) = meter.as_mut() {
            let pages = completion.page_latencies.len() as u64;
            let done = Instant::now();
            let exec_ns = ns_between(meter.mark, done);
            meter.mark = done;
            cmd_latency.record(exec_ns);
            meter.add_command(lane_id, exec_ns, pages);
        }
        // The push mirrors the pop: shared try-then-block control flow, and
        // the instrumented build reads the clock only around an actual
        // block. A closed queue means the front-end is tearing down and no
        // longer consumes acknowledgements; dropping the completion is fine
        // in both branches.
        if let Err((completion, _)) = completions.try_push(completion) {
            if let Some(meter) = meter.as_mut() {
                meter.flush(&runtime, worker);
            }
            let _ = completions.push(completion);
            if let Some(meter) = meter.as_mut() {
                let woke = Instant::now();
                meter.backpressure_ns += ns_between(meter.mark, woke);
                meter.mark = woke;
            }
        }
        if let Some(meter) = meter.as_mut() {
            if meter.since_flush >= FLUSH_EVERY {
                meter.flush(&runtime, worker);
            }
        }
    }
    if let Some(meter) = meter.as_mut() {
        meter.flush(&runtime, worker);
        runtime.worker(worker).set_wall(since_ns(meter.spawned));
    }
    (
        lanes
            .into_iter()
            .map(|w| (w.channel, w.layer))
            .collect(),
        cmd_latency,
    )
}

/// Front-end tuning for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (capped at the channel count; at least 1).
    pub threads: u32,
    /// Maximum in-flight host ops (clamped to 1..=256).
    pub queue_depth: usize,
    /// Buffer per-lane telemetry for an ordered merge at the end.
    pub telemetry: bool,
    /// Account wall-clock worker/queue runtime metrics (see the module
    /// docs' *Wall-clock observability* section).
    pub metrics: bool,
    /// Retain read results: every finalized read op's page values are
    /// queued for [`Engine::take_completed_reads`]. Off by default — a
    /// closed-loop replayer has no use for the data and the queue would
    /// grow without bound if nobody drained it.
    pub capture_reads: bool,
    /// Maintain the shared [`HealthRuntime`] wear table for mid-run health
    /// sampling ([`Engine::health_runtime`]). Rides the existing telemetry
    /// emission sites: no clock reads or locks added to workers.
    pub health: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            queue_depth: 1,
            telemetry: false,
            metrics: false,
            capture_reads: false,
            health: false,
        }
    }
}

impl EngineConfig {
    /// `threads` worker threads.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Host queue depth (in-flight ops; clamped to 1..=256).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.clamp(1, 256);
        self
    }

    /// Enables buffered per-lane telemetry.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Enables wall-clock runtime metrics (worker utilization, stall
    /// attribution, queue gauges, wall latency histograms).
    pub fn with_metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Enables read-result capture (see [`EngineConfig::capture_reads`]).
    /// The block-device service front-end turns this on; callers that do
    /// must drain [`Engine::take_completed_reads`] after every flush.
    pub fn with_read_capture(mut self, enabled: bool) -> Self {
        self.capture_reads = enabled;
        self
    }

    /// Enables the live health plane (see [`EngineConfig::health`]).
    pub fn with_health(mut self, enabled: bool) -> Self {
        self.health = enabled;
        self
    }
}

/// One host op awaiting its lane completions.
struct PendingOp {
    op: Op,
    at_ns: u64,
    /// Wall-clock submission stamp (set only when metrics are on).
    submitted: Option<Instant>,
    expected: u32,
    received: u32,
    /// Busy delta accumulated per channel (dense, channel-indexed).
    lane_busy: Vec<u64>,
    /// Per-lane page latencies, as received.
    page_latencies: Vec<(u32, Vec<u64>)>,
    /// Read results as received from lanes, tagged with op-wide page
    /// ordinals (collected only when read capture is on).
    read_values: Vec<(u32, Option<u64>)>,
    /// Per-lane wear-out state as of this op, applied at finalize.
    failures: Vec<(u32, Option<FailureRecord>)>,
    /// Lowest-ordinal error across lanes.
    error: Option<(u32, SimError)>,
}

/// Gauge read of one bounded queue.
fn queue_sample<T>(q: &ShardQueue<T>) -> QueueSample {
    QueueSample {
        len: q.len(),
        high_water: q.high_water(),
        capacity: q.capacity(),
    }
}

/// Assembles an [`EngineSnapshot`] from the shared runtime block plus live
/// queue gauges (shared by [`Engine::snapshot`] and the observer handle).
fn snapshot_of(
    runtime: &EngineRuntime,
    command_queues: &[Arc<ShardQueue<LaneCommand>>],
    completions: &ShardQueue<LaneCompletion>,
) -> EngineSnapshot {
    runtime.snapshot(
        command_queues.iter().map(|q| queue_sample(q)).collect(),
        queue_sample(completions),
    )
}

/// A cloneable observer over a running [`Engine`]'s metrics: samples
/// [`EngineSnapshot`]s from any thread while the engine runs elsewhere.
/// Obtained from [`Engine::metrics_handle`]; outliving the engine is safe
/// (the counters just stop moving).
#[derive(Clone)]
pub struct EngineMetricsHandle {
    runtime: Arc<EngineRuntime>,
    command_queues: Vec<Arc<ShardQueue<LaneCommand>>>,
    completions: Arc<ShardQueue<LaneCompletion>>,
}

impl EngineMetricsHandle {
    /// Reads the counters and queue gauges right now.
    pub fn snapshot(&self) -> EngineSnapshot {
        snapshot_of(&self.runtime, &self.command_queues, &self.completions)
    }
}

/// The multi-threaded channel execution engine (see module docs).
///
/// Build with [`Engine::new`], feed it with [`Engine::submit`] or
/// [`Engine::run`], wait with [`Engine::flush`], and tear down with
/// [`Engine::finish`] (report + lanes) or [`Engine::into_devices`]
/// (crash-harness teardown).
pub struct Engine {
    kind: LayerKind,
    geometry: ChannelGeometry,
    logical_pages: u64,
    swl: Option<(u64, u32)>,
    coordination: SwlCoordination,
    queue_depth: usize,
    threads: u32,
    telemetry: bool,
    metrics: bool,
    capture_reads: bool,
    /// Global coordination with >1 channel and SWL attached runs page
    /// lockstep (see module docs).
    lockstep: bool,
    command_queues: Vec<Arc<ShardQueue<LaneCommand>>>,
    completions: Arc<ShardQueue<LaneCompletion>>,
    workers: Vec<JoinHandle<ReturnedLanes>>,
    runtime: Arc<EngineRuntime>,
    health: Option<Arc<HealthRuntime>>,
    endurance: u32,
    // Front-end (submission-order) state.
    next_token: u64,
    next_seq: u64,
    finalize_next: u64,
    pending: VecDeque<PendingOp>,
    scheduler: ChannelScheduler,
    events: u64,
    host_span_ns: u64,
    first_failure: Option<FirstFailure>,
    lane_failure: Vec<Option<FailureRecord>>,
    shards: Vec<ShardSnapshot>,
    lane_write_latency: Vec<LatencyStats>,
    lane_read_latency: Vec<LatencyStats>,
    op_write_latency: LatencyStats,
    op_read_latency: LatencyStats,
    /// Wall-clock submit-to-finalize histograms (metrics mode only).
    op_write_wall: LatencyHistogram,
    op_read_wall: LatencyHistogram,
    /// Finalized read results awaiting [`Engine::take_completed_reads`],
    /// one entry per read op in finalize (= submission) order. Populated
    /// only with [`EngineConfig::with_read_capture`].
    completed_reads: VecDeque<Vec<Option<u64>>>,
    error: Option<SimError>,
}

/// Everything an [`Engine`] run produced: the virtual-time report (directly
/// comparable with [`Simulator::run_striped`](crate::Simulator::run_striped)
/// output via `==`), per-lane page histograms, and the lanes themselves for
/// state inspection.
pub struct EngineRun {
    /// The virtual-time report, bit-identical to `run_striped` on the same
    /// trace.
    pub report: StripedReport,
    /// Per-page write latency per lane (their merge, in lane order, is
    /// `report.write_latency`).
    pub lane_write_latency: Vec<LatencyStats>,
    /// Per-page read latency per lane.
    pub lane_read_latency: Vec<LatencyStats>,
    /// Effective worker-thread count.
    pub threads: u32,
    /// Configured host queue depth.
    pub queue_depth: usize,
    /// The wall-clock runtime metrics report (`None` unless the engine was
    /// built with [`EngineConfig::with_metrics`]).
    pub metrics: Option<EngineMetricsReport>,
    telemetry: bool,
    geometry: ChannelGeometry,
    endurance: u32,
    lanes: Vec<Layer<EngineSink>>,
}

impl EngineRun {
    /// The lanes in channel order, for state comparison.
    pub fn lanes(&self) -> &[Layer<EngineSink>] {
        &self.lanes
    }

    /// Mutable lane access (reading logical contents needs `&mut`).
    pub fn lanes_mut(&mut self) -> &mut [Layer<EngineSink>] {
        &mut self.lanes
    }

    /// Consumes the run and produces the merged telemetry stream: one
    /// array-level [`Event::Meta`] header and an [`Event::Endurance`]
    /// header (schema v4) followed by the deterministic `(op epoch, lane,
    /// emission index)` merge of the per-lane buffers. Empty when telemetry
    /// was disabled.
    pub fn into_telemetry(self) -> Vec<Event> {
        if !self.telemetry {
            return Vec::new();
        }
        let buffers: Vec<LaneBuffer> = self
            .lanes
            .into_iter()
            .map(|l| l.into_device().into_sink().into_buffer())
            .collect();
        let mut events = vec![
            Event::Meta {
                version: flash_telemetry::SCHEMA_VERSION,
                blocks: self
                    .geometry
                    .total_blocks()
                    .try_into()
                    .expect("array block count exceeds u32"),
                pages_per_block: self.geometry.chip().pages_per_block(),
            },
            Event::Endurance {
                limit: self.endurance as u64,
            },
        ];
        events.extend(merge_lane_buffers(buffers));
        events
    }
}

impl Engine {
    /// Builds the lanes (identically seeded to [`crate::StripedLayer`], so
    /// state is comparable bit for bit) and spawns the worker threads.
    ///
    /// # Errors
    ///
    /// Propagates layer construction failures.
    pub fn new(
        kind: LayerKind,
        geometry: ChannelGeometry,
        spec: CellSpec,
        swl: Option<SwlConfig>,
        coordination: SwlCoordination,
        config: &SimConfig,
        engine: EngineConfig,
    ) -> Result<Self, SimError> {
        let channels = geometry.channels();
        let threads = engine.threads.max(1).min(channels);
        let queue_depth = engine.queue_depth.clamp(1, 256);
        let deferred = channels > 1 && coordination == SwlCoordination::Global;
        let lockstep = deferred && swl.is_some();

        // The health runtime's estimator work constant scales with expected
        // device lifetime in host pages (~ blocks × endurance × ppb / 8 at
        // write amplification ≈ 2), so the forecast averages over recent
        // life, not just the last few samples.
        let health = engine.health.then(|| {
            let blocks = geometry.total_blocks();
            let ppb = u64::from(geometry.chip().pages_per_block());
            let lifetime_pages = blocks
                .saturating_mul(u64::from(spec.endurance))
                .saturating_mul(ppb)
                / 2;
            let tau = (lifetime_pages / 8).max(1024) as f64;
            Arc::new(HealthRuntime::new(
                blocks as usize,
                HealthConfig::new(u64::from(spec.endurance)).with_tau_pages(tau),
            ))
        });
        let mut groups: Vec<Vec<WorkerLane>> = (0..threads).map(|_| Vec::new()).collect();
        let mut logical_pages = 0u64;
        for lane in 0..channels {
            let epoch = Arc::new(AtomicU64::new(0));
            let lane_health = health
                .as_ref()
                .map(|h| (Arc::clone(h), geometry.flat_block(lane, 0)));
            let sink = EngineSink::new(lane, engine.telemetry, Arc::clone(&epoch), lane_health);
            let device = NandDevice::new(geometry.lane_geometry(), spec).with_sink_silent(sink);
            let lane_swl = swl.map(|base| {
                let seed = if lane == 0 {
                    base.seed
                } else {
                    base.seed
                        .wrapping_add(u64::from(lane).wrapping_mul(SEED_STRIDE))
                };
                base.with_seed(seed).with_deferred(deferred)
            });
            let layer = Layer::build(kind, device, lane_swl, config)?;
            if lane == 0 {
                logical_pages = layer.logical_pages() * u64::from(channels);
            }
            groups[(lane % threads) as usize].push(WorkerLane {
                channel: lane,
                layer,
                epoch,
                snap_epoch: 0,
            });
        }

        // Sized so workers can never block pushing completions: at most
        // `queue_depth` ops × one Exec per lane, plus lockstep SWL steps,
        // are ever outstanding.
        let completions: Arc<ShardQueue<LaneCompletion>> = Arc::new(ShardQueue::new(
            (queue_depth + 2) * channels as usize + 8,
        ));
        let runtime = Arc::new(EngineRuntime::new(threads as usize, channels as usize));
        // Pick the monomorphization once: the disabled body contains no
        // timestamp reads or counter updates at all.
        let body: WorkerBody = if engine.metrics {
            worker_loop::<true>
        } else {
            worker_loop::<false>
        };
        let mut command_queues = Vec::with_capacity(threads as usize);
        let mut workers = Vec::with_capacity(threads as usize);
        for (w, lanes) in groups.into_iter().enumerate() {
            let capacity = queue_depth * lanes.len().max(1) + 2;
            let commands: Arc<ShardQueue<LaneCommand>> = Arc::new(ShardQueue::new(capacity));
            let handle = {
                let commands = Arc::clone(&commands);
                let completions = Arc::clone(&completions);
                let runtime = Arc::clone(&runtime);
                std::thread::Builder::new()
                    .name(format!("lane-worker-{w}"))
                    .spawn(move || body(w, lanes, commands, completions, runtime))
                    .expect("failed to spawn lane worker")
            };
            command_queues.push(commands);
            workers.push(handle);
        }

        Ok(Self {
            kind,
            geometry,
            logical_pages,
            swl: swl.map(|s| (s.threshold, s.k)),
            coordination,
            queue_depth,
            threads,
            telemetry: engine.telemetry,
            metrics: engine.metrics,
            capture_reads: engine.capture_reads,
            lockstep,
            command_queues,
            completions,
            workers,
            runtime,
            health,
            endurance: spec.endurance,
            next_token: 0,
            next_seq: 0,
            finalize_next: 0,
            pending: VecDeque::new(),
            scheduler: ChannelScheduler::new(channels),
            events: 0,
            host_span_ns: 0,
            first_failure: None,
            lane_failure: vec![None; channels as usize],
            shards: vec![ShardSnapshot::default(); channels as usize],
            lane_write_latency: vec![LatencyStats::new(); channels as usize],
            lane_read_latency: vec![LatencyStats::new(); channels as usize],
            op_write_latency: LatencyStats::new(),
            op_read_latency: LatencyStats::new(),
            op_write_wall: LatencyHistogram::new(),
            op_read_wall: LatencyHistogram::new(),
            completed_reads: VecDeque::new(),
            error: None,
        })
    }

    /// Trace events accepted so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Exported logical capacity in pages (striped over all channels),
    /// identical to the matching [`crate::StripedLayer`]'s.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// First wear-out finalized so far (op-order accurate).
    pub fn first_failure(&self) -> Option<FirstFailure> {
        self.first_failure
    }

    /// Effective worker-thread count.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Whether wall-clock runtime metrics are being accounted.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics
    }

    /// Reads the runtime counters and queue gauges right now, without
    /// stopping the workers. All-zero (except queue capacities) unless the
    /// engine was built with [`EngineConfig::with_metrics`].
    pub fn snapshot(&self) -> EngineSnapshot {
        snapshot_of(&self.runtime, &self.command_queues, &self.completions)
    }

    /// A cloneable observer handle for sampling [`EngineSnapshot`]s from
    /// another thread while [`Engine::run`] holds the engine mutably — the
    /// live-view path `engtop` uses.
    pub fn metrics_handle(&self) -> EngineMetricsHandle {
        EngineMetricsHandle {
            runtime: Arc::clone(&self.runtime),
            command_queues: self.command_queues.clone(),
            completions: Arc::clone(&self.completions),
        }
    }

    /// The shared health-plane wear table, sampleable from any thread while
    /// the engine runs (the `metrics_handle` idiom for wear instead of
    /// wall-clock). `None` unless built with [`EngineConfig::with_health`].
    pub fn health_runtime(&self) -> Option<Arc<HealthRuntime>> {
        self.health.as_ref().map(Arc::clone)
    }

    fn queue_for(&self, lane: u32) -> &ShardQueue<LaneCommand> {
        &self.command_queues[(lane % self.threads) as usize]
    }

    fn dispatch(&self, command: LaneCommand) {
        let lane = match &command {
            LaneCommand::Exec { lane, .. }
            | LaneCommand::SwlStep { lane, .. }
            | LaneCommand::Admin { lane, .. } => *lane,
        };
        self.queue_for(lane)
            .push(command)
            .unwrap_or_else(|_| panic!("lane {lane} worker queue closed mid-run"));
    }

    /// Accepts one host op. May block on backpressure (the op queue is at
    /// depth, or a lane's command queue is full); ops finalized while
    /// waiting can surface earlier lane errors.
    ///
    /// # Errors
    ///
    /// Returns the first finalized lane error, in deterministic op/page
    /// order. The error is sticky: all later calls return it too.
    pub fn submit(&mut self, event: TraceEvent) -> Result<(), SimError> {
        self.submit_inner(event, None)
    }

    /// Accepts one host *write* carrying explicit page values instead of
    /// front-end-assigned write tokens — the block-device service path,
    /// where clients supply the data and expect to read it back. `data`
    /// holds one value per page; the op spans `[lba, lba + data.len())`.
    /// The global write-token counter does not advance, so runs must not
    /// mix token writes and data writes on the same engine (the service
    /// never does).
    ///
    /// # Errors
    ///
    /// Exactly as [`Engine::submit`]: first finalized lane error, sticky.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or longer than `u32::MAX` pages.
    pub fn submit_write_data(
        &mut self,
        at_ns: u64,
        lba: u64,
        data: &[u64],
    ) -> Result<(), SimError> {
        assert!(!data.is_empty(), "a data write must carry at least one page");
        let len = u32::try_from(data.len()).expect("write span exceeds u32 pages");
        self.submit_inner(TraceEvent::write_span(at_ns, lba, len), Some(data))
    }

    fn submit_inner(&mut self, event: TraceEvent, data: Option<&[u64]>) -> Result<(), SimError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.events += 1;
        self.host_span_ns = self.host_span_ns.max(event.at_ns);
        if self.metrics {
            self.runtime.op_submitted();
        }
        if let Some(h) = &self.health {
            if event.op == Op::Write {
                h.add_host_pages(u64::from(event.len));
            }
        }
        if self.lockstep {
            self.submit_lockstep(event, data)
        } else {
            self.submit_pipelined(event, data)
        }
    }

    fn submit_pipelined(&mut self, event: TraceEvent, data: Option<&[u64]>) -> Result<(), SimError> {
        let submitted = self.metrics.then(Instant::now);
        let channels = self.geometry.channels() as usize;
        // Route pages to lanes, assigning write tokens in global trace
        // order (exactly as the virtual-time loop does).
        let mut batches: Vec<Vec<PageCmd>> = vec![Vec::new(); channels];
        for (ordinal, lba) in event.pages().enumerate() {
            let channel = self.geometry.channel_of(lba) as usize;
            let token = match (event.op, data) {
                (Op::Write, Some(values)) => values[ordinal],
                (Op::Write, None) => {
                    self.next_token += 1;
                    self.next_token
                }
                (Op::Read, _) => 0,
            };
            batches[channel].push(PageCmd {
                lane_lba: self.geometry.lane_lba(lba),
                token,
                ordinal: ordinal as u32,
            });
        }
        let expected = batches.iter().filter(|b| !b.is_empty()).count() as u32;

        // Backpressure: hold the op until the in-flight window has room.
        // The wait is attributed to the host as submit-side blocked time —
        // the front-end mirror of worker pop-side starvation. The charge
        // reuses the `submitted` stamp (so it also covers the page-routing
        // prologue, which is noise next to a real block) to keep the
        // metered path at one extra clock read per blocked op.
        if self.pending.len() >= self.queue_depth {
            let waited = loop {
                let completion = self
                    .completions
                    .pop()
                    .expect("completion queue closed with ops in flight");
                self.absorb(completion);
                let finalized = self.finalize_ready();
                if finalized.is_err() || self.pending.len() < self.queue_depth {
                    break finalized;
                }
            };
            if let Some(submitted) = submitted {
                self.runtime.add_host_backpressure(since_ns(submitted));
            }
            waited?;
        }

        let op_seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back(PendingOp {
            op: event.op,
            at_ns: event.at_ns,
            submitted,
            expected,
            received: 0,
            lane_busy: vec![0; channels],
            page_latencies: Vec::new(),
            read_values: Vec::new(),
            failures: Vec::new(),
            error: None,
        });
        for (channel, pages) in batches.into_iter().enumerate() {
            if pages.is_empty() {
                continue;
            }
            self.dispatch(LaneCommand::Exec {
                op_seq,
                lane: channel as u32,
                op: event.op,
                pages,
            });
        }

        // Opportunistically drain whatever already completed.
        while let Some(completion) = self.completions.try_pop() {
            self.absorb(completion);
        }
        self.finalize_ready()
    }

    fn absorb(&mut self, completion: LaneCompletion) {
        self.shards[completion.lane as usize].absorb(completion.shard);
        self.publish_bet_gauges();
        let index = (completion.op_seq - self.finalize_next) as usize;
        let op = &mut self.pending[index];
        op.received += 1;
        op.lane_busy[completion.lane as usize] += completion.busy_delta;
        op.page_latencies
            .push((completion.lane, completion.page_latencies));
        if self.capture_reads {
            op.read_values.extend(completion.read_values);
        }
        op.failures.push((completion.lane, completion.failure));
        if let Some((ordinal, e)) = completion.error {
            match op.error {
                Some((o, _)) if o <= ordinal => {}
                _ => op.error = Some((ordinal, e)),
            }
        }
    }

    fn finalize_ready(&mut self) -> Result<(), SimError> {
        // One clock read shared by every op this call retires: completions
        // arrive in bursts, and per-op precision below the burst width
        // isn't worth a syscall-rate of timestamps.
        let mut now: Option<Instant> = None;
        while self
            .pending
            .front()
            .is_some_and(|op| op.received == op.expected)
        {
            let mut op = self.pending.pop_front().expect("front checked");
            self.finalize_next += 1;
            // Per-lane wear-out state advances in op order, so the scan
            // below sees exactly what the virtual-time loop saw after this
            // op — even when lanes already ran ahead.
            for &(lane, failure) in &op.failures {
                self.lane_failure[lane as usize] = failure;
            }
            if let Some((_, e)) = op.error {
                self.error = Some(e);
                return Err(e);
            }
            if self.capture_reads && op.op == Op::Read {
                // Lanes report pages in their own order; the op-wide
                // ordinal restores the host's page order across lanes.
                op.read_values.sort_unstable_by_key(|&(ordinal, _)| ordinal);
                self.completed_reads
                    .push_back(op.read_values.drain(..).map(|(_, v)| v).collect());
            }
            if let Some(submitted) = op.submitted {
                let now = *now.get_or_insert_with(Instant::now);
                let wall = ns_between(submitted, now);
                match op.op {
                    Op::Write => self.op_write_wall.record(wall),
                    Op::Read => self.op_read_wall.record(wall),
                }
                self.runtime.op_completed();
            }
            for (lane, latencies) in &op.page_latencies {
                let stats = match op.op {
                    Op::Write => &mut self.lane_write_latency[*lane as usize],
                    Op::Read => &mut self.lane_read_latency[*lane as usize],
                };
                for &latency in latencies {
                    stats.record(latency);
                }
            }
            self.scheduler.op_begin();
            for (channel, &delta) in op.lane_busy.iter().enumerate() {
                if delta > 0 {
                    self.scheduler.submit(channel as u32, delta);
                }
            }
            let op_latency = self.scheduler.op_complete();
            match op.op {
                Op::Write => self.op_write_latency.record(op_latency),
                Op::Read => self.op_read_latency.record(op_latency),
            }
            self.note_first_failure(op.at_ns);
        }
        Ok(())
    }

    /// Publishes the array-wide BET interval gauges (summed over the cached
    /// lane shard snapshots) to the health runtime. Front-end-only work on
    /// the completion-absorb path; no-op without the health plane.
    fn publish_bet_gauges(&self) {
        if let Some(h) = &self.health {
            let (ecnt, fcnt) = self
                .shards
                .iter()
                .fold((0u64, 0u64), |(e, f), s| (e + s.view.ecnt, f + s.view.fcnt));
            h.set_bet(ecnt, fcnt);
        }
    }

    fn note_first_failure(&mut self, at_ns: u64) {
        if self.first_failure.is_some() {
            return;
        }
        for channel in 0..self.geometry.channels() {
            if let Some(f) = self.lane_failure[channel as usize] {
                self.first_failure = Some(FirstFailure {
                    block: self
                        .geometry
                        .flat_block(channel, f.block)
                        .try_into()
                        .expect("array block index exceeds u32"),
                    host_ns: at_ns,
                    total_erases: f.total_erases,
                });
                return;
            }
        }
    }

    /// Awaits exactly one completion (lockstep mode), updating the shard
    /// cache and per-lane wear-out state.
    fn await_one(&mut self) -> Result<LaneCompletion, SimError> {
        let completion = self
            .completions
            .pop()
            .expect("completion queue closed with a command in flight");
        self.shards[completion.lane as usize].absorb(completion.shard);
        self.publish_bet_gauges();
        self.lane_failure[completion.lane as usize] = completion.failure;
        if let Some((_, e)) = completion.error {
            self.error = Some(e);
            return Err(e);
        }
        Ok(completion)
    }

    /// Global coordination in page lockstep: dispatch one page, await it,
    /// then replay the `coordinate_swl` loop against the cached shard
    /// snapshots (which are exact, since every lane is quiescent here).
    fn submit_lockstep(&mut self, event: TraceEvent, data: Option<&[u64]>) -> Result<(), SimError> {
        let submitted = self.metrics.then(Instant::now);
        let channels = self.geometry.channels() as usize;
        let op_seq = self.next_seq;
        self.next_seq += 1;
        let mut lane_busy = vec![0u64; channels];
        let mut op_reads = Vec::new();
        self.scheduler.op_begin();
        for (ordinal, lba) in event.pages().enumerate() {
            let channel = self.geometry.channel_of(lba);
            let token = match (event.op, data) {
                (Op::Write, Some(values)) => values[ordinal],
                (Op::Write, None) => {
                    self.next_token += 1;
                    self.next_token
                }
                (Op::Read, _) => 0,
            };
            self.dispatch(LaneCommand::Exec {
                op_seq,
                lane: channel,
                op: event.op,
                pages: vec![PageCmd {
                    lane_lba: self.geometry.lane_lba(lba),
                    token,
                    ordinal: ordinal as u32,
                }],
            });
            let completion = self.await_one()?;
            lane_busy[channel as usize] += completion.busy_delta;
            let page_latency = completion.page_latencies[0];
            match event.op {
                Op::Write => {
                    // The virtual-time loop measures a written page's
                    // latency across the whole `StripedLayer::write`, which
                    // includes coordinator steps that landed on the same
                    // lane — add them in.
                    let swl_on_lane = self.coordinate(op_seq, channel, &mut lane_busy)?;
                    self.lane_write_latency[channel as usize].record(page_latency + swl_on_lane);
                }
                Op::Read => {
                    self.lane_read_latency[channel as usize].record(page_latency);
                    if self.capture_reads {
                        // One page per lockstep command, so the single
                        // captured value is this page's.
                        op_reads.push(
                            completion
                                .read_values
                                .first()
                                .and_then(|&(_, value)| value),
                        );
                    }
                }
            }
        }
        if self.capture_reads && event.op == Op::Read {
            self.completed_reads.push_back(op_reads);
        }
        for (channel, &delta) in lane_busy.iter().enumerate() {
            if delta > 0 {
                self.scheduler.submit(channel as u32, delta);
            }
        }
        let op_latency = self.scheduler.op_complete();
        match event.op {
            Op::Write => self.op_write_latency.record(op_latency),
            Op::Read => self.op_read_latency.record(op_latency),
        }
        if let Some(submitted) = submitted {
            let wall = since_ns(submitted);
            match event.op {
                Op::Write => self.op_write_wall.record(wall),
                Op::Read => self.op_read_wall.record(wall),
            }
            self.runtime.op_completed();
        }
        self.note_first_failure(event.at_ns);
        Ok(())
    }

    /// Replays `StripedLayer::coordinate_swl` against the snapshot cache:
    /// while the global unevenness is over threshold, step the worst shard;
    /// a full fruitless pass over every flag aborts. Returns the SWL busy
    /// time that landed on `page_channel` (for page-latency attribution).
    fn coordinate(
        &mut self,
        op_seq: u64,
        page_channel: u32,
        lane_busy: &mut [u64],
    ) -> Result<u64, SimError> {
        let Some((threshold, _)) = self.swl else {
            return Ok(0);
        };
        let flag_budget: u64 = self.shards.iter().map(|s| s.flags).sum();
        let mut fruitless = 0u64;
        let mut swl_on_channel = 0u64;
        loop {
            let views: Vec<ShardView> = self.shards.iter().map(|s| s.view).collect();
            if !global_over_threshold(&views, threshold) {
                return Ok(swl_on_channel);
            }
            let Some(worst) = worst_shard(&views) else {
                return Ok(swl_on_channel);
            };
            let before = (views[worst].ecnt, views[worst].fcnt);
            self.dispatch(LaneCommand::SwlStep {
                op_seq,
                lane: worst as u32,
            });
            let completion = self.await_one()?;
            lane_busy[worst] += completion.busy_delta;
            if worst as u32 == page_channel {
                swl_on_channel += completion.busy_delta;
            }
            let after = (self.shards[worst].view.ecnt, self.shards[worst].view.fcnt);
            if after == before {
                fruitless += 1;
                if fruitless > flag_budget {
                    return Ok(swl_on_channel);
                }
            } else {
                fruitless = 0;
            }
        }
    }

    /// Drain barrier: blocks until every accepted op has completed and been
    /// finalized in order.
    ///
    /// # Errors
    ///
    /// Returns the first finalized lane error (sticky).
    pub fn flush(&mut self) -> Result<(), SimError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        while !self.pending.is_empty() {
            let completion = self
                .completions
                .pop()
                .expect("completion queue closed with ops in flight");
            self.absorb(completion);
            self.finalize_ready()?;
        }
        Ok(())
    }

    /// Creates CoW snapshot `id` on every lane. Barrier semantics: the
    /// engine is flushed first (so the snapshot covers every submitted
    /// write), then every lane runs the verb and is awaited — a successful
    /// return means the snapshot is durable on all channels.
    ///
    /// # Errors
    ///
    /// The sticky engine error if one is already set, or the failing lane's
    /// error in deterministic (lowest-lane) order. A refusal shared by
    /// *every* lane (duplicate id, unknown snapshot, full manifest) left
    /// the array consistent and is not sticky; divergent per-lane outcomes
    /// wedge the engine like any lane error.
    pub fn snapshot_create(&mut self, id: u64) -> Result<(), SimError> {
        self.admin(AdminVerb::Create(id))
    }

    /// Deletes snapshot `id` on every lane (barrier, like
    /// [`Engine::snapshot_create`]).
    ///
    /// # Errors
    ///
    /// As for [`Engine::snapshot_create`].
    pub fn snapshot_delete(&mut self, id: u64) -> Result<(), SimError> {
        self.admin(AdminVerb::Delete(id))
    }

    /// Rolls every lane back to snapshot `id` (barrier, like
    /// [`Engine::snapshot_create`]). The caller owns invalidating any
    /// host-side caches of the pre-rollback image.
    ///
    /// # Errors
    ///
    /// As for [`Engine::snapshot_create`].
    pub fn snapshot_clone(&mut self, id: u64) -> Result<(), SimError> {
        self.admin(AdminVerb::Clone(id))
    }

    /// Merges snapshot `id` into the live image on every lane and drops it
    /// (barrier, like [`Engine::snapshot_create`]).
    ///
    /// # Errors
    ///
    /// As for [`Engine::snapshot_create`].
    pub fn snapshot_merge(&mut self, id: u64) -> Result<(), SimError> {
        self.admin(AdminVerb::Merge(id))
    }

    /// Runs a management verb on every lane at a barrier: flush, dispatch
    /// to all lanes, await all acknowledgements. Admin device time is
    /// charged to the lanes' busy clocks but not to the virtual-time op
    /// scheduler — management verbs sit outside the host op stream (they
    /// do not count as engine events), so per-op latency stats stay
    /// comparable with admin-free runs.
    fn admin(&mut self, verb: AdminVerb) -> Result<(), SimError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.flush()?;
        let channels = self.geometry.channels();
        let op_seq = self.next_seq;
        self.next_seq += 1;
        for lane in 0..channels {
            self.dispatch(LaneCommand::Admin { op_seq, lane, verb });
        }
        let mut first: Option<(u32, SimError)> = None;
        let mut errors = 0u32;
        let mut uniform = true;
        for _ in 0..channels {
            let completion = self
                .completions
                .pop()
                .expect("completion queue closed with an admin verb in flight");
            self.shards[completion.lane as usize].absorb(completion.shard);
            self.lane_failure[completion.lane as usize] = completion.failure;
            if let Some((_, e)) = completion.error {
                errors += 1;
                match first {
                    Some((l, prev)) => {
                        uniform = uniform && prev == e;
                        if l > completion.lane {
                            first = Some((completion.lane, e));
                        }
                    }
                    None => first = Some((completion.lane, e)),
                }
            }
        }
        self.publish_bet_gauges();
        // The admin op consumed a sequence number with no pending entry;
        // re-align the finalize cursor so the next Exec op indexes pending
        // correctly (the queue is empty here — we just flushed and
        // barriered).
        self.finalize_next = self.next_seq;
        if let Some((_, e)) = first {
            // When every lane refused with the same error (duplicate id,
            // unknown snapshot, full manifest), no lane mutated anything
            // and the array is still consistent: report the refusal
            // without wedging the engine. Divergent outcomes — some lanes
            // applied the verb, others refused — are a real inconsistency
            // and stick like any lane error.
            if !(uniform && errors == channels) {
                self.error = Some(e);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Drains the finalized read results accumulated since the last call:
    /// one `Vec` per read op in submission order, one `Option<u64>` per
    /// page in op order (`None` for never-written pages). Always empty
    /// unless the engine was built with [`EngineConfig::with_read_capture`].
    /// Call after [`Engine::flush`] to observe every submitted read.
    pub fn take_completed_reads(&mut self) -> Vec<Vec<Option<u64>>> {
        self.completed_reads.drain(..).collect()
    }

    /// Feeds `trace` through the engine with `run_striped`'s stop handling:
    /// horizon/event-count checks at submission, and — under
    /// [`StopCondition::first_failure`] — a per-op barrier so the run stops
    /// at exactly the same event the virtual-time loop would.
    ///
    /// # Errors
    ///
    /// Propagates lane errors in deterministic order.
    pub fn run<I>(&mut self, trace: I, stop: StopCondition) -> Result<(), SimError>
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        for event in trace {
            if let Some(h) = stop.horizon_ns {
                if event.at_ns >= h {
                    break;
                }
            }
            if let Some(m) = stop.max_events {
                if self.events >= m {
                    break;
                }
            }
            self.submit(event)?;
            if stop.at_first_failure {
                self.flush()?;
                if self.first_failure.is_some() {
                    break;
                }
            }
        }
        self.flush()
    }

    /// Closes the queues and joins the workers, returning the lanes in
    /// channel order plus the per-worker wall-clock command histograms in
    /// worker order (empty histograms when metrics were off).
    fn shutdown(&mut self) -> (Vec<Layer<EngineSink>>, Vec<LatencyHistogram>) {
        for q in &self.command_queues {
            q.close();
        }
        let mut lanes: Vec<(u32, Layer<EngineSink>)> = Vec::new();
        let mut worker_hists = Vec::with_capacity(self.workers.len());
        for handle in std::mem::take(&mut self.workers) {
            let (worker_lanes, hist) = handle.join().expect("lane worker panicked");
            lanes.extend(worker_lanes);
            worker_hists.push(hist);
        }
        self.completions.close();
        lanes.sort_by_key(|(channel, _)| *channel);
        (
            lanes.into_iter().map(|(_, layer)| layer).collect(),
            worker_hists,
        )
    }

    /// Flushes, joins the workers, and assembles the run report.
    ///
    /// # Errors
    ///
    /// Returns the first finalized lane error; the engine is torn down
    /// either way.
    pub fn finish(mut self) -> Result<EngineRun, SimError> {
        let flushed = self.flush();
        let (lanes, worker_hists) = self.shutdown();
        flushed?;
        // Snapshot after the join so every worker's wall time is final.
        let metrics = self.metrics.then(|| {
            EngineMetricsReport::new(
                self.snapshot(),
                worker_hists,
                std::mem::take(&mut self.op_write_wall),
                std::mem::take(&mut self.op_read_wall),
            )
        });

        let erase_stats =
            EraseStats::from_counts(lanes.iter().flat_map(|l| l.device().erase_counts()));
        let counters = sum_counters(lanes.iter().map(|l| l.counters()));
        let mut device = DeviceCounters::default();
        let mut device_busy_ns = 0u64;
        for lane in &lanes {
            let c = lane.device().counters();
            device.reads += c.reads;
            device.programs += c.programs;
            device.erases += c.erases;
            device_busy_ns += lane.device().busy_ns();
        }
        let mut write_latency = LatencyStats::new();
        let mut read_latency = LatencyStats::new();
        for lane in 0..lanes.len() {
            write_latency.merge(&self.lane_write_latency[lane]);
            read_latency.merge(&self.lane_read_latency[lane]);
        }

        let report = StripedReport {
            layer: self.kind,
            channels: self.geometry.channels(),
            swl: self.swl,
            coordination: self.coordination,
            events: self.events,
            host_span_ns: self.host_span_ns,
            first_failure: self.first_failure,
            erase_stats,
            counters,
            device,
            device_busy_ns,
            makespan_ns: self.scheduler.makespan_ns(),
            channel_busy_ns: self.scheduler.channel_busy_ns().to_vec(),
            write_latency,
            read_latency,
            op_write_latency: self.op_write_latency.clone(),
            op_read_latency: self.op_read_latency.clone(),
        };
        Ok(EngineRun {
            report,
            lane_write_latency: std::mem::take(&mut self.lane_write_latency),
            lane_read_latency: std::mem::take(&mut self.lane_read_latency),
            threads: self.threads,
            queue_depth: self.queue_depth,
            metrics,
            telemetry: self.telemetry,
            geometry: self.geometry,
            endurance: self.endurance,
            lanes,
        })
    }

    /// Crash-harness teardown: joins the workers (letting already-queued
    /// in-flight commands run — they are unacknowledged, so the host makes
    /// no claim about them) and returns the raw devices in channel order,
    /// ready for `disarm_power_cut` / `power_cycle` / re-mount.
    pub fn into_devices(mut self) -> Vec<NandDevice<EngineSink>> {
        self.shutdown()
            .0
            .into_iter()
            .map(Layer::into_device)
            .collect()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Wake any parked worker so dropped engines don't leak threads
        // blocked on `pop`. Workers joined by `shutdown` already drained.
        for q in &self.command_queues {
            q.close();
        }
        self.completions.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use crate::striped::StripedLayer;
    use flash_trace::{SyntheticTrace, WorkloadSpec};
    use nand::{CellKind, Geometry};

    fn chip() -> Geometry {
        Geometry::new(64, 8, 2048)
    }

    fn spec() -> CellSpec {
        CellKind::Mlc2.spec().with_endurance(1_000_000)
    }

    fn striped_reference(
        kind: LayerKind,
        channels: u32,
        swl: Option<SwlConfig>,
        coordination: SwlCoordination,
        events: u64,
        seed: u64,
    ) -> StripedReport {
        let mut layer = StripedLayer::build(
            kind,
            ChannelGeometry::new(channels, 1, chip()),
            spec(),
            swl,
            coordination,
            &SimConfig::default(),
        )
        .unwrap();
        let pages = layer.logical_pages();
        let trace =
            SyntheticTrace::new(WorkloadSpec::paper(pages).with_seed(seed)).map(move |e| {
                e.widen(4, pages)
            });
        Simulator::new()
            .run_striped(&mut layer, trace, StopCondition::events(events))
            .unwrap()
    }

    fn engine_run(
        kind: LayerKind,
        channels: u32,
        swl: Option<SwlConfig>,
        coordination: SwlCoordination,
        events: u64,
        seed: u64,
        config: EngineConfig,
    ) -> EngineRun {
        let geometry = ChannelGeometry::new(channels, 1, chip());
        let mut engine = Engine::new(
            kind,
            geometry,
            spec(),
            swl,
            coordination,
            &SimConfig::default(),
            config,
        )
        .unwrap();
        let logical = engine.logical_pages();
        let trace = SyntheticTrace::new(WorkloadSpec::paper(logical).with_seed(seed))
            .map(move |e| e.widen(4, logical));
        engine.run(trace, StopCondition::events(events)).unwrap();
        engine.finish().unwrap()
    }

    #[test]
    fn pipelined_engine_matches_virtual_time_report() {
        for threads in [1u32, 2] {
            let reference = striped_reference(
                LayerKind::Ftl,
                2,
                Some(SwlConfig::new(64, 0).with_seed(11)),
                SwlCoordination::PerChannel,
                3_000,
                7,
            );
            let run = engine_run(
                LayerKind::Ftl,
                2,
                Some(SwlConfig::new(64, 0).with_seed(11)),
                SwlCoordination::PerChannel,
                3_000,
                7,
                EngineConfig::default()
                    .with_threads(threads)
                    .with_queue_depth(16),
            );
            assert_eq!(run.report, reference, "threads={threads}");
        }
    }

    #[test]
    fn lockstep_engine_matches_global_coordination() {
        let reference = striped_reference(
            LayerKind::Nftl,
            2,
            Some(SwlConfig::new(16, 0).with_seed(3)),
            SwlCoordination::Global,
            2_000,
            5,
        );
        let run = engine_run(
            LayerKind::Nftl,
            2,
            Some(SwlConfig::new(16, 0).with_seed(3)),
            SwlCoordination::Global,
            2_000,
            5,
            EngineConfig::default().with_threads(2).with_queue_depth(8),
        );
        assert_eq!(run.report, reference);
    }

    #[test]
    fn telemetry_merge_starts_with_meta_and_is_thread_invariant() {
        let run_with = |threads: u32| {
            engine_run(
                LayerKind::Ftl,
                2,
                None,
                SwlCoordination::PerChannel,
                500,
                21,
                EngineConfig::default()
                    .with_threads(threads)
                    .with_queue_depth(8)
                    .with_telemetry(true),
            )
            .into_telemetry()
        };
        let one = run_with(1);
        let two = run_with(2);
        assert!(matches!(one.first(), Some(Event::Meta { .. })));
        assert!(one.len() > 1);
        assert_eq!(one, two, "merged stream must not depend on thread count");
    }

    #[test]
    fn metrics_account_for_work_and_stay_in_bounds() {
        let run = engine_run(
            LayerKind::Ftl,
            2,
            Some(SwlConfig::new(64, 0).with_seed(11)),
            SwlCoordination::PerChannel,
            2_000,
            7,
            EngineConfig::default()
                .with_threads(2)
                .with_queue_depth(8)
                .with_metrics(true),
        );
        let metrics = run.metrics.as_ref().expect("metrics were enabled");
        let snapshot = &metrics.snapshot;
        assert_eq!(snapshot.ops_submitted, 2_000);
        assert_eq!(snapshot.ops_completed, 2_000);
        assert_eq!(snapshot.workers.len(), 2);
        assert_eq!(snapshot.lanes.len(), 2);
        let commands: u64 = snapshot.workers.iter().map(|w| w.commands).sum();
        assert!(commands > 0, "workers must have executed commands");
        assert_eq!(
            metrics.cmd_latency.count(),
            commands,
            "merged command histogram must cover every command"
        );
        assert_eq!(
            snapshot.lanes.iter().map(|l| l.commands).sum::<u64>(),
            commands,
            "lane tallies must partition worker tallies"
        );
        for worker in &snapshot.workers {
            assert!(worker.busy_ns > 0, "a worker that ran must have busy time");
            assert!(worker.wall_ns >= worker.busy_ns);
            let fractions = worker.busy_frac()
                + worker.starved_frac()
                + worker.backpressure_frac()
                + worker.idle_frac();
            assert!((fractions - 1.0).abs() < 1e-9);
        }
        for queue in snapshot
            .command_queues
            .iter()
            .chain(std::iter::once(&snapshot.completion_queue))
        {
            assert!(queue.high_water <= queue.capacity);
        }
        assert_eq!(
            metrics.op_write_wall.count() + metrics.op_read_wall.count(),
            2_000,
            "every host op must have a wall completion latency"
        );
    }

    #[test]
    fn metrics_handle_reads_mid_run_and_disabled_run_reports_none() {
        let geometry = ChannelGeometry::new(2, 1, chip());
        let mut engine = Engine::new(
            LayerKind::Ftl,
            geometry,
            spec(),
            None,
            SwlCoordination::PerChannel,
            &SimConfig::default(),
            EngineConfig::default()
                .with_threads(2)
                .with_queue_depth(4)
                .with_metrics(true),
        )
        .unwrap();
        let handle = engine.metrics_handle();
        for i in 0..100u64 {
            engine.submit(TraceEvent::write(i * 1_000, i % 64)).unwrap();
        }
        let mid = handle.snapshot();
        assert_eq!(mid.ops_submitted, 100);
        assert!(mid.ops_completed <= 100);
        engine.flush().unwrap();
        let after_flush = handle.snapshot();
        assert_eq!(after_flush.ops_completed, 100);
        drop(engine.finish().unwrap());
        // The handle outlives the engine; counters just stop moving.
        assert_eq!(handle.snapshot().ops_completed, 100);

        let run = engine_run(
            LayerKind::Ftl,
            1,
            None,
            SwlCoordination::PerChannel,
            200,
            3,
            EngineConfig::default(),
        );
        assert!(run.metrics.is_none(), "metrics off must report None");
    }

    #[test]
    fn queue_depth_window_is_enforced() {
        // Submitting more ops than the depth must still complete exactly
        // once each (backpressure, no lost acks).
        let geometry = ChannelGeometry::new(4, 1, chip());
        let mut engine = Engine::new(
            LayerKind::Ftl,
            geometry,
            spec(),
            None,
            SwlCoordination::PerChannel,
            &SimConfig::default(),
            EngineConfig::default().with_threads(2).with_queue_depth(4),
        )
        .unwrap();
        for i in 0..200u64 {
            engine
                .submit(TraceEvent::write(i * 1_000, i % 64))
                .unwrap();
        }
        engine.flush().unwrap();
        let run = engine.finish().unwrap();
        assert_eq!(run.report.events, 200);
        assert_eq!(run.report.counters.host_writes, 200);
    }
}
