//! A bounded multi-producer blocking queue for engine lanes.
//!
//! The execution engine shards work across worker threads through one
//! [`ShardQueue`] per worker (commands) plus one shared queue flowing back
//! (completions). The queue is deliberately tiny — `Mutex<VecDeque>` with two
//! condvars — because the simulator's unit of work (a multi-page flash
//! sub-request) costs microseconds, so queue overhead is irrelevant next to
//! correctness. Bounded capacity is what provides *backpressure*: a host
//! front-end racing ahead of a slow lane blocks in [`ShardQueue::push`]
//! instead of buffering unboundedly.
//!
//! Closing the queue ([`ShardQueue::close`]) makes every producer fail fast
//! and lets consumers drain what is already queued before seeing `None` —
//! the drain-barrier guarantee the engine's `flush` relies on: items
//! accepted before the close are never lost.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPushError {
    /// The queue is at capacity; retry later or use the blocking
    /// [`ShardQueue::push`].
    Full,
    /// The queue was closed; no further items will ever be accepted.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking MPSC/MPMC queue (see module docs).
#[derive(Debug)]
pub struct ShardQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Highest occupancy ever reached, mirrored outside the mutex so
    /// observers (engine snapshots, `engtop`) can read it without
    /// contending with producers and consumers. Updated with `fetch_max`
    /// while the lock is held, so it is monotone and never exceeds
    /// `capacity`.
    high_water: AtomicUsize,
}

impl<T> ShardQueue<T> {
    /// An open queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a zero-capacity rendezvous queue is
    /// never what the engine wants and would deadlock its single-threaded
    /// degenerate configuration.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ShardQueue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            high_water: AtomicUsize::new(0),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Highest occupancy the queue ever reached. Monotone over the queue's
    /// lifetime and never exceeds [`ShardQueue::capacity`]; readable
    /// lock-free at any time.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Whether nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock poisoned").closed
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the item
    /// back when the queue is (or becomes) closed.
    ///
    /// # Errors
    ///
    /// `Err(item)` when the queue is closed; the item was not enqueued.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.high_water
                    .fetch_max(state.items.len(), Ordering::Relaxed);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue lock poisoned");
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// `(item, TryPushError::Full)` at capacity, `(item,
    /// TryPushError::Closed)` after [`ShardQueue::close`]; the item comes
    /// back so the caller can retry with the blocking [`ShardQueue::push`].
    pub fn try_push(&self, item: T) -> Result<(), (T, TryPushError)> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err((item, TryPushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, TryPushError::Full));
        }
        state.items.push_back(item);
        self.high_water
            .fetch_max(state.items.len(), Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and still
    /// open. Returns `None` only once the queue is closed *and* drained, so
    /// no accepted item is ever lost.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Dequeues the oldest item without blocking; `None` when nothing is
    /// queued (whether or not the queue is closed).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let item = state.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: producers fail from now on, consumers drain the
    /// backlog and then see `None`. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_producer() {
        let q = ShardQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_reports_full_then_recovers() {
        let q = ShardQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err((3, TryPushError::Full)));
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_producers_but_drains_consumers() {
        let q = ShardQueue::new(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.try_push("c"), Err(("c", TryPushError::Closed)));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let q = ShardQueue::new(4);
        assert_eq!(q.high_water(), 0);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.high_water(), 2);
        q.try_pop();
        q.try_pop();
        // Draining never lowers the mark.
        assert_eq!(q.high_water(), 2);
        q.push(3).unwrap();
        assert_eq!(q.high_water(), 2, "re-reaching a lower peak keeps the mark");
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = Arc::new(ShardQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is stuck until we pop; then its item must land.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q: Arc<ShardQueue<u32>> = Arc::new(ShardQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
