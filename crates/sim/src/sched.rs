//! Deterministic virtual-time scheduling of per-channel sub-requests.
//!
//! A multi-page host op striped over `C` channels becomes up to `C`
//! sub-requests that run concurrently on independent buses. The simulator
//! stays single-threaded: each channel keeps a *ready time* in virtual
//! nanoseconds, sub-request completions go into an event queue ordered by
//! `(completion time, channel, sequence)`, and the host op finishes when the
//! latest sub-request does. The stable tie-break makes every run
//! bit-reproducible — two completions at the same virtual instant always pop
//! in channel order, regardless of submission order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One sub-request completion in virtual time.
///
/// The derived ordering is the scheduler's tie-break contract: completions
/// sort by time, then channel, then submission sequence, so same-instant
/// events have a total deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Completion {
    /// Virtual time the sub-request finishes.
    pub at_ns: u64,
    /// Channel it ran on.
    pub channel: u32,
    /// Submission sequence number (unique per scheduler lifetime).
    pub seq: u64,
}

/// Min-queue of pending completions with the stable tie-break.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Completion>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a completion.
    pub fn push(&mut self, completion: Completion) {
        self.heap.push(Reverse(completion));
    }

    /// Removes and returns the earliest completion (ties broken by channel,
    /// then sequence).
    pub fn pop(&mut self) -> Option<Completion> {
        self.heap.pop().map(|Reverse(c)| c)
    }

    /// Number of pending completions.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Virtual-time scheduler for a `C`-channel array.
///
/// Usage per host op: [`ChannelScheduler::op_begin`], then one
/// [`ChannelScheduler::submit`] per channel the op touches (with the
/// channel's device-busy delta as the service time), then
/// [`ChannelScheduler::op_complete`], which drains the completions in
/// deterministic order and returns the op's latency — the span from issue to
/// the *latest* sub-request completion.
#[derive(Debug, Clone)]
pub struct ChannelScheduler {
    now_ns: u64,
    issue_ns: u64,
    ready_ns: Vec<u64>,
    busy_ns: Vec<u64>,
    queue: EventQueue,
    next_seq: u64,
}

impl ChannelScheduler {
    /// A scheduler over `channels` independent lanes.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is zero.
    pub fn new(channels: u32) -> Self {
        assert!(channels > 0, "scheduler needs at least one channel");
        Self {
            now_ns: 0,
            issue_ns: 0,
            ready_ns: vec![0; channels as usize],
            busy_ns: vec![0; channels as usize],
            queue: EventQueue::new(),
            next_seq: 0,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.ready_ns.len() as u32
    }

    /// Current virtual time (the completion time of the last host op).
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Starts a host op at the current virtual time.
    pub fn op_begin(&mut self) {
        debug_assert!(self.queue.is_empty(), "previous op not completed");
        self.issue_ns = self.now_ns;
    }

    /// Submits one sub-request of `service_ns` device time to `channel`. The
    /// sub-request starts when the channel is free (its ready time) or at
    /// the op's issue time, whichever is later.
    pub fn submit(&mut self, channel: u32, service_ns: u64) {
        let c = channel as usize;
        let start = self.ready_ns[c].max(self.issue_ns);
        let done = start + service_ns;
        self.ready_ns[c] = done;
        self.busy_ns[c] += service_ns;
        self.queue.push(Completion {
            at_ns: done,
            channel,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    /// Completes the host op: drains every pending sub-request completion in
    /// deterministic order, advances virtual time to the latest one, and
    /// returns the op latency (`0` for an op that touched no channel).
    pub fn op_complete(&mut self) -> u64 {
        let mut finish = self.issue_ns;
        while let Some(c) = self.queue.pop() {
            finish = finish.max(c.at_ns);
        }
        self.now_ns = finish;
        finish - self.issue_ns
    }

    /// Virtual time at which the last channel went idle — the makespan of
    /// everything submitted so far.
    pub fn makespan_ns(&self) -> u64 {
        self.ready_ns.iter().copied().max().unwrap_or(0)
    }

    /// Accumulated busy time per channel.
    pub fn channel_busy_ns(&self) -> &[u64] {
        &self.busy_ns
    }

    /// Achieved parallelism: total busy time across channels divided by the
    /// makespan. `1.0` means fully serial; `C` means perfect overlap on `C`
    /// channels. `None` before any work was submitted.
    pub fn overlap_factor(&self) -> Option<f64> {
        let makespan = self.makespan_ns();
        (makespan > 0).then(|| {
            let total: u64 = self.busy_ns.iter().sum();
            total as f64 / makespan as f64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_ordering_is_time_channel_seq() {
        let mut q = EventQueue::new();
        q.push(Completion { at_ns: 5, channel: 1, seq: 0 });
        q.push(Completion { at_ns: 5, channel: 0, seq: 3 });
        q.push(Completion { at_ns: 4, channel: 3, seq: 1 });
        q.push(Completion { at_ns: 5, channel: 0, seq: 2 });
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                Completion { at_ns: 4, channel: 3, seq: 1 },
                Completion { at_ns: 5, channel: 0, seq: 2 },
                Completion { at_ns: 5, channel: 0, seq: 3 },
                Completion { at_ns: 5, channel: 1, seq: 0 },
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn parallel_subrequests_overlap() {
        let mut s = ChannelScheduler::new(2);
        s.op_begin();
        s.submit(0, 100);
        s.submit(1, 60);
        // Latency is the max, not the sum.
        assert_eq!(s.op_complete(), 100);
        assert_eq!(s.now_ns(), 100);
        assert_eq!(s.channel_busy_ns(), &[100, 60]);
        assert_eq!(s.makespan_ns(), 100);
        let overlap = s.overlap_factor().unwrap();
        assert!((overlap - 1.6).abs() < 1e-12);
    }

    #[test]
    fn same_channel_subrequests_serialize() {
        let mut s = ChannelScheduler::new(2);
        s.op_begin();
        s.submit(0, 100);
        s.submit(0, 50);
        assert_eq!(s.op_complete(), 150, "shared bus serializes");
    }

    #[test]
    fn single_channel_is_fully_serial() {
        let mut s = ChannelScheduler::new(1);
        for service in [70u64, 30, 45] {
            s.op_begin();
            s.submit(0, service);
            assert_eq!(s.op_complete(), service);
        }
        assert_eq!(s.makespan_ns(), 145);
        assert_eq!(s.overlap_factor(), Some(1.0));
    }

    #[test]
    fn empty_op_has_zero_latency() {
        let mut s = ChannelScheduler::new(4);
        s.op_begin();
        assert_eq!(s.op_complete(), 0);
        assert_eq!(s.overlap_factor(), None);
    }

    #[test]
    fn ops_are_sequential_in_virtual_time() {
        // Host ops issue one at a time: op 2 starts when op 1 finished.
        let mut s = ChannelScheduler::new(2);
        s.op_begin();
        s.submit(0, 100);
        s.op_complete();
        s.op_begin();
        s.submit(1, 10);
        s.op_complete();
        // Channel 1 was idle, but its sub-request still starts at t=100.
        assert_eq!(s.now_ns(), 110);
        assert_eq!(s.makespan_ns(), 110);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = ChannelScheduler::new(0);
    }
}
