//! Host-operation latency accounting.
//!
//! The paper argues static wear leveling has "limited overhead", measured
//! in totals (extra erases, extra copies). Firmware engineers also care
//! about the *tail*: a synchronous SWL pass stalls the host write that
//! triggered it for potentially many block erases and page copies. This
//! module collects per-operation device-time histograms so experiments can
//! report medians and tails side by side.
//!
//! The histogram itself lives in `flash-telemetry`
//! ([`flash_telemetry::LatencyHistogram`]): the same type backs the
//! simulator's per-run report and the per-cause tail-latency attribution in
//! [`flash_telemetry::MetricsAggregator`], so
//! [`experiments::attributed_horizon_run`](crate::experiments::attributed_horizon_run)
//! can compare the two bit-exactly with `==`. The alias keeps this crate's
//! historical name.

/// A log₂-bucketed latency histogram with exact count/total/max.
///
/// Alias of [`flash_telemetry::LatencyHistogram`]; see there for the
/// documented relative-error guarantee.
///
/// # Example
///
/// ```
/// use flash_sim::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for latency in [100, 200, 200, 400, 10_000] {
///     stats.record(latency);
/// }
/// assert_eq!(stats.count(), 5);
/// assert_eq!(stats.max_ns(), 10_000);
/// assert!(stats.quantile(0.5) >= 128 && stats.quantile(0.5) <= 512);
/// ```
pub use flash_telemetry::LatencyHistogram as LatencyStats;

#[cfg(test)]
mod tests {
    use super::*;

    // Unit coverage of the histogram lives with the type in
    // `flash_telemetry::hist`; `tests/latency_properties.rs` holds the
    // property tests. Here we only pin that the alias really is the
    // telemetry type, so aggregator histograms compare against simulator
    // histograms without conversion.
    #[test]
    fn alias_is_the_telemetry_histogram() {
        let mut sim_side: LatencyStats = flash_telemetry::LatencyHistogram::new();
        sim_side.record(1_500);
        let mut tel_side = flash_telemetry::LatencyHistogram::new();
        tel_side.record(1_500);
        assert_eq!(sim_side, tel_side);
    }
}
