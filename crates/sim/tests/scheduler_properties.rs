//! Determinism properties of the virtual-time channel scheduler.
//!
//! The striped simulator's reproducibility rests on two pillars: the event
//! queue's stable `(time, channel, sequence)` tie-break, and the fan-out
//! helpers computing the same answer regardless of how many OS threads the
//! sweep runs on. Both are checked here as properties over randomized
//! inputs, plus an end-to-end check that a full striped run is a pure
//! function of its configuration.

use flash_sim::{
    parallel, Completion, EventQueue, LayerKind, SimConfig, Simulator, StopCondition,
    StripedLayer, StripedReport, SwlCoordination,
};
use flash_trace::{SyntheticTrace, WorkloadSpec};
use nand::{CellKind, CellSpec, ChannelGeometry, Geometry};
use proptest::prelude::*;
use swl_core::SwlConfig;

/// Rebuilds a completion triple from one packed `u64` so proptest can
/// shrink it. Times and channels are kept in tiny ranges to force ties.
fn unpack(raw: u64) -> Completion {
    Completion {
        at_ns: raw % 4,
        channel: (raw / 4 % 4) as u32,
        seq: raw / 16 % 8,
    }
}

proptest! {
    /// Popping returns the `(at_ns, channel, seq)`-sorted order no matter
    /// how the entries were pushed — permuting same-timestamp entries in
    /// the ready queue never changes what the scheduler sees.
    #[test]
    fn pop_order_is_insertion_invariant(raw in prop::collection::vec(any::<u64>(), 0..64)) {
        let entries: Vec<Completion> = raw.iter().copied().map(unpack).collect();

        let mut forward = EventQueue::new();
        let mut backward = EventQueue::new();
        let mut interleaved = EventQueue::new();
        for &e in &entries {
            forward.push(e);
        }
        for &e in entries.iter().rev() {
            backward.push(e);
        }
        // A third permutation: evens first, then odds.
        for (i, &e) in entries.iter().enumerate() {
            if i % 2 == 0 {
                interleaved.push(e);
            }
        }
        for (i, &e) in entries.iter().enumerate() {
            if i % 2 == 1 {
                interleaved.push(e);
            }
        }

        let mut sorted = entries.clone();
        sorted.sort();
        let drain = |mut q: EventQueue| -> Vec<Completion> {
            std::iter::from_fn(move || q.pop()).collect()
        };
        prop_assert_eq!(drain(forward), sorted.clone());
        prop_assert_eq!(drain(backward), sorted.clone());
        prop_assert_eq!(drain(interleaved), sorted);
    }
}

fn chip() -> Geometry {
    Geometry::new(32, 8, 2048)
}

fn spec() -> CellSpec {
    CellKind::Mlc2.spec().with_endurance(100)
}

/// One full striped simulation — the unit of work the determinism and
/// thread-sweep properties compare.
fn striped_report(channels: u32, seed: u64) -> StripedReport {
    let geometry = ChannelGeometry::new(channels, 1, chip());
    let mut striped = StripedLayer::build(
        LayerKind::Ftl,
        geometry,
        spec(),
        Some(SwlConfig::new(16, 0).with_seed(seed)),
        SwlCoordination::Global,
        &SimConfig::default(),
    )
    .unwrap();
    let pages = striped.logical_pages();
    let trace = SyntheticTrace::new(WorkloadSpec::paper(pages).with_seed(seed)).map(move |e| e.widen(4, pages));
    Simulator::new()
        .run_striped(&mut striped, trace, StopCondition::events(2_000))
        .unwrap()
}

proptest! {
    /// A striped run is a pure function of `(channels, seed)`: re-running
    /// the identical configuration reproduces the report bit for bit,
    /// including latency histograms and per-channel busy time.
    #[test]
    fn striped_runs_are_reproducible(pick in any::<u64>(), seed in any::<u64>()) {
        let channels = [1u32, 2, 4][(pick % 3) as usize];
        let first = striped_report(channels, seed);
        let again = striped_report(channels, seed);
        prop_assert_eq!(first, again);
    }
}

/// Thread-count invariance: the fan-out helpers must return results in task
/// order with identical contents whether the sweep runs on one thread or
/// many — `SWL_SWEEP_THREADS` is a throughput knob, never a results knob.
#[test]
fn sweep_report_is_thread_count_invariant() {
    let run = |i: usize| striped_report([1u32, 2, 4][i % 3], 0xBEEF + i as u64);
    let serial = parallel::run_indexed_on(1, 6, run);
    for threads in [2usize, 4, 8] {
        let fanned = parallel::run_indexed_on(threads, 6, run);
        assert_eq!(serial, fanned, "{threads} threads changed the report");
    }
}

/// The environment knob itself: `SWL_SWEEP_THREADS` feeds
/// [`parallel::sweep_threads`], which the default fan-out entry points use.
/// Flipping it must not change what a sweep computes. (This test is the
/// only one in this binary touching the variable, so the mutation cannot
/// race with a concurrent reader.)
#[test]
fn threads_env_does_not_change_results() {
    let sweep = || parallel::run_indexed(4, |i| striped_report(2, 0xABBA + i as u64));
    std::env::set_var(parallel::THREADS_ENV, "1");
    let one = sweep();
    std::env::set_var(parallel::THREADS_ENV, "4");
    let four = sweep();
    std::env::remove_var(parallel::THREADS_ENV);
    let auto = sweep();
    assert_eq!(one, four);
    assert_eq!(one, auto);
}
