//! Properties of the write cache's flush-back ordering.
//!
//! The service's crash-consistency argument leans on one cache invariant:
//! the engine must never observe an older value of an LBA after a newer
//! one. The cache earns that by holding exactly one dirty value per LBA
//! (rewrites update in place), so whatever reaches the backend — immediate
//! write-throughs, capacity evictions, watermark batches, or explicit
//! drains — is always the newest value the cache held at that moment.
//!
//! These properties drive a [`WriteCache`] exactly the way the service
//! does (forwarding every returned batch to a recording model backend) over
//! randomized capacities, watermarks, batch sizes, and write/trim/flush
//! mixes, and check:
//!
//! - **per-LBA order preservation** — the backend's value sequence for any
//!   LBA is a subsequence of the client's write sequence for that LBA
//!   (values are globally unique, so "subsequence" is well-defined);
//! - **final-value correctness** — after a final drain, the backend's last
//!   value for an LBA is the client's last write, unless a trim
//!   intervened after it (then the dirty copy was legally dropped);
//! - **bounded RAM** — the dirty count never exceeds capacity;
//! - **counter conservation** — every client write is exactly one of
//!   write-hit, admitted, or write-through, and every backend page is
//!   exactly one write-through or flushed page.

use std::collections::HashMap;

use flash_sim::service::cache::{CacheConfig, WriteCache, WriteOutcome};
use hotid::HotDataConfig;
use proptest::prelude::*;
use swl_core::rng::SplitMix64;

/// One recorded backend submission.
type Backend = Vec<(u64, u64)>;

/// Client-side history: per-LBA write values in order, plus whether a trim
/// happened after the last write.
#[derive(Default)]
struct ClientModel {
    writes: HashMap<u64, Vec<u64>>,
    trimmed_after_write: HashMap<u64, bool>,
}

impl ClientModel {
    fn write(&mut self, lba: u64, value: u64) {
        self.writes.entry(lba).or_default().push(value);
        self.trimmed_after_write.insert(lba, false);
    }

    fn trim(&mut self, lba: u64) {
        self.trimmed_after_write.insert(lba, true);
    }
}

/// Drives `ops` randomized write/trim/flush ops through the cache the way
/// the service does, recording everything the cache tells the caller to
/// put on flash. Returns the backend log and the client history.
fn drive(cache: &mut WriteCache, ops: usize, lbas: u64, seed: u64) -> (Backend, ClientModel) {
    let mut rng = SplitMix64::new(seed);
    let mut backend: Backend = Vec::new();
    let mut client = ClientModel::default();
    let mut next_value = 0u64;
    for _ in 0..ops {
        let lba = rng.next_below(lbas);
        match rng.next_below(12) {
            0 => {
                cache.trim(lba);
                client.trim(lba);
            }
            1 => {
                backend.extend(cache.drain_all());
            }
            _ => {
                next_value += 1;
                client.write(lba, next_value);
                match cache.write(lba, next_value) {
                    WriteOutcome::Absorbed => {}
                    WriteOutcome::Admitted { evicted } => backend.extend(evicted),
                    WriteOutcome::WriteThrough => backend.push((lba, next_value)),
                }
                if cache.need_sync() {
                    backend.extend(cache.take_sync_batch());
                }
            }
        }
        assert!(
            cache.dirty() <= cache.capacity(),
            "dirty {} exceeded capacity {}",
            cache.dirty(),
            cache.capacity()
        );
    }
    backend.extend(cache.drain_all());
    (backend, client)
}

/// Checks `sub` appears within `full` in order.
fn is_subsequence(sub: &[u64], full: &[u64]) -> bool {
    let mut it = full.iter();
    sub.iter().all(|v| it.any(|f| f == v))
}

proptest! {
    /// The flush-back stream preserves per-LBA write order, converges to
    /// the client's last value, and conserves every counter — across
    /// random capacities, watermarks, batch sizes, admission thresholds,
    /// and op mixes.
    #[test]
    fn flush_back_preserves_per_lba_order(
        capacity in 1usize..24,
        watermark in 1usize..24,
        batch in 1usize..12,
        hot_threshold in 1u8..4,
        lbas in 1u64..48,
        ops in 1usize..400,
        seed in 0u64..1_000,
    ) {
        let hot = HotDataConfig {
            hot_threshold,
            ..HotDataConfig::default()
        };
        let mut cache = WriteCache::new(
            CacheConfig {
                capacity,
                sync_watermark: watermark,
                batch,
                hot,
            },
        )
        .expect("valid admission config");
        let (backend, client) = drive(&mut cache, ops, lbas, seed);

        prop_assert_eq!(cache.dirty(), 0, "final drain must empty the cache");

        // Group the backend stream per LBA, preserving submission order.
        let mut backend_per_lba: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(lba, value) in &backend {
            backend_per_lba.entry(lba).or_default().push(value);
        }

        for (lba, written) in &client.writes {
            let flashed = backend_per_lba.remove(lba).unwrap_or_default();
            prop_assert!(
                is_subsequence(&flashed, written),
                "lba {}: backend saw {:?}, not a subsequence of client {:?}",
                lba, flashed, written
            );
            let trimmed = client.trimmed_after_write.get(lba).copied().unwrap_or(false);
            if !trimmed {
                prop_assert_eq!(
                    flashed.last(), written.last(),
                    "lba {}: last flashed value must be the client's last write", lba
                );
            }
        }
        prop_assert!(
            backend_per_lba.is_empty(),
            "backend saw LBAs the client never wrote: {:?}",
            backend_per_lba.keys().collect::<Vec<_>>()
        );

        // Counter conservation: every client write took exactly one path,
        // and every backend page was exactly one write-through or flush.
        let s = cache.sample();
        let total_writes: u64 = client.writes.values().map(|w| w.len() as u64).sum();
        prop_assert_eq!(s.write_hits + s.admitted + s.write_through, total_writes);
        prop_assert_eq!(s.write_through + s.flushed_pages, backend.len() as u64);
        prop_assert!(s.evicted <= s.flushed_pages, "evictions are flushes too");
    }
}
