//! End-to-end gate for causal-span latency attribution.
//!
//! `attributed_horizon_run` rides a `MetricsAggregator` on the device while
//! the simulator measures per-op latency its own way (bracketing
//! `busy_ns` around each host op). The span layer brackets exactly the same
//! window, so the aggregator's histograms must equal the report's
//! **bit-exactly** — same counts, same buckets, same totals — and every
//! nanosecond of host-op device time must land in exactly one attribution
//! cause.

use flash_sim::experiments::{attributed_horizon_run, ExperimentScale, NANOS_PER_YEAR};
use flash_sim::LayerKind;
use flash_telemetry::{SpanCause, SpanKind};

#[test]
fn aggregator_matches_simulator_latency_bit_exactly() {
    let scale = ExperimentScale::quick();
    let horizon = (0.01 * NANOS_PER_YEAR) as u64;
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let (report, metrics) =
            attributed_horizon_run(kind, Some(scale.swl_config(100, 0)), &scale, horizon)
                .expect("instrumented run");
        assert!(report.counters.host_writes > 0, "{kind}: run must do work");

        let check = metrics.span_check();
        assert!(check.is_clean(), "{kind}: span structure broken: {check:?}");

        // The two latency measurements are independent implementations of
        // the same bracket; equality is exact, including bucket contents.
        assert_eq!(
            metrics.op_latency(SpanKind::HostWrite).unwrap(),
            &report.write_latency,
            "{kind}: write histograms diverged"
        );
        assert_eq!(
            metrics.op_latency(SpanKind::HostRead).unwrap(),
            &report.read_latency,
            "{kind}: read histograms diverged"
        );

        // 100% attribution: per-cause totals partition the host-op totals.
        let cause_total: u64 = SpanCause::ALL
            .iter()
            .map(|&c| metrics.cause_latency(c).total_ns())
            .sum();
        assert_eq!(
            cause_total,
            report.write_latency.total_ns() + report.read_latency.total_ns(),
            "{kind}: attribution must cover every nanosecond exactly once"
        );

        // Every host op completed as a root span.
        assert_eq!(
            metrics.spans_completed(),
            report.counters.host_writes + report.counters.host_reads,
            "{kind}: one root span per host op"
        );

        // Write amplification: at least one program per host write.
        assert!(
            metrics.write_amplification() >= 1.0,
            "{kind}: WA {} < 1",
            metrics.write_amplification()
        );
        assert!(metrics.max_write_programs() >= 1);
    }
}

#[test]
fn swl_time_shows_up_under_leveling() {
    // With an aggressive threshold the FTL runs SWL passes synchronously
    // under host writes; the swl cause histogram must see them.
    let scale = ExperimentScale::quick();
    let horizon = (0.01 * NANOS_PER_YEAR) as u64;
    let (_, metrics) =
        attributed_horizon_run(LayerKind::Ftl, Some(scale.swl_config(100, 0)), &scale, horizon)
            .expect("instrumented run");
    let swl = metrics.cause_latency(SpanCause::Swl);
    let gc = metrics.cause_latency(SpanCause::Gc);
    assert!(
        swl.count() + gc.count() > 0,
        "an SWL-enabled run must attribute some time beyond the host cause"
    );
    // The baseline run never invokes SWL, so its swl cause stays empty.
    let (_, baseline) = attributed_horizon_run(LayerKind::Ftl, None, &scale, horizon)
        .expect("baseline instrumented run");
    assert_eq!(baseline.cause_latency(SpanCause::Swl).count(), 0);
    assert_eq!(baseline.cause_latency(SpanCause::Merge).count(), 0);
}
