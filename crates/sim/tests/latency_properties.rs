//! Property tests of the latency histogram.

use proptest::prelude::*;

use flash_sim::LatencyStats;

proptest! {
    /// Exact aggregates match a reference computation for any sample set.
    #[test]
    fn aggregates_are_exact(samples in prop::collection::vec(0u64..1_000_000_000, 0..300)) {
        let mut stats = LatencyStats::new();
        for &s in &samples {
            stats.record(s);
        }
        prop_assert_eq!(stats.count(), samples.len() as u64);
        prop_assert_eq!(stats.max_ns(), samples.iter().copied().max().unwrap_or(0));
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        };
        prop_assert!((stats.mean_ns() - mean).abs() < 1e-6);
    }

    /// Quantiles are monotone in q and bracket the data within bucket
    /// resolution (one power of two).
    #[test]
    fn quantiles_are_monotone_and_bracketing(
        samples in prop::collection::vec(1u64..1_000_000_000, 1..300),
    ) {
        let mut stats = LatencyStats::new();
        for &s in &samples {
            stats.record(s);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let values: Vec<u64> = qs.iter().map(|&q| stats.quantile(q)).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles must be monotone: {values:?}");
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        // Bucket upper bounds: q=1.0 within one bucket above the true max,
        // q→0 at least the bucket floor of the true min.
        prop_assert!(stats.quantile(1.0) >= max);
        prop_assert!(stats.quantile(1.0) <= max.next_power_of_two().max(1) * 2);
        prop_assert!(stats.quantile(0.0) * 2 + 1 >= min);
    }

    /// Merging two histograms equals recording the concatenation.
    #[test]
    fn merge_equals_concatenation(
        a in prop::collection::vec(0u64..1_000_000, 0..150),
        b in prop::collection::vec(0u64..1_000_000, 0..150),
    ) {
        let mut left = LatencyStats::new();
        for &s in &a {
            left.record(s);
        }
        let mut right = LatencyStats::new();
        for &s in &b {
            right.record(s);
        }
        left.merge(&right);

        let mut both = LatencyStats::new();
        for &s in a.iter().chain(b.iter()) {
            both.record(s);
        }
        prop_assert_eq!(left, both);
    }
}
