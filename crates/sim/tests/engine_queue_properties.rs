//! Properties of the engine's bounded MPSC lane queues.
//!
//! The threaded engine's bit-exactness argument leans on three queue
//! behaviors: items from one producer are delivered in the order that
//! producer pushed them (per-lane FIFO), a full queue applies backpressure
//! instead of dropping or reordering, and closing a queue acts as a drain
//! barrier — every item accepted before the close is still delivered, and
//! nothing is lost or duplicated. Each is checked here as a property over
//! randomized producer counts, item counts, and capacities, with real OS
//! threads on both sides of the queue.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use flash_sim::engine::queue::{ShardQueue, TryPushError};
use proptest::prelude::*;

/// Tagged queue item: `(producer id, per-producer sequence number)`.
type Tagged = (usize, u64);

/// Spawns `producers` threads that each blocking-push `per_producer` tagged
/// items, drains the queue from this thread until every producer is done,
/// and returns the items in arrival order.
fn run_producers(producers: usize, per_producer: u64, capacity: usize) -> Vec<Tagged> {
    let queue = Arc::new(ShardQueue::<Tagged>::new(capacity));
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let q = Arc::clone(&queue);
            thread::spawn(move || {
                for seq in 0..per_producer {
                    q.push((p, seq)).expect("queue closed under producer");
                }
            })
        })
        .collect();

    let total = producers as u64 * per_producer;
    let mut received = Vec::with_capacity(total as usize);
    while (received.len() as u64) < total {
        received.push(queue.pop().expect("queue closed with items outstanding"));
    }
    for handle in handles {
        handle.join().expect("producer panicked");
    }
    received
}

proptest! {
    /// Per-producer FIFO under concurrent submitters: however the arrivals
    /// interleave across producers, each producer's own items come out in
    /// push order with nothing lost or duplicated. This is the property the
    /// engine relies on for per-lane page ordering when several host ops
    /// are in flight.
    #[test]
    fn per_producer_order_survives_concurrency(
        producers in 1usize..5,
        per_producer in 1u64..60,
        capacity in 1usize..9,
    ) {
        let received = run_producers(producers, per_producer, capacity);

        let mut next = vec![0u64; producers];
        for (p, seq) in received {
            prop_assert_eq!(
                seq, next[p],
                "producer {} delivered out of order", p
            );
            next[p] += 1;
        }
        for (p, count) in next.iter().enumerate() {
            prop_assert_eq!(*count, per_producer, "producer {} lost items", p);
        }
    }

    /// Backpressure at capacity: `try_push` accepts exactly `capacity`
    /// items, then reports `Full` without mutating the queue; popping one
    /// item frees exactly one slot.
    #[test]
    fn try_push_stops_exactly_at_capacity(capacity in 1usize..32) {
        let queue = ShardQueue::<u64>::new(capacity);
        for i in 0..capacity as u64 {
            prop_assert!(queue.try_push(i).is_ok());
        }
        prop_assert_eq!(queue.len(), capacity);
        prop_assert_eq!(queue.try_push(999), Err((999, TryPushError::Full)));
        prop_assert_eq!(queue.len(), capacity, "rejected push mutated the queue");

        prop_assert_eq!(queue.try_pop(), Some(0));
        prop_assert!(queue.try_push(999).is_ok(), "pop must free a slot");
        prop_assert_eq!(queue.try_push(1000), Err((1000, TryPushError::Full)));
    }

    /// Drain-barrier completeness: concurrent producers fill the queue while
    /// a consumer drains it; once the producers finish, `close()` is the
    /// barrier and the `pop() == None` sentinel must not appear until every
    /// accepted item has been delivered exactly once. This is the engine's
    /// shutdown path — no completion acks may be lost when lanes wind down.
    #[test]
    fn close_is_a_complete_drain_barrier(
        producers in 1usize..4,
        per_producer in 1u64..40,
        capacity in 1usize..5,
    ) {
        let queue = Arc::new(ShardQueue::<Tagged>::new(capacity));
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&queue);
                thread::spawn(move || {
                    for seq in 0..per_producer {
                        q.push((p, seq)).expect("queue closed under producer");
                    }
                })
            })
            .collect();

        // The consumer sees the close only after all items: pop() blocks
        // while the queue is open, returns None only once closed AND empty.
        let consumer = {
            let q = Arc::clone(&queue);
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(item) = q.pop() {
                    seen.push(item);
                }
                seen
            })
        };

        for handle in handles {
            handle.join().expect("producer panicked");
        }
        queue.close();
        let seen = consumer.join().expect("consumer panicked");

        let expected = producers as u64 * per_producer;
        prop_assert_eq!(seen.len() as u64, expected, "acks lost across the barrier");
        let unique: HashSet<Tagged> = seen.iter().copied().collect();
        prop_assert_eq!(unique.len() as u64, expected, "duplicate delivery");
    }

    /// Occupancy gauges under real concurrency: while producers and a
    /// consumer hammer the queue, an independent observer samples `len()`
    /// and `high_water()` the way an `engtop` snapshot does. Every sampled
    /// occupancy must stay within capacity, the high-water mark must be
    /// monotone across samples and itself bounded by capacity, and the
    /// final mark must dominate every occupancy the observer ever saw.
    #[test]
    fn occupancy_and_high_water_stay_bounded_under_concurrency(
        producers in 1usize..4,
        per_producer in 1u64..50,
        capacity in 1usize..7,
    ) {
        let queue = Arc::new(ShardQueue::<Tagged>::new(capacity));
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&queue);
                thread::spawn(move || {
                    for seq in 0..per_producer {
                        q.push((p, seq)).expect("queue closed under producer");
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&queue);
            thread::spawn(move || while q.pop().is_some() {})
        };

        let mut max_seen_len = 0usize;
        let mut last_mark = 0usize;
        while !handles.iter().all(|h| h.is_finished()) {
            let len = queue.len();
            let mark = queue.high_water();
            prop_assert!(len <= capacity, "occupancy {len} over capacity {capacity}");
            prop_assert!(mark <= capacity, "high water {mark} over capacity {capacity}");
            prop_assert!(mark >= last_mark, "high water went backwards: {last_mark} -> {mark}");
            max_seen_len = max_seen_len.max(len);
            last_mark = mark;
            // Keep the observer from starving the workers on small hosts.
            thread::yield_now();
        }
        for handle in handles {
            handle.join().expect("producer panicked");
        }
        queue.close();
        consumer.join().expect("consumer panicked");

        let final_mark = queue.high_water();
        prop_assert!(final_mark >= last_mark);
        prop_assert!(
            final_mark >= max_seen_len,
            "final high water {final_mark} below an observed occupancy {max_seen_len}"
        );
        prop_assert!(final_mark <= capacity);
        prop_assert!(final_mark >= 1, "items flowed, so the mark must have moved");
    }

    /// A closed queue turns producers away with their item handed back —
    /// nothing is silently swallowed after the barrier.
    #[test]
    fn closed_queue_returns_the_item(item in any::<u64>()) {
        let queue = ShardQueue::<u64>::new(4);
        queue.close();
        prop_assert_eq!(queue.push(item), Err(item));
        prop_assert_eq!(queue.try_push(item), Err((item, TryPushError::Closed)));
        prop_assert_eq!(queue.pop(), None);
    }
}
