//! Property tests of the Block Erasing Table.

use proptest::prelude::*;
use swl_core::Bet;

proptest! {
    /// `fcnt` always equals the number of distinct flags marked, for any
    /// block count, group factor and mark sequence.
    #[test]
    fn fcnt_counts_distinct_flags(
        blocks in 1u32..2000,
        k in 0u32..8,
        marks in prop::collection::vec(any::<u32>(), 0..300),
    ) {
        let mut bet = Bet::new(blocks, k);
        let mut distinct = std::collections::HashSet::new();
        for m in marks {
            let block = m % blocks;
            let newly = bet.mark(block);
            let first_time = distinct.insert(block >> k);
            prop_assert_eq!(newly, first_time);
        }
        prop_assert_eq!(bet.fcnt(), distinct.len());
        prop_assert_eq!(bet.all_set(), distinct.len() == bet.flags());
    }

    /// `next_clear` returns the first clear flag in cyclic order, matching
    /// a naive linear reference implementation.
    #[test]
    fn next_clear_matches_reference(
        blocks in 1u32..300,
        k in 0u32..4,
        marks in prop::collection::vec(any::<u32>(), 0..200),
        from in any::<usize>(),
    ) {
        let mut bet = Bet::new(blocks, k);
        for m in marks {
            bet.mark(m % blocks);
        }
        let flags = bet.flags();
        let from = from % flags;
        let reference = (0..flags)
            .map(|i| (from + i) % flags)
            .find(|&f| !bet.test(f));
        prop_assert_eq!(bet.next_clear(from), reference);
    }

    /// Reset restores the pristine state.
    #[test]
    fn reset_is_complete(
        blocks in 1u32..500,
        k in 0u32..6,
        marks in prop::collection::vec(any::<u32>(), 0..100),
    ) {
        let mut bet = Bet::new(blocks, k);
        for m in marks {
            bet.mark(m % blocks);
        }
        bet.reset();
        prop_assert_eq!(bet.fcnt(), 0);
        for f in 0..bet.flags() {
            prop_assert!(!bet.test(f));
        }
        prop_assert_eq!(bet.next_clear(0), Some(0));
    }

    /// The RAM footprint is exactly ceil(flags / 8) bytes and halves (up to
    /// rounding) per k increment.
    #[test]
    fn ram_footprint_formula(blocks in 1u32..100_000, k in 0u32..10) {
        let bet = Bet::new(blocks, k);
        let expected_flags = ((u64::from(blocks) + (1 << k) - 1) >> k) as usize;
        prop_assert_eq!(bet.flags(), expected_flags);
        prop_assert_eq!(bet.ram_bytes(), expected_flags.div_ceil(8));
    }
}
