//! A tiny deterministic PRNG shared by the whole workspace.
//!
//! The paper only needs "a randomly selected block set" after each BET reset
//! (Algorithm 1, step 6), and the trace generators need seeded arrival
//! randomness. A SplitMix64 keeps every crate dependency-free and
//! bit-for-bit reproducible across platforms — exactly what a firmware
//! implementation would ship, and what offline builds require (no external
//! `rand` crate).

use std::ops::Range;

/// SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
///
/// # Example
///
/// ```
/// use swl_core::rng::SplitMix64;
///
/// let mut rng = SplitMix64::new(42);
/// let a = rng.next_u64();
/// assert_ne!(a, rng.next_u64());
/// assert!(rng.range_u64(10..20) < 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via rejection-free Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "range must be non-empty");
        range.start + self.next_below(range.end - range.start)
    }

    /// Uniform value in the closed range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range must be non-empty");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform `usize` in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, range: Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..500 {
            let v = rng.range_u64(10..14);
            assert!((10..14).contains(&v));
            let w = rng.range_inclusive_u64(5, 6);
            assert!((5..=6).contains(&w));
            let u = rng.range_usize(0..9);
            assert!(u < 9);
        }
    }

    #[test]
    fn f64_is_a_unit_uniform() {
        let mut rng = SplitMix64::new(17);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} drifted");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = SplitMix64::new(23);
        let hits = (0..10_000).filter(|_| rng.chance(0.7)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.7).abs() < 0.03, "rate {rate} drifted");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
