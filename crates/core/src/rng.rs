//! A tiny deterministic PRNG for `findex` randomisation.
//!
//! The paper only needs "a randomly selected block set" after each BET reset
//! (Algorithm 1, step 6). A SplitMix64 keeps the crate dependency-free and
//! bit-for-bit reproducible across platforms — exactly what a firmware
//! implementation would ship.

/// SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via rejection-free Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub(crate) fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
