//! # `swl-core` — an efficient static wear leveling design
//!
//! Implementation of the static wear leveling mechanism from
//!
//! > Y.-H. Chang, J.-W. Hsieh, T.-W. Kuo. *Endurance Enhancement of
//! > Flash-Memory Storage Systems: An Efficient Static Wear Leveling
//! > Design.* DAC 2007.
//!
//! **Dynamic** wear leveling (recycling blocks with low erase counts) cannot
//! touch blocks pinned under *cold* data: data that is never updated keeps
//! its blocks young forever while the rest of the chip wears out. **Static**
//! wear leveling fixes this by occasionally forcing cold data to move, so
//! that every block participates in wear.
//!
//! The design has two pieces:
//!
//! - the [`Bet`] (*Block Erasing Table*) — one RAM bit per set of `2^k`
//!   contiguous blocks, recording whether any block of the set was erased in
//!   the current *resetting interval*;
//! - the [`SwLeveler`] — the SWL-Procedure / SWL-BETUpdate pair
//!   (Algorithms 1 and 2 of the paper): when the *unevenness level*
//!   `ecnt / fcnt` reaches a threshold `T`, the leveler cyclically scans the
//!   BET for a cleared flag and asks the garbage collector (the *Cleaner*,
//!   abstracted as [`SwlCleaner`]) to recycle that block set, evicting
//!   whatever cold data sits there.
//!
//! The crate is deliberately independent of any flash translation layer:
//! `ftl` and `nftl` in this workspace plug in through [`SwlCleaner`], as
//! would any host FTL.
//!
//! Two auxiliary modules round out the paper's coverage:
//!
//! - [`persist`] — the dual-buffer snapshot scheme of §3.2 for rebuilding
//!   the BET across power cycles (tolerating a torn newest copy);
//! - [`analysis`] — the closed-form worst-case overhead bounds of §4
//!   (Tables 2 and 3).
//!
//! For multi-channel arrays, [`shard`] computes a *global* unevenness over
//! several per-channel levelers and picks the worst shard for the next
//! SWL-Procedure step ([`SwLeveler::level_step`]).
//!
//! ## Example
//!
//! ```
//! use swl_core::{LevelOutcome, SwLeveler, SwlCleaner, SwlConfig};
//!
//! /// A toy cleaner: erasing a block set just reports the erases back.
//! struct ToyCleaner;
//! impl SwlCleaner for ToyCleaner {
//!     type Error = std::convert::Infallible;
//!     fn erase_block_set(
//!         &mut self,
//!         first_block: u32,
//!         count: u32,
//!         erased: &mut Vec<u32>,
//!     ) -> Result<(), Self::Error> {
//!         erased.extend(first_block..first_block + count);
//!         Ok(())
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 64 blocks, flag granularity 2^0 = 1 block, threshold T = 4.
//! let mut leveler = SwLeveler::new(64, SwlConfig::new(4, 0))?;
//!
//! // Hot traffic hammers block 7: the unevenness level climbs to T.
//! for _ in 0..4 {
//!     leveler.note_erase(7);
//! }
//! assert!(leveler.needs_leveling());
//!
//! // SWL-Procedure now forces cold block sets through garbage collection.
//! let outcome = leveler.level(&mut ToyCleaner)?;
//! assert!(matches!(outcome, LevelOutcome::Leveled { .. }));
//! assert!(!leveler.needs_leveling());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
mod bet;
pub mod counting;
mod leveler;
pub mod persist;
pub mod rng;
pub mod shard;

pub use bet::Bet;
pub use leveler::{LevelOutcome, SwLeveler, SwlCleaner, SwlConfig, SwlError, SwlStats};
pub use shard::{global_over_threshold, global_unevenness, worst_shard, ShardSnapshot, ShardView};
