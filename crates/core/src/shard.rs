//! Global unevenness over several BET shards.
//!
//! A multi-channel array runs one [`SwLeveler`] per channel (a *shard*): each
//! shard watches only its own lane's erases, so its `ecnt`/`fcnt` pair is a
//! local view. The coordinator in the simulator instead levels against the
//! **global** unevenness — the ratio of summed erase counts to summed set
//! flags across all shards — and, when it is over threshold, runs one
//! SWL-Procedure step on the *worst* shard (the one with the highest local
//! ratio).
//!
//! Picking the worst shard is sound because of the mediant inequality:
//!
//! ```text
//! Σeᵢ / Σfᵢ  ≤  max(eᵢ / fᵢ)
//! ```
//!
//! so whenever the global ratio is over `T`, at least one shard is also over
//! `T` locally — the argmax shard — and a step there is always actionable
//! (any shard with `eᵢ > 0` has `fᵢ ≥ 1`, because SWL-BETUpdate sets a flag
//! on the very first erase it observes).
//!
//! Ratios are compared by cross-multiplication in `u128`, so the selection
//! is exact and deterministic (ties break toward the lowest shard index) —
//! no floating point anywhere near the control loop.

use crate::leveler::SwLeveler;

/// One shard's contribution to the global unevenness: its interval-local
/// erase count and set-flag count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardView {
    /// Erases observed this resetting interval (the shard's `ecnt`).
    pub ecnt: u64,
    /// BET flags set this resetting interval (the shard's `fcnt`).
    pub fcnt: u64,
}

impl ShardView {
    /// Snapshot of one leveler's interval counters.
    pub fn of(leveler: &SwLeveler) -> Self {
        Self {
            ecnt: leveler.ecnt(),
            fcnt: leveler.fcnt() as u64,
        }
    }
}

/// An epoch-stamped summary of one shard's leveler state, published at
/// operation boundaries so a coordinator on another thread can drive global
/// leveling without locking the lane.
///
/// The lane owning the leveler takes a snapshot whenever it completes a unit
/// of work (a host sub-request or one SWL-Procedure step) and ships it with
/// the completion; the coordinator keeps the latest snapshot per lane and
/// evaluates [`global_over_threshold`] / [`worst_shard`] over the cached
/// views. Because snapshots are taken at quiescent points of the owning
/// lane, the cached view is exactly the leveler state the lane would report
/// if asked synchronously — there is no torn read to guard against, hence
/// no lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSnapshot {
    /// Interval-local `ecnt` / `fcnt` counters.
    pub view: ShardView,
    /// BET flags currently set (the coordinator's per-pass step budget).
    pub flags: u64,
    /// Publisher-assigned epoch (monotonic per lane): a snapshot with a
    /// higher epoch supersedes any earlier one from the same lane.
    pub epoch: u64,
}

impl ShardSnapshot {
    /// Snapshot of `leveler` stamped with `epoch`.
    pub fn of(leveler: &SwLeveler, epoch: u64) -> Self {
        Self {
            view: ShardView::of(leveler),
            flags: leveler.bet().flags() as u64,
            epoch,
        }
    }

    /// Merges a newly received snapshot into a cached slot, keeping
    /// whichever has the higher epoch (ties keep the incoming one, so a
    /// republished epoch still refreshes the cache).
    pub fn absorb(&mut self, newer: ShardSnapshot) {
        if newer.epoch >= self.epoch {
            *self = newer;
        }
    }
}

/// Global unevenness level `Σecnt / Σfcnt` across shards, or `None` while no
/// shard has a set flag (mirrors [`SwLeveler::unevenness`]).
pub fn global_unevenness(views: &[ShardView]) -> Option<f64> {
    let ecnt: u64 = views.iter().map(|v| v.ecnt).sum();
    let fcnt: u64 = views.iter().map(|v| v.fcnt).sum();
    (fcnt > 0).then(|| ecnt as f64 / fcnt as f64)
}

/// Whether the global unevenness has reached `threshold` — the multi-shard
/// analogue of step 2 of Algorithm 1, evaluated exactly in integers:
/// `Σecnt ≥ T · Σfcnt` with `Σfcnt > 0`.
pub fn global_over_threshold(views: &[ShardView], threshold: u64) -> bool {
    let ecnt: u64 = views.iter().map(|v| v.ecnt).sum();
    let fcnt: u64 = views.iter().map(|v| v.fcnt).sum();
    fcnt > 0 && u128::from(ecnt) >= u128::from(threshold) * u128::from(fcnt)
}

/// Index of the shard with the highest local unevenness `eᵢ / fᵢ`.
///
/// Shards with `fcnt == 0` are skipped (their ratio is undefined and they
/// contribute nothing to the global numerator either, since a shard's first
/// observed erase always sets a flag). Ties break toward the lowest index so
/// the selection is deterministic. Returns `None` when every shard has
/// `fcnt == 0`.
pub fn worst_shard(views: &[ShardView]) -> Option<usize> {
    let mut best: Option<(usize, ShardView)> = None;
    for (i, &v) in views.iter().enumerate() {
        if v.fcnt == 0 {
            continue;
        }
        let beats = match best {
            None => true,
            // v.ecnt / v.fcnt > b.ecnt / b.fcnt, exactly.
            Some((_, b)) => u128::from(v.ecnt) * u128::from(b.fcnt)
                > u128::from(b.ecnt) * u128::from(v.fcnt),
        };
        if beats {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwlConfig;

    fn v(ecnt: u64, fcnt: u64) -> ShardView {
        ShardView { ecnt, fcnt }
    }

    #[test]
    fn of_snapshots_leveler_counters() {
        let mut l = SwLeveler::new(8, SwlConfig::new(10, 1)).unwrap();
        l.note_erase(3);
        l.note_erase(2);
        let view = ShardView::of(&l);
        assert_eq!(view, v(2, 1));
    }

    #[test]
    fn shard_snapshot_carries_flags_and_epoch() {
        let mut l = SwLeveler::new(8, SwlConfig::new(10, 1)).unwrap();
        l.note_erase(3);
        l.note_erase(6);
        let snap = ShardSnapshot::of(&l, 42);
        assert_eq!(snap.view, v(2, 2));
        assert_eq!(snap.flags, l.bet().flags() as u64);
        assert_eq!(snap.epoch, 42);
    }

    #[test]
    fn absorb_keeps_the_newest_epoch() {
        let mut cached = ShardSnapshot {
            view: v(5, 2),
            flags: 2,
            epoch: 7,
        };
        // An older snapshot is ignored...
        cached.absorb(ShardSnapshot {
            view: v(1, 1),
            flags: 1,
            epoch: 3,
        });
        assert_eq!(cached.view, v(5, 2));
        // ...a newer (or equal-epoch) one replaces the cache.
        cached.absorb(ShardSnapshot {
            view: v(9, 3),
            flags: 3,
            epoch: 7,
        });
        assert_eq!(cached.view, v(9, 3));
        cached.absorb(ShardSnapshot {
            view: v(10, 4),
            flags: 4,
            epoch: 8,
        });
        assert_eq!((cached.view, cached.epoch), (v(10, 4), 8));
    }

    #[test]
    fn global_unevenness_sums_shards() {
        assert_eq!(global_unevenness(&[v(0, 0), v(0, 0)]), None);
        assert_eq!(global_unevenness(&[v(6, 1), v(2, 3)]), Some(2.0));
    }

    #[test]
    fn global_threshold_is_exact() {
        // 7/3 < 3 but 9/3 ≥ 3: no float rounding at the boundary.
        assert!(!global_over_threshold(&[v(7, 3)], 3));
        assert!(global_over_threshold(&[v(9, 3)], 3));
        assert!(global_over_threshold(&[v(4, 1), v(5, 2)], 3));
        // No set flags anywhere → never over threshold.
        assert!(!global_over_threshold(&[v(0, 0), v(0, 0)], 1));
    }

    #[test]
    fn worst_shard_picks_highest_ratio() {
        assert_eq!(worst_shard(&[v(2, 1), v(9, 2), v(3, 3)]), Some(1));
        assert_eq!(worst_shard(&[v(0, 0), v(1, 1)]), Some(1));
        assert_eq!(worst_shard(&[v(0, 0), v(0, 0)]), None);
    }

    #[test]
    fn worst_shard_ties_break_low() {
        assert_eq!(worst_shard(&[v(4, 2), v(2, 1), v(6, 3)]), Some(0));
    }

    #[test]
    fn worst_shard_exact_on_huge_counts() {
        // Ratios differing by 1 part in 2^60 would collide in f64.
        let a = v(u64::MAX / 2, u64::MAX / 4);
        let b = v(u64::MAX / 2 + 1, u64::MAX / 4);
        assert_eq!(worst_shard(&[a, b]), Some(1));
    }

    #[test]
    fn mediant_inequality_holds() {
        // Σe/Σf ≤ max(eᵢ/fᵢ): whenever the global level is over T, the
        // worst shard is too — the coordinator's progress argument.
        let cases: &[&[ShardView]] = &[
            &[v(8, 1), v(1, 5)],
            &[v(3, 2), v(7, 2), v(0, 0)],
            &[v(100, 1), v(1, 100), v(50, 50)],
        ];
        for views in cases {
            let Some(global) = global_unevenness(views) else {
                continue;
            };
            let worst = worst_shard(views).unwrap();
            let w = views[worst];
            assert!(
                global <= w.ecnt as f64 / w.fcnt as f64 + 1e-12,
                "mediant inequality violated for {views:?}"
            );
            // And the exact integer check agrees at the threshold.
            let t = global.ceil() as u64;
            if global_over_threshold(views, t) {
                assert!(u128::from(w.ecnt) >= u128::from(t) * u128::from(w.fcnt));
            }
        }
    }
}
