//! Closed-form worst-case overhead analysis (§4 of the paper).
//!
//! The worst case for static wear leveling arises when the chip holds
//! `H − 1` blocks of hot data, `C` blocks of cold data, and a single free
//! block (`H + C` blocks in total, Figure 4): hot updates hammer the hot
//! blocks while SWL-Procedure must pry each cold block loose exactly once
//! per resetting interval. Sections 4.2 and 4.3 derive the resulting bounds
//! on extra block erases and extra live-page copyings, reproduced here and
//! checked against the paper's Tables 2 and 3.

/// One (H, C, T) configuration from Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EraseOverheadRow {
    /// Hot-data blocks (including the free block), the paper's `H`.
    pub hot_blocks: u64,
    /// Cold-data blocks, the paper's `C`.
    pub cold_blocks: u64,
    /// Unevenness threshold `T`.
    pub threshold: u64,
    /// Worst-case increased ratio of block erases, as a fraction (0.00946 ⇒
    /// 0.946 %).
    pub increased_ratio: f64,
}

/// One (H, C, T, L) configuration from Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyOverheadRow {
    /// Hot-data blocks, the paper's `H`.
    pub hot_blocks: u64,
    /// Cold-data blocks, the paper's `C`.
    pub cold_blocks: u64,
    /// Unevenness threshold `T`.
    pub threshold: u64,
    /// Average live pages copied per regular GC erase, the paper's `L`.
    pub avg_live_copies: f64,
    /// Pages per block, the paper's `N`.
    pub pages_per_block: u64,
    /// Worst-case increased ratio of live-page copyings, as a fraction.
    pub increased_ratio: f64,
}

/// Worst-case increased ratio of block erases due to static wear leveling
/// (§4.2): `C / (T·(H+C) − C)`.
///
/// # Panics
///
/// Panics if the denominator is not positive (i.e. `T·(H+C) ≤ C`, which
/// cannot occur for `T ≥ 1`).
///
/// # Example
///
/// ```
/// use swl_core::analysis::worst_case_erase_ratio;
///
/// // First row of Table 2: H=256, C=3840, T=100 → 0.946 %.
/// let ratio = worst_case_erase_ratio(256, 3840, 100);
/// assert!((ratio * 100.0 - 0.946).abs() < 5e-4);
/// ```
pub fn worst_case_erase_ratio(hot_blocks: u64, cold_blocks: u64, threshold: u64) -> f64 {
    let interval_erases = threshold * (hot_blocks + cold_blocks);
    assert!(
        interval_erases > cold_blocks,
        "degenerate configuration: T*(H+C) must exceed C"
    );
    cold_blocks as f64 / (interval_erases - cold_blocks) as f64
}

/// Worst-case increased ratio of live-page copyings due to static wear
/// leveling (§4.3): `C·N / ((T·(H+C) − C)·L)`.
///
/// `avg_live_copies` is `L`, the average number of live pages copied when
/// the Cleaner erases a block of hot data; `pages_per_block` is `N`, the
/// pages moved when SWL evicts a cold block (all of them, since cold data is
/// fully live).
///
/// # Panics
///
/// Panics if `avg_live_copies` is not positive or the erase denominator is
/// degenerate (see [`worst_case_erase_ratio`]).
///
/// # Example
///
/// ```
/// use swl_core::analysis::worst_case_copy_ratio;
///
/// // First row of Table 3: H=256, C=3840, T=100, L=16, N=128 → 7.572 %.
/// let ratio = worst_case_copy_ratio(256, 3840, 100, 16.0, 128);
/// assert!((ratio * 100.0 - 7.572).abs() < 5e-3);
/// ```
pub fn worst_case_copy_ratio(
    hot_blocks: u64,
    cold_blocks: u64,
    threshold: u64,
    avg_live_copies: f64,
    pages_per_block: u64,
) -> f64 {
    assert!(avg_live_copies > 0.0, "L must be positive");
    let interval_erases = threshold * (hot_blocks + cold_blocks);
    assert!(
        interval_erases > cold_blocks,
        "degenerate configuration: T*(H+C) must exceed C"
    );
    (cold_blocks * pages_per_block) as f64
        / ((interval_erases - cold_blocks) as f64 * avg_live_copies)
}

/// The four configurations of Table 2 (1 GB MLC×2 chip, 4096 blocks).
pub fn table2_rows() -> Vec<EraseOverheadRow> {
    [
        (256u64, 3840u64, 100u64),
        (2048, 2048, 100),
        (256, 3840, 1000),
        (2048, 2048, 1000),
    ]
    .into_iter()
    .map(|(h, c, t)| EraseOverheadRow {
        hot_blocks: h,
        cold_blocks: c,
        threshold: t,
        increased_ratio: worst_case_erase_ratio(h, c, t),
    })
    .collect()
}

/// The eight configurations of Table 3 (`N = 128` pages per block).
pub fn table3_rows() -> Vec<CopyOverheadRow> {
    let configs: [(u64, u64, u64, f64); 8] = [
        (256, 3840, 100, 16.0),
        (2048, 2048, 100, 16.0),
        (256, 3840, 100, 32.0),
        (2048, 2048, 100, 32.0),
        (256, 3840, 1000, 16.0),
        (2048, 2048, 1000, 16.0),
        (256, 3840, 1000, 32.0),
        (2048, 2048, 1000, 32.0),
    ];
    configs
        .into_iter()
        .map(|(h, c, t, l)| CopyOverheadRow {
            hot_blocks: h,
            cold_blocks: c,
            threshold: t,
            avg_live_copies: l,
            pages_per_block: 128,
            increased_ratio: worst_case_copy_ratio(h, c, t, l, 128),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expected percentages from Table 2 of the paper.
    const TABLE2_EXPECTED: [f64; 4] = [0.946, 0.503, 0.094, 0.050];

    /// Exact-formula percentages for the Table 3 configurations.
    ///
    /// The paper's printed numbers deviate slightly from the exact formula
    /// it derives: rows 2 and 4 print 4.002 % / 2.001 % where the formula
    /// gives 4.020 % / 2.010 % (digit transpositions), and the T = 1000
    /// rows are simply the T = 100 rows divided by ten (the paper's own
    /// `T(H+C) ≫ C` approximation). We assert the exact values; the paper's
    /// figures agree within 0.01 percentage points everywhere else.
    const TABLE3_EXPECTED: [f64; 8] = [7.571, 4.020, 3.786, 2.010, 0.751, 0.400, 0.375, 0.200];

    #[test]
    fn table2_matches_paper() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 4);
        for (row, expected) in rows.iter().zip(TABLE2_EXPECTED) {
            let pct = row.increased_ratio * 100.0;
            assert!(
                (pct - expected).abs() < 5e-3,
                "H={} C={} T={}: got {pct:.3}%, paper says {expected}%",
                row.hot_blocks,
                row.cold_blocks,
                row.threshold
            );
        }
    }

    #[test]
    fn table3_matches_paper() {
        let rows = table3_rows();
        assert_eq!(rows.len(), 8);
        for (row, expected) in rows.iter().zip(TABLE3_EXPECTED) {
            let pct = row.increased_ratio * 100.0;
            assert!(
                (pct - expected).abs() < 5e-3,
                "H={} C={} T={} L={}: got {pct:.3}%, paper says {expected}%",
                row.hot_blocks,
                row.cold_blocks,
                row.threshold,
                row.avg_live_copies
            );
        }
    }

    #[test]
    fn erase_ratio_decreases_with_threshold() {
        let low_t = worst_case_erase_ratio(256, 3840, 100);
        let high_t = worst_case_erase_ratio(256, 3840, 1000);
        assert!(high_t < low_t, "larger T triggers SWL less often");
    }

    #[test]
    fn copy_ratio_scales_inversely_with_l() {
        let l16 = worst_case_copy_ratio(256, 3840, 100, 16.0, 128);
        let l32 = worst_case_copy_ratio(256, 3840, 100, 32.0, 128);
        assert!((l16 / l32 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn approximation_in_paper_is_close() {
        // The paper approximates C/(T(H+C)−C) ≈ C/(T(H+C)) when T(H+C) ≫ C.
        let exact = worst_case_erase_ratio(256, 3840, 1000);
        let approx = 3840.0 / (1000.0 * 4096.0);
        assert!((exact - approx).abs() / exact < 1e-3);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_configuration_rejected() {
        // T=1, H=0 ⇒ T(H+C) == C.
        worst_case_erase_ratio(0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "L must be positive")]
    fn zero_l_rejected() {
        worst_case_copy_ratio(10, 10, 10, 0.0, 128);
    }
}
