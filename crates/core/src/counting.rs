//! A counting wear leveler — the RAM-hungry alternative the BET avoids.
//!
//! The obvious way to do static wear leveling is to keep the **full
//! per-block erase-count table** in RAM and force-recycle the least-worn
//! block whenever the spread `max − min` exceeds a margin Δ. It works, but
//! the table costs 2–4 bytes per block (16 KiB for the paper's 4096-block
//! chip) where the BET costs one *bit* per 2^k blocks (≤ 512 B) — the
//! paper's central memory-footprint argument (§4.1).
//!
//! This module implements that strawman faithfully so the repository can
//! quantify the trade-off (see the `baseline_wl` bench binary): comparable
//! leveling quality, an order of magnitude more controller RAM.
//!
//! # Example
//!
//! ```
//! use swl_core::counting::CountingLeveler;
//!
//! let mut wl = CountingLeveler::new(4, 16); // Δ = 16 over 4 blocks
//! for _ in 0..20 {
//!     wl.note_erase(0);
//! }
//! assert_eq!(wl.pick_victim(), Some(1)); // least-worn block needs a move
//! ```

use std::fmt;

/// Full-table wear leveler: triggers when `max − min` erase counts exceed
/// the margin, pointing at the least-worn block (which, by construction,
/// hoards the coldest data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingLeveler {
    counts: Vec<u32>,
    margin: u32,
    /// Cursor to break ties cyclically (fairness among equally-cold
    /// blocks).
    cursor: u32,
}

impl CountingLeveler {
    /// Creates a leveler over `blocks` blocks with the spread margin Δ.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` or `margin` is zero.
    pub fn new(blocks: u32, margin: u32) -> Self {
        assert!(blocks > 0, "leveler must cover at least one block");
        assert!(margin > 0, "margin must be positive");
        Self {
            counts: vec![0; blocks as usize],
            margin,
            cursor: 0,
        }
    }

    /// Rebuilds the table from device counts (e.g. after a mount).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or `margin` is zero.
    pub fn from_counts(counts: &[u64], margin: u32) -> Self {
        assert!(!counts.is_empty(), "leveler must cover at least one block");
        assert!(margin > 0, "margin must be positive");
        Self {
            counts: counts
                .iter()
                .map(|&c| c.min(u64::from(u32::MAX)) as u32)
                .collect(),
            margin,
            cursor: 0,
        }
    }

    /// Number of blocks covered.
    pub fn blocks(&self) -> u32 {
        self.counts.len() as u32
    }

    /// The spread margin Δ.
    pub fn margin(&self) -> u32 {
        self.margin
    }

    /// Controller RAM held by the erase-count table — contrast with
    /// [`crate::Bet::ram_bytes`].
    pub fn ram_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u32>()
    }

    /// Records an erase of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn note_erase(&mut self, block: u32) {
        self.counts[block as usize] = self.counts[block as usize].saturating_add(1);
    }

    /// Current spread `max − min`.
    pub fn spread(&self) -> u32 {
        let max = self.counts.iter().copied().max().unwrap_or(0);
        let min = self.counts.iter().copied().min().unwrap_or(0);
        max - min
    }

    /// `true` when the spread is at or past the margin.
    pub fn needs_leveling(&self) -> bool {
        self.spread() >= self.margin
    }

    /// The block to force-recycle, when leveling is needed: the least-worn
    /// block, ties broken cyclically. Returns `None` below the margin.
    pub fn pick_victim(&mut self) -> Option<u32> {
        if !self.needs_leveling() {
            return None;
        }
        let blocks = self.counts.len() as u32;
        let min = *self.counts.iter().min().expect("non-empty");
        for step in 0..blocks {
            let b = (self.cursor + step) % blocks;
            if self.counts[b as usize] == min {
                self.cursor = (b + 1) % blocks;
                return Some(b);
            }
        }
        unreachable!("a minimum always exists")
    }
}

impl fmt::Display for CountingLeveler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CountingLeveler({} blocks, margin {}, spread {}, {} B RAM)",
            self.blocks(),
            self.margin,
            self.spread(),
            self.ram_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_below_margin() {
        let mut wl = CountingLeveler::new(4, 10);
        for _ in 0..9 {
            wl.note_erase(2);
        }
        assert_eq!(wl.spread(), 9);
        assert!(!wl.needs_leveling());
        assert_eq!(wl.pick_victim(), None);
    }

    #[test]
    fn picks_least_worn_block() {
        let mut wl = CountingLeveler::new(4, 5);
        for _ in 0..3 {
            wl.note_erase(0);
        }
        for _ in 0..8 {
            wl.note_erase(1);
        }
        wl.note_erase(2);
        // counts: [3, 8, 1, 0] → spread 8 ≥ 5 → min block 3.
        assert_eq!(wl.pick_victim(), Some(3));
    }

    #[test]
    fn ties_break_cyclically() {
        let mut wl = CountingLeveler::new(4, 1);
        wl.note_erase(0);
        // counts [1,0,0,0]: min blocks 1,2,3 — picked round robin.
        assert_eq!(wl.pick_victim(), Some(1));
        assert_eq!(wl.pick_victim(), Some(2));
        assert_eq!(wl.pick_victim(), Some(3));
        assert_eq!(wl.pick_victim(), Some(1));
    }

    #[test]
    fn ram_cost_dwarfs_bet() {
        // The paper's §4.1 point, in numbers: 4096 blocks.
        let wl = CountingLeveler::new(4096, 16);
        let bet = crate::Bet::new(4096, 0);
        assert_eq!(wl.ram_bytes(), 16_384);
        assert_eq!(bet.ram_bytes(), 512);
        assert!(wl.ram_bytes() >= 32 * bet.ram_bytes());
    }

    #[test]
    fn from_counts_restores_state() {
        let wl = CountingLeveler::from_counts(&[5, 2, 9], 3);
        assert_eq!(wl.spread(), 7);
        assert_eq!(wl.blocks(), 3);
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn zero_margin_rejected() {
        CountingLeveler::new(4, 0);
    }

    #[test]
    fn display_summarises() {
        let wl = CountingLeveler::new(8, 4);
        assert!(wl.to_string().contains("8 blocks"));
    }
}
