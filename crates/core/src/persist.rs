//! BET persistence across power cycles (§3.2 of the paper).
//!
//! The BET and the `(ecnt, findex)` pair are saved when the storage system
//! shuts down and reloaded when it is attached, because rescanning every
//! spare area of a large chip at attach time is too slow. Crash resistance
//! uses the classic **dual-buffer** scheme: snapshots alternate between two
//! slots, each carrying a sequence number and a checksum, so a crash that
//! tears the newest copy still leaves the previous one intact. A stale
//! snapshot merely loses a few erase counts, which the mechanism tolerates
//! by design.
//!
//! # Example
//!
//! ```
//! use swl_core::persist::DualBuffer;
//! use swl_core::{SwLeveler, SwlConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut leveler = SwLeveler::new(64, SwlConfig::new(100, 0))?;
//! leveler.note_erase(5);
//!
//! let mut nvram = DualBuffer::new();
//! nvram.save(&leveler);
//!
//! // ... power cycle ...
//! let restored = nvram.recover()?.into_leveler()?;
//! assert_eq!(restored.ecnt(), 1);
//! assert!(restored.bet().test(5));
//! # Ok(())
//! # }
//! ```
//!
//! # What a crash can do, and how recovery answers
//!
//! Power can vanish at any byte of a checkpoint write, so recovery never
//! assumes the newest slot is whole. Walking the timeline of one save:
//!
//! 1. **Before the first byte lands** — the older slot is untouched and
//!    still carries the previous generation. `recover` returns it; the
//!    restored `ecnt`/BET are at most one checkpoint interval stale, which
//!    SWL-Procedure tolerates (a few erase counts are double-counted into
//!    the next interval, never lost from the wear map).
//! 2. **Mid-write** — the slot holds a prefix of the new snapshot or a
//!    splice of old and new bytes. Every decode failure below maps to one
//!    [`PersistError`] variant, and [`DualBuffer::recover`] treats all of
//!    them the same way: skip the slot, fall back to the other one.
//! 3. **After the checksum lands** — the save is durable; the *other* slot
//!    becomes the sacrificial target of the next save. This alternation is
//!    why a single crash can never destroy both generations.
//!
//! Only when *both* slots fail to decode — a fresh device, or two crashes
//! tearing two consecutive saves — does `recover` report
//! [`PersistError::NoValidSnapshot`], and the integrator falls back to a
//! fresh leveler (losing wear history but never data).
//!
//! ## Decode failures, one by one
//!
//! [`PersistError::Truncated`] — the write stopped before the declared
//! payload (or even the header) was complete:
//!
//! ```
//! use swl_core::persist::{PersistError, Snapshot};
//! use swl_core::{SwLeveler, SwlConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let leveler = SwLeveler::new(64, SwlConfig::new(100, 0))?;
//! let bytes = Snapshot::capture(&leveler, 1).encode();
//! let torn = &bytes[..bytes.len() / 2];
//! assert_eq!(Snapshot::decode(torn), Err(PersistError::Truncated));
//! # Ok(())
//! # }
//! ```
//!
//! [`PersistError::BadMagic`] — the slot never held a snapshot (or its
//! first sector was destroyed); nothing after the first four bytes is
//! trusted:
//!
//! ```
//! use swl_core::persist::{PersistError, Snapshot};
//! use swl_core::{SwLeveler, SwlConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let leveler = SwLeveler::new(64, SwlConfig::new(100, 0))?;
//! let mut bytes = Snapshot::capture(&leveler, 1).encode();
//! bytes[0] = b'X';
//! assert_eq!(Snapshot::decode(&bytes), Err(PersistError::BadMagic));
//! # Ok(())
//! # }
//! ```
//!
//! [`PersistError::BadVersion`] — the snapshot is whole but written by an
//! incompatible firmware revision; refusing it beats misreading it:
//!
//! ```
//! use swl_core::persist::{PersistError, Snapshot};
//! use swl_core::{SwLeveler, SwlConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let leveler = SwLeveler::new(64, SwlConfig::new(100, 0))?;
//! let mut bytes = Snapshot::capture(&leveler, 1).encode();
//! bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
//! assert_eq!(
//!     Snapshot::decode(&bytes),
//!     Err(PersistError::BadVersion { found: 9 })
//! );
//! # Ok(())
//! # }
//! ```
//!
//! [`PersistError::BadChecksum`] — the length and header look right but
//! the payload was spliced or bit-flipped; the FNV-1a 64 trailer catches
//! it:
//!
//! ```
//! use swl_core::persist::{PersistError, Snapshot};
//! use swl_core::{SwLeveler, SwlConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let leveler = SwLeveler::new(64, SwlConfig::new(100, 0))?;
//! let mut bytes = Snapshot::capture(&leveler, 1).encode();
//! let middle = bytes.len() / 2;
//! bytes[middle] ^= 0x5A;
//! assert_eq!(Snapshot::decode(&bytes), Err(PersistError::BadChecksum));
//! # Ok(())
//! # }
//! ```
//!
//! [`PersistError::NoValidSnapshot`] — both slots are gone; the caller
//! starts a fresh leveler instead:
//!
//! ```
//! use swl_core::persist::{DualBuffer, PersistError};
//! use swl_core::{SwLeveler, SwlConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let nvram = DualBuffer::new(); // fresh device: nothing ever saved
//! assert_eq!(nvram.recover().unwrap_err(), PersistError::NoValidSnapshot);
//! let fresh = SwLeveler::new(64, SwlConfig::new(100, 0))?;
//! assert_eq!(fresh.ecnt(), 0);
//! # Ok(())
//! # }
//! ```
//!
//! The crash-consistency harness (`tests/crash_consistency.rs` and the
//! `crashmc` binary) drives this exact recovery path at every power-cut
//! point of a live workload and checks the staleness bound end to end.

use std::error::Error;
use std::fmt;

use crate::bet::Bet;
use crate::leveler::{SwLeveler, SwlConfig, SwlError};

const MAGIC: [u8; 4] = *b"SWL1";
const VERSION: u16 = 1;

/// Errors from decoding or recovering a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// The buffer is too short to hold a snapshot header.
    Truncated,
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The checksum over the payload did not verify.
    BadChecksum,
    /// Neither dual-buffer slot held a valid snapshot.
    NoValidSnapshot,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => f.write_str("snapshot buffer truncated"),
            PersistError::BadMagic => f.write_str("snapshot magic mismatch"),
            PersistError::BadVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            PersistError::BadChecksum => f.write_str("snapshot checksum mismatch"),
            PersistError::NoValidSnapshot => f.write_str("no valid snapshot in either slot"),
        }
    }
}

impl Error for PersistError {}

/// A decoded (or captured) leveler snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    blocks: u32,
    k: u32,
    threshold: u64,
    seed: u64,
    config_flags: u8,
    ecnt: u64,
    findex: u64,
    sequence: u64,
    flags: u64,
    words: Vec<u64>,
}

impl Snapshot {
    /// Captures the current state of `leveler` with the given sequence
    /// number (the dual buffer manages sequence numbers for you).
    pub fn capture(leveler: &SwLeveler, sequence: u64) -> Self {
        let config = leveler.config();
        Self {
            blocks: leveler.blocks(),
            k: config.k,
            threshold: config.threshold,
            seed: config.seed,
            config_flags: u8::from(!config.randomize_reset) | (u8::from(config.deferred) << 1),
            ecnt: leveler.ecnt(),
            findex: leveler.findex() as u64,
            sequence,
            flags: leveler.bet().flags() as u64,
            words: leveler.bet().words().to_vec(),
        }
    }

    /// The snapshot's sequence number.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Serialises the snapshot to bytes (fixed little-endian layout plus an
    /// FNV-1a 64 checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.words.len() * 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.config_flags);
        out.push(0); // reserved
        out.extend_from_slice(&self.blocks.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.threshold.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.ecnt.to_le_bytes());
        out.extend_from_slice(&self.findex.to_le_bytes());
        out.extend_from_slice(&self.sequence.to_le_bytes());
        out.extend_from_slice(&self.flags.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialises a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`PersistError`] when the buffer is truncated, carries the
    /// wrong magic or version, or fails its checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        const HEADER: usize = 4 + 2 + 2 + 4 + 4 + 8 * 6 + 4;
        if bytes.len() < HEADER + 8 {
            return Err(PersistError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(PersistError::BadVersion { found: version });
        }
        let config_flags = bytes[6];
        let read_u32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let read_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let blocks = read_u32(8);
        let k = read_u32(12);
        let threshold = read_u64(16);
        let seed = read_u64(24);
        let ecnt = read_u64(32);
        let findex = read_u64(40);
        let sequence = read_u64(48);
        let flags = read_u64(56);
        let nwords = read_u32(64) as usize;
        let body_len = HEADER + nwords * 8;
        if bytes.len() < body_len + 8 {
            return Err(PersistError::Truncated);
        }
        let expected = read_u64(body_len);
        if fnv1a64(&bytes[..body_len]) != expected {
            return Err(PersistError::BadChecksum);
        }
        let words = (0..nwords)
            .map(|i| read_u64(HEADER + i * 8))
            .collect::<Vec<u64>>();
        Ok(Self {
            blocks,
            k,
            threshold,
            seed,
            config_flags,
            ecnt,
            findex,
            sequence,
            flags,
            words,
        })
    }

    /// Rebuilds a [`SwLeveler`] from this snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SwlError`] when the persisted configuration is invalid
    /// (e.g. a zero threshold from a corrupted-but-checksummed source).
    pub fn into_leveler(self) -> Result<SwLeveler, SwlError> {
        let config = SwlConfig {
            threshold: self.threshold,
            k: self.k,
            seed: self.seed,
            randomize_reset: self.config_flags & 1 == 0,
            deferred: self.config_flags & 2 != 0,
        };
        let bet = Bet::from_words(self.words, self.flags as usize, self.k);
        SwLeveler::restore(self.blocks, config, bet, self.ecnt, self.findex as usize)
    }
}

/// Two alternating snapshot slots — the "popular dual buffer concept" the
/// paper cites for crash resistance.
///
/// [`DualBuffer::save`] always overwrites the *older* slot, so the newest
/// complete snapshot survives a crash mid-save. [`DualBuffer::recover`]
/// returns the valid snapshot with the highest sequence number.
#[derive(Debug, Clone, Default)]
pub struct DualBuffer {
    slots: [Option<Vec<u8>>; 2],
    next_sequence: u64,
}

impl DualBuffer {
    /// An empty dual buffer (fresh device).
    pub fn new() -> Self {
        Self::default()
    }

    /// Saves a snapshot of `leveler` into the older slot.
    pub fn save(&mut self, leveler: &SwLeveler) {
        self.next_sequence += 1;
        let snapshot = Snapshot::capture(leveler, self.next_sequence);
        let slot = (self.next_sequence % 2) as usize;
        self.slots[slot] = Some(snapshot.encode());
    }

    /// Recovers the newest valid snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::NoValidSnapshot`] when neither slot decodes.
    pub fn recover(&self) -> Result<Snapshot, PersistError> {
        let mut best: Option<Snapshot> = None;
        for slot in self.slots.iter().flatten() {
            if let Ok(snap) = Snapshot::decode(slot) {
                if best.as_ref().is_none_or(|b| snap.sequence() > b.sequence()) {
                    best = Some(snap);
                }
            }
        }
        best.ok_or(PersistError::NoValidSnapshot)
    }

    /// Mutable access to a raw slot, for fault-injection tests
    /// (simulating a torn or bit-flipped save).
    pub fn slot_mut(&mut self, index: usize) -> Option<&mut Vec<u8>> {
        self.slots[index].as_mut()
    }

    /// Read access to a raw slot.
    pub fn slot(&self, index: usize) -> Option<&[u8]> {
        self.slots[index].as_deref()
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwlConfig;

    fn sample_leveler() -> SwLeveler {
        let mut l = SwLeveler::new(100, SwlConfig::new(50, 2).with_seed(3)).unwrap();
        for b in [0u32, 7, 42, 99] {
            l.note_erase(b);
        }
        l
    }

    #[test]
    fn snapshot_round_trips() {
        let l = sample_leveler();
        let snap = Snapshot::capture(&l, 1);
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        let restored = decoded.into_leveler().unwrap();
        assert_eq!(restored.ecnt(), l.ecnt());
        assert_eq!(restored.fcnt(), l.fcnt());
        assert_eq!(restored.findex(), l.findex());
        assert_eq!(restored.config(), l.config());
        for f in 0..l.bet().flags() {
            assert_eq!(restored.bet().test(f), l.bet().test(f));
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = Snapshot::capture(&sample_leveler(), 1).encode();
        for cut in [0, 4, 10, bytes.len() - 1] {
            assert!(matches!(
                Snapshot::decode(&bytes[..cut]),
                Err(PersistError::Truncated) | Err(PersistError::BadChecksum)
            ));
        }
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = Snapshot::capture(&sample_leveler(), 1).encode();
        bytes[0] ^= 0xFF;
        assert_eq!(Snapshot::decode(&bytes), Err(PersistError::BadMagic));
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut bytes = Snapshot::capture(&sample_leveler(), 1).encode();
        bytes[4] = 0xEE;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(PersistError::BadVersion { found: 0xEE })
        ));
    }

    #[test]
    fn decode_rejects_flipped_payload_bit() {
        let mut bytes = Snapshot::capture(&sample_leveler(), 1).encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(Snapshot::decode(&bytes), Err(PersistError::BadChecksum));
    }

    #[test]
    fn randomize_reset_round_trips() {
        let config = crate::SwlConfig::new(50, 2).with_randomized_reset(false);
        let leveler = SwLeveler::new(100, config).unwrap();
        let snap = Snapshot::capture(&leveler, 1);
        let restored = Snapshot::decode(&snap.encode())
            .unwrap()
            .into_leveler()
            .unwrap();
        assert!(!restored.config().randomize_reset);

        let config = crate::SwlConfig::new(50, 2);
        let leveler = SwLeveler::new(100, config).unwrap();
        let restored = Snapshot::decode(&Snapshot::capture(&leveler, 1).encode())
            .unwrap()
            .into_leveler()
            .unwrap();
        assert!(restored.config().randomize_reset);
    }

    #[test]
    fn deferred_round_trips() {
        for (deferred, randomize) in [(false, false), (false, true), (true, false), (true, true)] {
            let config = crate::SwlConfig::new(50, 2)
                .with_randomized_reset(randomize)
                .with_deferred(deferred);
            let leveler = SwLeveler::new(100, config).unwrap();
            let restored = Snapshot::decode(&Snapshot::capture(&leveler, 1).encode())
                .unwrap()
                .into_leveler()
                .unwrap();
            assert_eq!(restored.config().deferred, deferred);
            assert_eq!(restored.config().randomize_reset, randomize);
        }
    }

    #[test]
    fn dual_buffer_alternates_slots() {
        let l = sample_leveler();
        let mut buf = DualBuffer::new();
        buf.save(&l);
        assert!(buf.slot(1).is_some() && buf.slot(0).is_none());
        buf.save(&l);
        assert!(buf.slot(0).is_some());
        assert_eq!(buf.recover().unwrap().sequence(), 2);
    }

    #[test]
    fn dual_buffer_survives_torn_newest_copy() {
        let mut l = sample_leveler();
        let mut buf = DualBuffer::new();
        buf.save(&l); // seq 1 → slot 1
        l.note_erase(1);
        buf.save(&l); // seq 2 → slot 0
                      // Tear the newest save (slot 0).
        buf.slot_mut(0).unwrap().truncate(12);
        let recovered = buf.recover().unwrap();
        assert_eq!(recovered.sequence(), 1, "falls back to older snapshot");
        let restored = recovered.into_leveler().unwrap();
        assert_eq!(restored.ecnt(), 4, "stale but consistent");
    }

    #[test]
    fn dual_buffer_empty_reports_no_snapshot() {
        assert_eq!(
            DualBuffer::new().recover().unwrap_err(),
            PersistError::NoValidSnapshot
        );
    }

    #[test]
    fn corrupt_both_slots_reports_no_snapshot() {
        let l = sample_leveler();
        let mut buf = DualBuffer::new();
        buf.save(&l);
        buf.save(&l);
        for i in 0..2 {
            buf.slot_mut(i).unwrap()[0] ^= 0xFF;
        }
        assert_eq!(buf.recover().unwrap_err(), PersistError::NoValidSnapshot);
    }

    #[test]
    fn leveling_continues_correctly_after_recovery() {
        // Restore, then verify Algorithm 1 still functions on the state.
        let mut l = SwLeveler::new(4, SwlConfig::new(2, 0)).unwrap();
        for _ in 0..8 {
            l.note_erase(0);
        }
        let mut buf = DualBuffer::new();
        buf.save(&l);
        let mut restored = buf.recover().unwrap().into_leveler().unwrap();
        assert!(restored.needs_leveling());
        struct Eraser;
        impl crate::SwlCleaner for Eraser {
            type Error = std::convert::Infallible;
            fn erase_block_set(
                &mut self,
                first: u32,
                count: u32,
                erased: &mut Vec<u32>,
            ) -> Result<(), Self::Error> {
                erased.extend(first..first + count);
                Ok(())
            }
        }
        restored.level(&mut Eraser).unwrap();
        assert!(!restored.needs_leveling());
    }
}
