//! The Block Erasing Table (§3.2 of the paper).

use std::fmt;

/// The Block Erasing Table: one flag per set of `2^k` contiguous blocks.
///
/// A flag is set when any block in its set is erased during the current
/// resetting interval. `k = 0` is the one-to-one mode (one flag per block);
/// larger `k` trades BET resolution for RAM: a 4 GiB SLC chip needs only
/// 512 B of controller RAM at `k = 3` (Table 1 of the paper).
///
/// # Example
///
/// ```
/// use swl_core::Bet;
///
/// let mut bet = Bet::new(16, 1); // 16 blocks, 2 blocks per flag
/// assert_eq!(bet.flags(), 8);
/// assert!(bet.mark(5));          // first erase in set 2: flag newly set
/// assert!(!bet.mark(4));         // same set: already set
/// assert_eq!(bet.fcnt(), 1);
/// assert!(bet.test(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bet {
    words: Vec<u64>,
    flags: usize,
    k: u32,
    fcnt: usize,
}

impl Bet {
    /// Creates a cleared BET covering `blocks` blocks with `2^k` blocks per
    /// flag.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or if `k > 31`.
    pub fn new(blocks: u32, k: u32) -> Self {
        assert!(blocks > 0, "bet must cover at least one block");
        assert!(k <= 31, "k out of range (max 31)");
        let set = 1u64 << k;
        let flags = u64::from(blocks).div_ceil(set);
        let flags = flags as usize;
        Self {
            words: vec![0; flags.div_ceil(64)],
            flags,
            k,
            fcnt: 0,
        }
    }

    /// The group factor `k`: each flag covers `2^k` blocks.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of blocks covered by one flag (`2^k`).
    pub fn blocks_per_flag(&self) -> u32 {
        1 << self.k
    }

    /// Number of flags — `size(BET)` in the paper's pseudo-code.
    pub fn flags(&self) -> usize {
        self.flags
    }

    /// Number of flags currently set — the paper's `fcnt`.
    pub fn fcnt(&self) -> usize {
        self.fcnt
    }

    /// `true` once every flag is set (the resetting interval is complete).
    pub fn all_set(&self) -> bool {
        self.fcnt == self.flags
    }

    /// Fraction of flags set — how far the current resetting interval has
    /// progressed (0.0 freshly reset, 1.0 at the reset point). Health
    /// introspection: a fill fraction stuck low while `ecnt` grows means
    /// erases are concentrating on few flag groups.
    pub fn fill_frac(&self) -> f64 {
        self.fcnt as f64 / self.flags as f64
    }

    /// RAM footprint of the flag array in bytes (Table 1).
    pub fn ram_bytes(&self) -> usize {
        self.flags.div_ceil(8)
    }

    /// Flag index covering `block` (`block / 2^k`).
    pub fn flag_of(&self, block: u32) -> usize {
        (block >> self.k) as usize
    }

    /// First block of the set covered by `flag`.
    pub fn first_block_of(&self, flag: usize) -> u32 {
        (flag as u32) << self.k
    }

    /// Records an erase of `block` (SWL-BETUpdate's flag half). Returns
    /// `true` when the flag was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `block` is beyond the covered range.
    pub fn mark(&mut self, block: u32) -> bool {
        let flag = self.flag_of(block);
        assert!(flag < self.flags, "block {block} outside bet coverage");
        let (word, bit) = (flag / 64, flag % 64);
        let mask = 1u64 << bit;
        if self.words[word] & mask == 0 {
            self.words[word] |= mask;
            self.fcnt += 1;
            true
        } else {
            false
        }
    }

    /// Tests flag `flag`.
    ///
    /// # Panics
    ///
    /// Panics if `flag >= self.flags()`.
    pub fn test(&self, flag: usize) -> bool {
        assert!(flag < self.flags, "flag {flag} out of range");
        self.words[flag / 64] & (1u64 << (flag % 64)) != 0
    }

    /// Clears every flag, starting a new resetting interval.
    pub fn reset(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
        self.fcnt = 0;
    }

    /// First cleared flag at or cyclically after `from`, or `None` when all
    /// flags are set.
    ///
    /// This is the cyclic scan of Algorithm 1 (steps 9–10), implemented with
    /// word-at-a-time scanning so a 4096-flag BET costs at most 64 word
    /// inspections — the "bounded amount of time" requirement of §3.1.
    pub fn next_clear(&self, from: usize) -> Option<usize> {
        if self.all_set() || self.flags == 0 {
            return None;
        }
        let from = from % self.flags;
        // Scan [from, flags) then [0, from).
        self.scan_clear(from, self.flags)
            .or_else(|| self.scan_clear(0, from))
    }

    fn scan_clear(&self, start: usize, end: usize) -> Option<usize> {
        if start >= end {
            return None;
        }
        let mut idx = start;
        while idx < end {
            let word = idx / 64;
            let bit = idx % 64;
            // Invert: set bits mark *clear* flags; mask off bits below `bit`.
            let inverted = !self.words[word] & (!0u64 << bit);
            if inverted != 0 {
                let found = word * 64 + inverted.trailing_zeros() as usize;
                if found < end {
                    return Some(found);
                }
                return None;
            }
            idx = (word + 1) * 64;
        }
        None
    }

    /// Iterates over the raw flag words (for persistence).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a BET from persisted words, recomputing `fcnt`.
    ///
    /// Bits beyond `flags` are cleared so a corrupt tail cannot inflate
    /// `fcnt`.
    pub(crate) fn from_words(words: Vec<u64>, flags: usize, k: u32) -> Self {
        let mut words = words;
        words.resize(flags.div_ceil(64), 0);
        // Mask tail bits beyond the last flag.
        if !flags.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (flags % 64)) - 1;
            }
        }
        let fcnt = words.iter().map(|w| w.count_ones() as usize).sum();
        Self {
            words,
            flags,
            k,
            fcnt,
        }
    }
}

impl fmt::Display for Bet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BET(k={}, {}/{} flags set, {} B)",
            self.k,
            self.fcnt,
            self.flags,
            self.ram_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_mode_has_flag_per_block() {
        let bet = Bet::new(12, 0);
        assert_eq!(bet.flags(), 12);
        assert_eq!(bet.blocks_per_flag(), 1);
    }

    #[test]
    fn one_to_many_mode_groups_blocks() {
        let bet = Bet::new(12, 2);
        assert_eq!(bet.flags(), 3);
        assert_eq!(bet.blocks_per_flag(), 4);
        assert_eq!(bet.flag_of(0), 0);
        assert_eq!(bet.flag_of(3), 0);
        assert_eq!(bet.flag_of(4), 1);
        assert_eq!(bet.first_block_of(2), 8);
    }

    #[test]
    fn uneven_block_count_rounds_flags_up() {
        let bet = Bet::new(10, 2); // 10 blocks / 4 = 2.5 → 3 flags
        assert_eq!(bet.flags(), 3);
        assert_eq!(bet.flag_of(9), 2);
    }

    #[test]
    fn mark_sets_flag_once() {
        let mut bet = Bet::new(8, 1);
        assert!(bet.mark(2));
        assert!(!bet.mark(3)); // same set
        assert_eq!(bet.fcnt(), 1);
        assert!(bet.test(1));
        assert!(!bet.test(0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut bet = Bet::new(8, 0);
        for b in 0..8 {
            bet.mark(b);
        }
        assert!(bet.all_set());
        bet.reset();
        assert_eq!(bet.fcnt(), 0);
        assert!(!bet.all_set());
        assert!((0..8).all(|f| !bet.test(f)));
    }

    #[test]
    fn ram_bytes_matches_table_1() {
        // Table 1: SLC flash, large-block (2 KiB pages × 64 → 128 KiB blocks).
        // 128 MB → 1024 blocks → k=0: 128 B; 4 GB → 32768 blocks → k=3: 512 B.
        let blocks_128mb = (128u64 << 20) / (128 << 10);
        let bet = Bet::new(blocks_128mb as u32, 0);
        assert_eq!(bet.ram_bytes(), 128);

        let blocks_4gb = (4u64 << 30) / (128 << 10);
        let bet = Bet::new(blocks_4gb as u32, 3);
        assert_eq!(bet.ram_bytes(), 512);
    }

    #[test]
    fn next_clear_finds_cyclically() {
        let mut bet = Bet::new(8, 0);
        for f in [0u32, 1, 2, 5, 6] {
            bet.mark(f);
        }
        // Clear flags: 3, 4, 7.
        assert_eq!(bet.next_clear(0), Some(3));
        assert_eq!(bet.next_clear(4), Some(4));
        assert_eq!(bet.next_clear(5), Some(7));
        assert_eq!(bet.next_clear(7), Some(7));
        // Wrap-around from beyond the last clear flag:
        bet.mark(7);
        assert_eq!(bet.next_clear(5), Some(3));
    }

    #[test]
    fn next_clear_none_when_full() {
        let mut bet = Bet::new(4, 0);
        for b in 0..4 {
            bet.mark(b);
        }
        assert_eq!(bet.next_clear(0), None);
    }

    #[test]
    fn next_clear_spans_word_boundaries() {
        let mut bet = Bet::new(130, 0);
        for b in 0..128 {
            bet.mark(b);
        }
        assert_eq!(bet.next_clear(0), Some(128));
        assert_eq!(bet.next_clear(129), Some(129));
        bet.mark(128);
        bet.mark(129);
        assert_eq!(bet.next_clear(64), None);
    }

    #[test]
    fn from_words_recomputes_fcnt_and_masks_tail() {
        // 10 flags; word has stray bits beyond flag 9 that must be ignored.
        let words = vec![0b1111_1111_1111u64]; // 12 bits set, only 10 valid
        let bet = Bet::from_words(words, 10, 0);
        assert_eq!(bet.fcnt(), 10);
        assert!(bet.all_set());
    }

    #[test]
    #[should_panic(expected = "outside bet coverage")]
    fn mark_out_of_range_panics() {
        let mut bet = Bet::new(4, 0);
        bet.mark(4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn test_out_of_range_panics() {
        let bet = Bet::new(4, 0);
        bet.test(4);
    }

    #[test]
    fn display_reports_occupancy() {
        let mut bet = Bet::new(16, 1);
        bet.mark(0);
        assert_eq!(bet.to_string(), "BET(k=1, 1/8 flags set, 1 B)");
    }
}
