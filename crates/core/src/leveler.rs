//! The SW Leveler: SWL-Procedure and SWL-BETUpdate (§3.3 of the paper).

use std::error::Error;
use std::fmt;

use crate::bet::Bet;
use crate::rng::SplitMix64;
use flash_telemetry::Event;

/// Configuration of the SW Leveler.
///
/// `threshold` is the paper's `T`: static wear leveling triggers when the
/// unevenness level `ecnt / fcnt` reaches `T`. `k` selects the BET
/// granularity (`2^k` blocks per flag).
///
/// # Example
///
/// ```
/// use swl_core::SwlConfig;
///
/// let config = SwlConfig::new(100, 0).with_seed(7);
/// assert_eq!(config.threshold, 100);
/// assert_eq!(config.k, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwlConfig {
    /// Unevenness-level threshold `T` (must be ≥ 1).
    pub threshold: u64,
    /// BET group factor: each flag covers `2^k` blocks.
    pub k: u32,
    /// Seed for the post-reset `findex` randomisation.
    pub seed: u64,
    /// Randomise `findex` after each BET reset (Algorithm 1, step 6). The
    /// paper surmises the sequential scan behaves like random selection
    /// anyway; disable this to ablate the design choice (`findex` then
    /// restarts each interval at flag 0).
    pub randomize_reset: bool,
    /// Defer triggering to an external coordinator: the translation layer
    /// keeps feeding erases through [`SwLeveler::note_erase`] but never
    /// invokes SWL-Procedure on its own. A multi-chip array uses this to
    /// treat each chip's leveler as one *shard* — the coordinator watches
    /// the global unevenness over shard sums (see [`crate::shard`]) and
    /// drives the worst shard with [`SwLeveler::level_step`].
    pub deferred: bool,
}

impl SwlConfig {
    /// Configuration with threshold `T` and group factor `k` (seed 0).
    pub fn new(threshold: u64, k: u32) -> Self {
        Self {
            threshold,
            k,
            seed: 0,
            randomize_reset: true,
            deferred: false,
        }
    }

    /// Replaces the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables post-reset `findex` randomisation.
    pub fn with_randomized_reset(mut self, randomize_reset: bool) -> Self {
        self.randomize_reset = randomize_reset;
        self
    }

    /// Enables or disables deferred (externally coordinated) triggering.
    pub fn with_deferred(mut self, deferred: bool) -> Self {
        self.deferred = deferred;
        self
    }
}

impl Default for SwlConfig {
    /// The paper's most effective setting: `T = 100`, `k = 0`.
    fn default() -> Self {
        Self::new(100, 0)
    }
}

/// Errors from building a [`SwLeveler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SwlError {
    /// The threshold `T` must be at least 1.
    ZeroThreshold,
    /// The chip must have at least one block.
    NoBlocks,
    /// `k` exceeds the supported range (max 31).
    KTooLarge {
        /// The offending group factor.
        k: u32,
    },
}

impl fmt::Display for SwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwlError::ZeroThreshold => f.write_str("unevenness threshold must be at least 1"),
            SwlError::NoBlocks => f.write_str("leveler must cover at least one block"),
            SwlError::KTooLarge { k } => write!(f, "group factor k={k} too large (max 31)"),
        }
    }
}

impl Error for SwlError {}

/// The Cleaner interface the SW Leveler drives.
///
/// A translation layer implements this by running its garbage collector over
/// the requested block range: copying any valid pages elsewhere, updating its
/// address translation, and erasing the blocks. Every block erase performed
/// during the call — the requested ones *and* any collateral erases the GC
/// needed for free space — must be pushed into `erased` so the leveler can
/// run SWL-BETUpdate for each (the paper's re-entrant triggering, made
/// explicit to keep borrows simple).
pub trait SwlCleaner {
    /// Error type surfaced by the garbage collector.
    type Error;

    /// Garbage-collects blocks `first_block .. first_block + count`,
    /// appending the indices of all blocks erased during the call to
    /// `erased`.
    ///
    /// # Errors
    ///
    /// Implementations should fail only on unrecoverable device errors; a
    /// block set with nothing to do must simply erase (or skip) and succeed.
    fn erase_block_set(
        &mut self,
        first_block: u32,
        count: u32,
        erased: &mut Vec<u32>,
    ) -> Result<(), Self::Error>;

    /// Forwards a leveler telemetry event ([`Event::SwlInvoke`],
    /// [`Event::IntervalReset`]) into the Cleaner's sink, if it has one.
    ///
    /// The leveler itself is not generic over a sink; routing its few events
    /// through the Cleaner keeps the type parameter out of `SwLeveler` and
    /// lets each translation layer merge them into its own event stream. The
    /// default implementation drops the event, so plain Cleaners (tests,
    /// custom integrations) need no changes.
    ///
    /// Causal spans are the *caller's* job, not the Cleaner's: the
    /// instrumented translation layers open an `swl` span around the whole
    /// [`SwLeveler::level`] call, so these events — and every erase, copy,
    /// and nested GC/merge span the Cleaner emits while the pass runs —
    /// land inside it and the pass's device time is attributed to SWL.
    fn emit_telemetry(&mut self, event: Event) {
        let _ = event;
    }
}

/// What a call to [`SwLeveler::level`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelOutcome {
    /// The unevenness level was below the threshold; nothing happened.
    Idle,
    /// One or more block sets were garbage-collected and the unevenness
    /// level fell back below the threshold.
    Leveled {
        /// Block sets handed to the Cleaner.
        sets_cleaned: u32,
        /// Total block erases reported back by the Cleaner.
        erases_triggered: u64,
    },
    /// Every BET flag became set: the table was reset, counters cleared and
    /// `findex` re-randomised — a new resetting interval begins.
    IntervalReset {
        /// Block sets handed to the Cleaner before the reset.
        sets_cleaned: u32,
        /// Total block erases reported back by the Cleaner before the reset.
        erases_triggered: u64,
    },
    /// The Cleaner made no progress for a whole lap of the BET (it erased
    /// nothing and set no flags); leveling aborted to guarantee termination.
    Stalled {
        /// Block sets handed to the Cleaner before aborting.
        sets_cleaned: u32,
    },
}

/// Lifetime statistics of a [`SwLeveler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwlStats {
    /// Erases observed via [`SwLeveler::note_erase`] (all causes).
    pub erases_observed: u64,
    /// Block sets handed to the Cleaner by SWL-Procedure.
    pub sets_cleaned: u64,
    /// Erases reported back from SWL-triggered garbage collection.
    pub swl_erases: u64,
    /// Completed resetting intervals (BET resets).
    pub interval_resets: u64,
    /// Calls to [`SwLeveler::level`] that did work.
    pub activations: u64,
}

/// The SW Leveler: Block Erasing Table plus the two procedures of §3.3.
///
/// # Stability
///
/// Choose `T > 2^k` (threshold above blocks-per-flag). Every block set the
/// Cleaner recycles adds up to `2^k` erases to `ecnt` but sets at most one
/// new flag, so with `T ≤ 2^k` an activation can *raise* the unevenness
/// level and cascade into recycling the whole chip before the interval
/// resets. The paper's sweep (`T ≥ 100`, `k ≤ 3`) always satisfies this.
///
/// * [`SwLeveler::note_erase`] is **SWL-BETUpdate** (Algorithm 2): the
///   Cleaner calls it for every block erase.
/// * [`SwLeveler::level`] is **SWL-Procedure** (Algorithm 1): call it after
///   erases (or from a timer); when the unevenness level `ecnt / fcnt`
///   reaches `T` it drives the Cleaner over cold block sets until the level
///   drops or the BET fills up and a new resetting interval starts.
///
/// See the [crate-level example](crate) for a complete round trip.
#[derive(Debug, Clone)]
pub struct SwLeveler {
    config: SwlConfig,
    blocks: u32,
    bet: Bet,
    ecnt: u64,
    findex: usize,
    rng: SplitMix64,
    stats: SwlStats,
    scratch: Vec<u32>,
}

impl SwLeveler {
    /// Creates a leveler for a chip with `blocks` erase blocks.
    ///
    /// # Errors
    ///
    /// Returns [`SwlError::ZeroThreshold`] when `config.threshold == 0`,
    /// [`SwlError::NoBlocks`] when `blocks == 0`, and
    /// [`SwlError::KTooLarge`] when `config.k > 31`.
    pub fn new(blocks: u32, config: SwlConfig) -> Result<Self, SwlError> {
        if config.threshold == 0 {
            return Err(SwlError::ZeroThreshold);
        }
        if blocks == 0 {
            return Err(SwlError::NoBlocks);
        }
        if config.k > 31 {
            return Err(SwlError::KTooLarge { k: config.k });
        }
        Ok(Self {
            config,
            blocks,
            bet: Bet::new(blocks, config.k),
            ecnt: 0,
            findex: 0,
            rng: SplitMix64::new(config.seed),
            stats: SwlStats::default(),
            scratch: Vec::new(),
        })
    }

    /// The configuration this leveler runs with.
    pub fn config(&self) -> SwlConfig {
        self.config
    }

    /// Number of blocks covered.
    pub fn blocks(&self) -> u32 {
        self.blocks
    }

    /// Read-only view of the Block Erasing Table.
    pub fn bet(&self) -> &Bet {
        &self.bet
    }

    /// Total erases observed this resetting interval (the paper's `ecnt`).
    pub fn ecnt(&self) -> u64 {
        self.ecnt
    }

    /// Set flags this resetting interval (the paper's `fcnt`).
    pub fn fcnt(&self) -> usize {
        self.bet.fcnt()
    }

    /// Current scan position (the paper's `findex`).
    pub fn findex(&self) -> usize {
        self.findex
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> SwlStats {
        self.stats
    }

    /// The unevenness level `ecnt / fcnt`, or `None` while `fcnt == 0`.
    pub fn unevenness(&self) -> Option<f64> {
        let fcnt = self.bet.fcnt();
        (fcnt > 0).then(|| self.ecnt as f64 / fcnt as f64)
    }

    /// Fraction of BET flags set this resetting interval (see
    /// [`Bet::fill_frac`]). Health introspection: low fill with high
    /// [`ecnt`](Self::ecnt) means wear is concentrating.
    pub fn bet_fill(&self) -> f64 {
        self.bet.fill_frac()
    }

    /// Headroom before the leveler would activate: how many more erases the
    /// current interval tolerates at the current `fcnt` before
    /// `ecnt / fcnt` reaches the threshold. `None` while `fcnt == 0` (the
    /// threshold test is undefined until a flag is set).
    pub fn erases_to_invoke(&self) -> Option<u64> {
        let fcnt = self.bet.fcnt() as u64;
        (fcnt > 0).then(|| {
            self.config
                .threshold
                .saturating_mul(fcnt)
                .saturating_sub(self.ecnt)
        })
    }

    /// `true` when the unevenness level has reached the threshold and
    /// [`SwLeveler::level`] would act.
    pub fn needs_leveling(&self) -> bool {
        self.over_threshold()
    }

    fn over_threshold(&self) -> bool {
        let fcnt = self.bet.fcnt() as u64;
        fcnt > 0 && self.ecnt >= self.config.threshold.saturating_mul(fcnt)
    }

    /// **SWL-BETUpdate** (Algorithm 2): records that `bindex` was erased.
    ///
    /// Increments `ecnt`; sets the covering BET flag (and thereby `fcnt`)
    /// if it was clear. Returns `true` when the flag was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `bindex` is outside the covered block range.
    pub fn note_erase(&mut self, bindex: u32) -> bool {
        assert!(bindex < self.blocks, "block {bindex} out of range");
        self.ecnt += 1;
        self.stats.erases_observed += 1;
        self.bet.mark(bindex)
    }

    /// **SWL-Procedure** (Algorithm 1): if the unevenness level is at or
    /// above `T`, repeatedly garbage-collect the next block set whose flag
    /// is clear until the level drops, the BET fills (starting a new
    /// resetting interval), or the Cleaner stalls.
    ///
    /// Line-by-line correspondence with the paper's pseudo-code:
    ///
    /// | paper | here |
    /// |---|---|
    /// | 1: `if fcnt = 0 then return` | the `over_threshold` guard (false while `fcnt == 0`) |
    /// | 2: `while ecnt/fcnt ≥ T` | `while self.over_threshold()` (integer form `ecnt ≥ T·fcnt`) |
    /// | 3–8: reset when `fcnt ≥ size(BET)` | `if self.bet.all_set()` → the interval-reset branch → return |
    /// | 9–10: advance `findex` past set flags | [`crate::Bet::next_clear`] cyclic scan |
    /// | 11: `EraseBlockSet(findex, k)` | [`SwlCleaner::erase_block_set`] + `note_erase` feedback |
    /// | 12: `findex ← findex + 1 mod size` | the final cursor bump |
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by the Cleaner; the leveler's
    /// state remains consistent (erases reported before the error are
    /// recorded).
    pub fn level<C: SwlCleaner>(&mut self, cleaner: &mut C) -> Result<LevelOutcome, C::Error> {
        if !self.over_threshold() {
            return Ok(LevelOutcome::Idle);
        }
        self.stats.activations += 1;
        cleaner.emit_telemetry(Event::SwlInvoke {
            ecnt: self.ecnt,
            fcnt: self.bet.fcnt() as u64,
            threshold: self.config.threshold,
        });

        let mut sets_cleaned = 0u32;
        let mut erases_triggered = 0u64;
        let mut fruitless_sets = 0usize;

        while self.over_threshold() {
            if self.bet.all_set() {
                cleaner.emit_telemetry(Event::IntervalReset {
                    interval: self.stats.interval_resets,
                    ecnt: self.ecnt,
                    fcnt: self.bet.fcnt() as u64,
                });
                self.start_new_interval();
                return Ok(LevelOutcome::IntervalReset {
                    sets_cleaned,
                    erases_triggered,
                });
            }

            let (erases, progressed, was_empty) = self.clean_next_set(cleaner)?;
            erases_triggered += erases;
            sets_cleaned += 1;

            // Termination guard (not in the paper, which assumes a
            // cooperative Cleaner): a full BET lap with no erase and no new
            // flag means the Cleaner cannot make progress.
            if was_empty && !progressed {
                fruitless_sets += 1;
                if fruitless_sets >= self.bet.flags() {
                    return Ok(LevelOutcome::Stalled { sets_cleaned });
                }
            } else {
                fruitless_sets = 0;
            }
        }

        Ok(LevelOutcome::Leveled {
            sets_cleaned,
            erases_triggered,
        })
    }

    /// One iteration of the Algorithm-1 loop body, **without** the threshold
    /// check: resets the interval if the BET is full, otherwise cleans
    /// exactly one clear block set and feeds the erases back through
    /// SWL-BETUpdate.
    ///
    /// This is the coordinated-mode entry point (see
    /// [`SwlConfig::deferred`]): an external coordinator that watches a
    /// *global* unevenness over several shards calls this on the worst shard
    /// until the global level drops, instead of letting each shard loop on
    /// its own local level. Returns [`LevelOutcome::IntervalReset`] when the
    /// step reset the interval, [`LevelOutcome::Stalled`] when the Cleaner
    /// neither erased nor flagged anything, and [`LevelOutcome::Leveled`]
    /// with `sets_cleaned == 1` otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the Cleaner's error; erases reported before the error are
    /// recorded.
    pub fn level_step<C: SwlCleaner>(&mut self, cleaner: &mut C) -> Result<LevelOutcome, C::Error> {
        self.stats.activations += 1;
        cleaner.emit_telemetry(Event::SwlInvoke {
            ecnt: self.ecnt,
            fcnt: self.bet.fcnt() as u64,
            threshold: self.config.threshold,
        });
        if self.bet.all_set() {
            cleaner.emit_telemetry(Event::IntervalReset {
                interval: self.stats.interval_resets,
                ecnt: self.ecnt,
                fcnt: self.bet.fcnt() as u64,
            });
            self.start_new_interval();
            return Ok(LevelOutcome::IntervalReset {
                sets_cleaned: 0,
                erases_triggered: 0,
            });
        }
        let (erases_triggered, progressed, was_empty) = self.clean_next_set(cleaner)?;
        if was_empty && !progressed {
            return Ok(LevelOutcome::Stalled { sets_cleaned: 1 });
        }
        Ok(LevelOutcome::Leveled {
            sets_cleaned: 1,
            erases_triggered,
        })
    }

    /// Steps 9–12 of Algorithm 1: advance `findex` to the next clear flag,
    /// hand that block set to the Cleaner, and feed every reported erase
    /// back through SWL-BETUpdate. Returns `(erases, newly_flagged,
    /// cleaner_was_empty)`.
    fn clean_next_set<C: SwlCleaner>(
        &mut self,
        cleaner: &mut C,
    ) -> Result<(u64, bool, bool), C::Error> {
        // Steps 9–10: advance findex cyclically to the next clear flag.
        let target = self
            .bet
            .next_clear(self.findex)
            .expect("a clear flag exists because not all flags are set");
        self.findex = target;

        // Step 11: hand the block set to the Cleaner.
        let first_block = self.bet.first_block_of(target);
        let count = self.bet.blocks_per_flag().min(self.blocks - first_block);
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = cleaner.erase_block_set(first_block, count, &mut scratch);
        // Feed every reported erase through SWL-BETUpdate (the paper's
        // re-entrant Cleaner → SWL-BETUpdate path).
        let mut progressed = false;
        for &erased in &scratch {
            progressed |= self.note_erase(erased);
        }
        let erases = scratch.len() as u64;
        self.stats.swl_erases += erases;
        let was_empty = scratch.is_empty();
        scratch.clear();
        self.scratch = scratch;
        self.stats.sets_cleaned += 1;
        result?;

        // Step 12: move past the set we just cleaned.
        self.findex = (target + 1) % self.bet.flags();
        Ok((erases, progressed, was_empty))
    }

    /// Steps 4–7 of Algorithm 1: clear counters and flags, re-randomise
    /// `findex`.
    fn start_new_interval(&mut self) {
        self.ecnt = 0;
        self.bet.reset();
        self.findex = if self.config.randomize_reset {
            self.rng.next_below(self.bet.flags() as u64) as usize
        } else {
            0
        };
        self.stats.interval_resets += 1;
    }

    /// Restores leveler state from persisted values (see [`crate::persist`]).
    ///
    /// Out-of-range `findex` values are wrapped; `ecnt` is taken as-is. The
    /// paper notes these values "could tolerate some errors", so a stale
    /// snapshot is acceptable.
    pub(crate) fn restore(
        blocks: u32,
        config: SwlConfig,
        bet: Bet,
        ecnt: u64,
        findex: usize,
    ) -> Result<Self, SwlError> {
        let mut leveler = Self::new(blocks, config)?;
        leveler.findex = findex % leveler.bet.flags().max(1);
        leveler.bet = bet;
        leveler.ecnt = ecnt;
        Ok(leveler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    /// Cleaner that erases every requested block and records the calls.
    struct RecordingCleaner {
        calls: Vec<(u32, u32)>,
    }

    impl RecordingCleaner {
        fn new() -> Self {
            Self { calls: Vec::new() }
        }
    }

    impl SwlCleaner for RecordingCleaner {
        type Error = Infallible;
        fn erase_block_set(
            &mut self,
            first_block: u32,
            count: u32,
            erased: &mut Vec<u32>,
        ) -> Result<(), Self::Error> {
            self.calls.push((first_block, count));
            erased.extend(first_block..first_block + count);
            Ok(())
        }
    }

    /// Cleaner that never erases anything.
    struct NoopCleaner;
    impl SwlCleaner for NoopCleaner {
        type Error = Infallible;
        fn erase_block_set(
            &mut self,
            _first_block: u32,
            _count: u32,
            _erased: &mut Vec<u32>,
        ) -> Result<(), Self::Error> {
            Ok(())
        }
    }

    /// Cleaner that fails immediately.
    struct FailingCleaner;
    #[derive(Debug, PartialEq)]
    struct CleanerBroke;
    impl SwlCleaner for FailingCleaner {
        type Error = CleanerBroke;
        fn erase_block_set(
            &mut self,
            _first_block: u32,
            _count: u32,
            _erased: &mut Vec<u32>,
        ) -> Result<(), Self::Error> {
            Err(CleanerBroke)
        }
    }

    #[test]
    fn construction_validates_inputs() {
        assert_eq!(
            SwLeveler::new(8, SwlConfig::new(0, 0)).unwrap_err(),
            SwlError::ZeroThreshold
        );
        assert_eq!(
            SwLeveler::new(0, SwlConfig::new(1, 0)).unwrap_err(),
            SwlError::NoBlocks
        );
        assert_eq!(
            SwLeveler::new(8, SwlConfig::new(1, 32)).unwrap_err(),
            SwlError::KTooLarge { k: 32 }
        );
    }

    #[test]
    fn note_erase_is_algorithm_2() {
        let mut l = SwLeveler::new(8, SwlConfig::new(10, 1)).unwrap();
        assert!(l.note_erase(3)); // sets flag 1
        assert!(!l.note_erase(2)); // same flag
        assert_eq!(l.ecnt(), 2);
        assert_eq!(l.fcnt(), 1);
        assert_eq!(l.unevenness(), Some(2.0));
    }

    #[test]
    fn idle_below_threshold() {
        let mut l = SwLeveler::new(8, SwlConfig::new(100, 0)).unwrap();
        l.note_erase(0);
        let mut cleaner = RecordingCleaner::new();
        assert_eq!(l.level(&mut cleaner).unwrap(), LevelOutcome::Idle);
        assert!(cleaner.calls.is_empty());
    }

    #[test]
    fn idle_when_fcnt_zero() {
        // Step 1 of Algorithm 1: return immediately after a reset.
        let mut l = SwLeveler::new(8, SwlConfig::new(1, 0)).unwrap();
        let mut cleaner = RecordingCleaner::new();
        assert_eq!(l.level(&mut cleaner).unwrap(), LevelOutcome::Idle);
    }

    #[test]
    fn leveling_cleans_cold_sets_until_even() {
        let mut l = SwLeveler::new(4, SwlConfig::new(2, 0)).unwrap();
        // Block 0 erased 8 times: ecnt=8, fcnt=1 → unevenness 8 ≥ 2.
        for _ in 0..8 {
            l.note_erase(0);
        }
        let mut cleaner = RecordingCleaner::new();
        let outcome = l.level(&mut cleaner).unwrap();
        // Each cleaned set adds 1 erase and 1 flag:
        //   after set 1: ecnt 9, fcnt 2 → 4.5 ≥ 2
        //   after set 2: ecnt 10, fcnt 3 → 3.33 ≥ 2
        //   after set 3: ecnt 11, fcnt 4 → all flags set → reset.
        assert_eq!(
            outcome,
            LevelOutcome::IntervalReset {
                sets_cleaned: 3,
                erases_triggered: 3
            }
        );
        assert_eq!(cleaner.calls, vec![(1, 1), (2, 1), (3, 1)]);
        assert_eq!(l.ecnt(), 0);
        assert_eq!(l.fcnt(), 0);
        assert_eq!(l.stats().interval_resets, 1);
    }

    #[test]
    fn leveling_stops_once_threshold_satisfied() {
        let mut l = SwLeveler::new(64, SwlConfig::new(3, 0)).unwrap();
        for _ in 0..6 {
            l.note_erase(0);
        }
        // unevenness 6/1 = 6 ≥ 3; after one cleaned set: 7/2 = 3.5 ≥ 3;
        // after two: 8/3 ≈ 2.67 < 3 → stop.
        let mut cleaner = RecordingCleaner::new();
        let outcome = l.level(&mut cleaner).unwrap();
        assert_eq!(
            outcome,
            LevelOutcome::Leveled {
                sets_cleaned: 2,
                erases_triggered: 2
            }
        );
        assert!(!l.needs_leveling());
    }

    #[test]
    fn cyclic_scan_skips_set_flags() {
        let mut l = SwLeveler::new(4, SwlConfig::new(100, 0)).unwrap();
        l.note_erase(0);
        l.note_erase(1);
        // Force a high unevenness on flag 0/1 only; flags 2,3 clear.
        for _ in 0..400 {
            l.note_erase(0);
        }
        let mut cleaner = RecordingCleaner::new();
        l.level(&mut cleaner).unwrap();
        // First cleaned set must be block 2 (first clear flag from findex 0).
        assert_eq!(cleaner.calls.first(), Some(&(2, 1)));
    }

    #[test]
    fn grouped_mode_cleans_whole_sets() {
        let mut l = SwLeveler::new(8, SwlConfig::new(2, 1)).unwrap();
        for _ in 0..8 {
            l.note_erase(0);
        }
        let mut cleaner = RecordingCleaner::new();
        l.level(&mut cleaner).unwrap();
        assert!(cleaner.calls.iter().all(|&(_, count)| count == 2));
    }

    #[test]
    fn last_partial_set_is_clamped() {
        // 5 blocks, k=1 → flags cover {0,1},{2,3},{4}.
        let mut l = SwLeveler::new(5, SwlConfig::new(1, 1)).unwrap();
        for _ in 0..10 {
            l.note_erase(0);
        }
        let mut cleaner = RecordingCleaner::new();
        l.level(&mut cleaner).unwrap();
        assert!(cleaner.calls.contains(&(4, 1)), "partial set clamped to 1");
    }

    #[test]
    fn stalled_when_cleaner_does_nothing() {
        let mut l = SwLeveler::new(4, SwlConfig::new(1, 0)).unwrap();
        for _ in 0..10 {
            l.note_erase(0);
        }
        let outcome = l.level(&mut NoopCleaner).unwrap();
        assert!(matches!(outcome, LevelOutcome::Stalled { .. }));
    }

    #[test]
    fn cleaner_error_propagates_after_state_update() {
        let mut l = SwLeveler::new(4, SwlConfig::new(1, 0)).unwrap();
        for _ in 0..10 {
            l.note_erase(0);
        }
        assert_eq!(l.level(&mut FailingCleaner).unwrap_err(), CleanerBroke);
        // The set was still counted.
        assert_eq!(l.stats().sets_cleaned, 1);
    }

    #[test]
    fn reset_randomises_findex_deterministically() {
        let build = |seed| {
            let mut l = SwLeveler::new(64, SwlConfig::new(1, 0).with_seed(seed)).unwrap();
            for b in 0..64 {
                for _ in 0..2 {
                    l.note_erase(b);
                }
            }
            let mut cleaner = RecordingCleaner::new();
            // All flags already set: first level() call resets immediately.
            assert!(matches!(
                l.level(&mut cleaner).unwrap(),
                LevelOutcome::IntervalReset {
                    sets_cleaned: 0,
                    ..
                }
            ));
            l.findex()
        };
        assert_eq!(build(9), build(9), "same seed, same findex");
        // Different seeds usually differ; check a couple to avoid flakiness.
        let positions: Vec<usize> = (0..8).map(build).collect();
        assert!(
            positions.windows(2).any(|w| w[0] != w[1]),
            "randomised findex should vary across seeds: {positions:?}"
        );
    }

    #[test]
    fn sequential_reset_mode_restarts_at_zero() {
        let config = SwlConfig::new(1, 0).with_randomized_reset(false);
        let mut l = SwLeveler::new(16, config).unwrap();
        for b in 0..16 {
            l.note_erase(b);
        }
        let mut cleaner = RecordingCleaner::new();
        assert!(matches!(
            l.level(&mut cleaner).unwrap(),
            LevelOutcome::IntervalReset { .. }
        ));
        assert_eq!(l.findex(), 0, "sequential mode restarts the scan at 0");
    }

    #[test]
    fn stats_accumulate() {
        let mut l = SwLeveler::new(8, SwlConfig::new(2, 0)).unwrap();
        for _ in 0..8 {
            l.note_erase(0);
        }
        let mut cleaner = RecordingCleaner::new();
        l.level(&mut cleaner).unwrap();
        let stats = l.stats();
        assert!(stats.activations == 1);
        assert!(stats.sets_cleaned > 0);
        assert_eq!(stats.swl_erases, stats.sets_cleaned); // 1 block per set
        assert_eq!(stats.erases_observed, 8 + stats.swl_erases);
    }

    #[test]
    fn threshold_at_or_below_set_size_cascades_to_full_sweep() {
        // Documented stability condition: with T ≤ 2^k each cleaned set
        // raises the unevenness level (adds 2^k to ecnt, 1 to fcnt), so one
        // activation sweeps the whole chip and resets the interval.
        let mut l = SwLeveler::new(64, SwlConfig::new(8, 3)).unwrap(); // T = 2^k
        for _ in 0..64 {
            l.note_erase(0);
        }
        let mut cleaner = RecordingCleaner::new();
        let outcome = l.level(&mut cleaner).unwrap();
        assert!(
            matches!(
                outcome,
                LevelOutcome::IntervalReset {
                    sets_cleaned: 7,
                    ..
                }
            ),
            "expected a full sweep of the 7 remaining sets, got {outcome:?}"
        );
        // A threshold comfortably above 2^k converges after a few sets:
        // level after n cleanings is (32 + 8n)/(1 + n), dropping below
        // T = 16 at n = 3.
        let mut l = SwLeveler::new(64, SwlConfig::new(16, 3)).unwrap();
        for _ in 0..32 {
            l.note_erase(0);
        }
        let mut cleaner = RecordingCleaner::new();
        let outcome = l.level(&mut cleaner).unwrap();
        assert_eq!(
            outcome,
            LevelOutcome::Leveled {
                sets_cleaned: 3,
                erases_triggered: 24
            }
        );
    }

    #[test]
    fn telemetry_routed_through_cleaner() {
        /// Cleaner that erases everything and keeps the events it is handed.
        struct TelemetryCleaner {
            inner: RecordingCleaner,
            events: Vec<Event>,
        }
        impl SwlCleaner for TelemetryCleaner {
            type Error = Infallible;
            fn erase_block_set(
                &mut self,
                first_block: u32,
                count: u32,
                erased: &mut Vec<u32>,
            ) -> Result<(), Self::Error> {
                self.inner.erase_block_set(first_block, count, erased)
            }
            fn emit_telemetry(&mut self, event: Event) {
                self.events.push(event);
            }
        }

        let mut l = SwLeveler::new(4, SwlConfig::new(2, 0)).unwrap();
        for _ in 0..8 {
            l.note_erase(0);
        }
        let mut cleaner = TelemetryCleaner {
            inner: RecordingCleaner::new(),
            events: Vec::new(),
        };
        l.level(&mut cleaner).unwrap();
        // Same scenario as leveling_cleans_cold_sets_until_even: the
        // activation levels three sets, fills the BET, and resets.
        assert_eq!(
            cleaner.events,
            vec![
                Event::SwlInvoke {
                    ecnt: 8,
                    fcnt: 1,
                    threshold: 2,
                },
                Event::IntervalReset {
                    interval: 0,
                    ecnt: 11,
                    fcnt: 4,
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn note_erase_out_of_range_panics() {
        let mut l = SwLeveler::new(4, SwlConfig::new(1, 0)).unwrap();
        l.note_erase(4);
    }

    #[test]
    fn level_step_cleans_exactly_one_set() {
        let mut l = SwLeveler::new(4, SwlConfig::new(2, 0)).unwrap();
        for _ in 0..8 {
            l.note_erase(0);
        }
        let mut cleaner = RecordingCleaner::new();
        assert_eq!(
            l.level_step(&mut cleaner).unwrap(),
            LevelOutcome::Leveled {
                sets_cleaned: 1,
                erases_triggered: 1
            }
        );
        assert_eq!(cleaner.calls, vec![(1, 1)]);
        assert_eq!(l.ecnt(), 9);
        assert_eq!(l.fcnt(), 2);
    }

    #[test]
    fn level_step_ignores_threshold() {
        // Below threshold — level() would be Idle, level_step still cleans.
        let mut l = SwLeveler::new(8, SwlConfig::new(100, 0)).unwrap();
        l.note_erase(0);
        let mut cleaner = RecordingCleaner::new();
        assert_eq!(l.level(&mut RecordingCleaner::new()).unwrap(), LevelOutcome::Idle);
        assert!(matches!(
            l.level_step(&mut cleaner).unwrap(),
            LevelOutcome::Leveled { sets_cleaned: 1, .. }
        ));
        assert_eq!(cleaner.calls.len(), 1);
    }

    #[test]
    fn level_step_sequence_matches_level() {
        // Repeating level_step until the interval resets walks the exact
        // same Cleaner call sequence as one level() activation.
        let build = || {
            let mut l = SwLeveler::new(4, SwlConfig::new(2, 0).with_seed(7)).unwrap();
            for _ in 0..8 {
                l.note_erase(0);
            }
            l
        };
        let mut whole = build();
        let mut whole_cleaner = RecordingCleaner::new();
        whole.level(&mut whole_cleaner).unwrap();

        let mut stepped = build();
        let mut step_cleaner = RecordingCleaner::new();
        loop {
            match stepped.level_step(&mut step_cleaner).unwrap() {
                LevelOutcome::IntervalReset { .. } => break,
                LevelOutcome::Leveled { .. } | LevelOutcome::Stalled { .. } => {}
                LevelOutcome::Idle => unreachable!("level_step never returns Idle"),
            }
        }
        assert_eq!(step_cleaner.calls, whole_cleaner.calls);
        assert_eq!(stepped.ecnt(), whole.ecnt());
        assert_eq!(stepped.fcnt(), whole.fcnt());
        assert_eq!(stepped.findex(), whole.findex());
    }

    #[test]
    fn level_step_resets_full_interval() {
        let mut l = SwLeveler::new(4, SwlConfig::new(2, 0)).unwrap();
        for b in 0..4 {
            for _ in 0..2 {
                l.note_erase(b);
            }
        }
        let mut cleaner = RecordingCleaner::new();
        assert_eq!(
            l.level_step(&mut cleaner).unwrap(),
            LevelOutcome::IntervalReset {
                sets_cleaned: 0,
                erases_triggered: 0
            }
        );
        assert!(cleaner.calls.is_empty());
        assert_eq!(l.ecnt(), 0);
        assert_eq!(l.fcnt(), 0);
    }

    #[test]
    fn level_step_reports_stall() {
        let mut l = SwLeveler::new(4, SwlConfig::new(1, 0)).unwrap();
        for _ in 0..10 {
            l.note_erase(0);
        }
        assert_eq!(
            l.level_step(&mut NoopCleaner).unwrap(),
            LevelOutcome::Stalled { sets_cleaned: 1 }
        );
    }
}
