//! Property tests of the NAND device state machine.

use proptest::prelude::*;

use nand::{CellKind, Geometry, NandDevice, NandError, PageAddr, PageState, SpareArea};

#[derive(Debug, Clone)]
enum DeviceOp {
    Program { block: u32, page: u32, data: u64 },
    Invalidate { block: u32, page: u32 },
    Erase { block: u32 },
    Read { block: u32, page: u32 },
}

fn ops(blocks: u32, pages: u32, len: usize) -> impl Strategy<Value = Vec<DeviceOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..blocks, 0..pages, any::<u64>())
                .prop_map(|(block, page, data)| DeviceOp::Program { block, page, data }),
            2 => (0..blocks, 0..pages)
                .prop_map(|(block, page)| DeviceOp::Invalidate { block, page }),
            1 => (0..blocks).prop_map(|block| DeviceOp::Erase { block }),
            2 => (0..blocks, 0..pages).prop_map(|(block, page)| DeviceOp::Read { block, page }),
        ],
        0..len,
    )
}

proptest! {
    /// The device agrees with a naive shadow state machine on every
    /// operation outcome, and per-block valid/invalid counters always match
    /// a recount.
    #[test]
    fn device_matches_shadow_state_machine(ops in ops(6, 4, 400)) {
        let geometry = Geometry::new(6, 4, 512);
        let mut device = NandDevice::new(geometry, CellKind::Slc.spec());
        let mut shadow = vec![vec![(PageState::Free, 0u64); 4]; 6];
        let mut shadow_erases = [0u64; 6];

        for op in ops {
            match op {
                DeviceOp::Program { block, page, data } => {
                    let addr = PageAddr::new(block, page);
                    let result = device.program(addr, data, SpareArea::valid(data));
                    let cell = &mut shadow[block as usize][page as usize];
                    if cell.0 == PageState::Free {
                        prop_assert!(result.is_ok());
                        *cell = (PageState::Valid, data);
                    } else {
                        prop_assert_eq!(result, Err(NandError::ProgramOnUsedPage { addr }));
                    }
                }
                DeviceOp::Invalidate { block, page } => {
                    let addr = PageAddr::new(block, page);
                    let result = device.invalidate(addr);
                    let cell = &mut shadow[block as usize][page as usize];
                    if cell.0 == PageState::Valid {
                        prop_assert!(result.is_ok());
                        cell.0 = PageState::Invalid;
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                DeviceOp::Erase { block } => {
                    prop_assert!(device.erase(block).is_ok());
                    for cell in &mut shadow[block as usize] {
                        *cell = (PageState::Free, 0);
                    }
                    shadow_erases[block as usize] += 1;
                }
                DeviceOp::Read { block, page } => {
                    let addr = PageAddr::new(block, page);
                    let result = device.read(addr);
                    let cell = shadow[block as usize][page as usize];
                    if cell.0 == PageState::Free {
                        prop_assert_eq!(result, Err(NandError::ReadOfFreePage { addr }));
                    } else {
                        prop_assert_eq!(result.unwrap().data, cell.1);
                    }
                }
            }
        }

        for b in 0..6u32 {
            let blk = device.block(b);
            let valid = shadow[b as usize]
                .iter()
                .filter(|(s, _)| *s == PageState::Valid)
                .count() as u32;
            let invalid = shadow[b as usize]
                .iter()
                .filter(|(s, _)| *s == PageState::Invalid)
                .count() as u32;
            prop_assert_eq!(blk.valid_pages(), valid);
            prop_assert_eq!(blk.invalid_pages(), invalid);
            prop_assert_eq!(blk.erase_count(), shadow_erases[b as usize]);
        }
        let total: u64 = shadow_erases.iter().sum();
        prop_assert_eq!(device.counters().erases, total);
    }

    /// The first-failure record points at the first block to reach the
    /// endurance limit and is never displaced.
    #[test]
    fn first_failure_is_earliest(erase_seq in prop::collection::vec(0u32..4, 1..200)) {
        let endurance = 5u32;
        let geometry = Geometry::new(4, 2, 512);
        let mut device =
            NandDevice::new(geometry, CellKind::Mlc2.spec().with_endurance(endurance));
        let mut counts = [0u64; 4];
        let mut expected: Option<u32> = None;
        for block in erase_seq {
            device.erase(block).unwrap();
            counts[block as usize] += 1;
            if counts[block as usize] == u64::from(endurance) && expected.is_none() {
                expected = Some(block);
            }
        }
        prop_assert_eq!(device.first_failure().map(|f| f.block), expected);
    }

    /// Busy time equals the sum of per-op latencies.
    #[test]
    fn busy_time_is_additive(programs in 0u32..8, erases in 0u32..5) {
        let geometry = Geometry::new(2, 8, 512);
        let spec = CellKind::Slc.spec();
        let mut device = NandDevice::new(geometry, spec);
        for p in 0..programs {
            device
                .program(PageAddr::new(0, p), 0, SpareArea::valid(0))
                .unwrap();
        }
        for _ in 0..erases {
            device.erase(1).unwrap();
        }
        let expected = u64::from(programs) * spec.timing.program_ns
            + u64::from(erases) * spec.timing.erase_ns;
        prop_assert_eq!(device.busy_ns(), expected);
    }
}
