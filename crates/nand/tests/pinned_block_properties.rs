//! Oracle consistency of the GC victim index and the free-block ladder
//! when page refcounts pin and unpin blocks mid-scan.
//!
//! With copy-on-write snapshots, a block's valid/invalid split no longer
//! moves monotonically: an incref (snapshot pin) keeps a page valid that a
//! host overwrite would otherwise have invalidated, a decref (snapshot
//! delete, merge commit) can invalidate a page long after the head stopped
//! referencing it, and a whole block can leave the candidate set (all its
//! pages pinned → invalid = 0) and re-enter it later. The incremental
//! [`VictimIndex`] must keep making *exactly* the choice a literal linear
//! scan makes through every such transition, and the [`FreeBlockLadder`]
//! must keep returning minimum-wear blocks while erases and in-place SWL
//! repositions interleave with the pin churn.

use proptest::prelude::*;

use nand::{FreeBlockLadder, VictimIndex};
use swl_core::rng::SplitMix64;

const BLOCKS: u32 = 67; // crosses a bitset word boundary
const PAGES: u32 = 8;

/// The literal cyclic greedy scan the index replaces (same contract as the
/// unit-test oracle inside `nand::victim`): first candidate with
/// invalid > valid, else the cyclically-first holder of the max invalid.
fn reference_select(states: &[(bool, u32, u32)], cursor: u32) -> Option<u32> {
    let n = states.len() as u32;
    let mut fallback: Option<(u32, u32)> = None;
    for step in 0..n {
        let k = (cursor + step) % n;
        let (eligible, invalid, valid) = states[k as usize];
        if !eligible || invalid == 0 {
            continue;
        }
        if invalid > valid {
            return Some(k);
        }
        if fallback.is_none_or(|(best, _)| invalid > best) {
            fallback = Some((invalid, k));
        }
    }
    fallback.map(|(_, k)| k)
}

/// One simulated block: per-page refcounts (`None` = never programmed /
/// erased, `Some(0)` = invalid, `Some(n)` = valid with `n` references).
#[derive(Clone)]
struct ModelBlock {
    pages: Vec<Option<u32>>,
    /// In the free pool (ladder) rather than the candidate set.
    free: bool,
    wear: u64,
}

impl ModelBlock {
    fn invalid(&self) -> u32 {
        self.pages.iter().filter(|p| **p == Some(0)).count() as u32
    }

    fn valid(&self) -> u32 {
        self.pages.iter().filter(|p| matches!(p, Some(n) if *n > 0)).count() as u32
    }

    fn eligible(&self) -> bool {
        !self.free
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random pin/unpin/program/erase churn: after every transition the
    /// index must agree with the linear scan, and the ladder must stay a
    /// faithful min-wear pool.
    #[test]
    fn victim_index_and_ladder_survive_refcount_churn(
        seed in any::<u64>(),
        steps in 2_000usize..6_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut blocks: Vec<ModelBlock> = (0..BLOCKS)
            .map(|_| ModelBlock { pages: vec![None; PAGES as usize], free: true, wear: 0 })
            .collect();
        let mut index = VictimIndex::new(BLOCKS);
        let mut ladder = FreeBlockLadder::new();
        for b in 0..BLOCKS {
            ladder.push(b, 0);
        }
        let mut shadow_free: Vec<u32> = (0..BLOCKS).collect();
        // The open block host writes land in (claimed min-wear from the
        // ladder, like a write frontier).
        let mut open: Option<u32> = None;

        let report = |index: &mut VictimIndex, blocks: &[ModelBlock], b: u32| {
            let m = &blocks[b as usize];
            index.update(b, m.eligible(), m.invalid(), m.valid());
        };

        for _ in 0..steps {
            match rng.next_below(10) {
                // Program: claim an open block if needed, write one page
                // with refcount 1.
                0..=3 => {
                    let b = match open {
                        Some(b) if blocks[b as usize].pages.iter().any(Option::is_none) => b,
                        _ => {
                            let Some(b) = ladder.pop_min() else { continue };
                            let min = shadow_free
                                .iter()
                                .map(|&f| blocks[f as usize].wear)
                                .min()
                                .unwrap();
                            prop_assert_eq!(
                                blocks[b as usize].wear, min,
                                "ladder popped a non-minimal-wear block"
                            );
                            shadow_free.retain(|&f| f != b);
                            blocks[b as usize].free = false;
                            open = Some(b);
                            b
                        }
                    };
                    let slot = blocks[b as usize]
                        .pages
                        .iter()
                        .position(Option::is_none)
                        .expect("open block has room");
                    blocks[b as usize].pages[slot] = Some(1);
                    if blocks[b as usize].pages.iter().all(Option::is_some) {
                        open = None;
                    }
                    report(&mut index, &blocks, b);
                }
                // Pin: incref a random valid page (snapshot create/clone).
                4 | 5 => {
                    let b = rng.next_below(u64::from(BLOCKS)) as u32;
                    let m = &mut blocks[b as usize];
                    if let Some(r) = m.pages.iter_mut().find_map(|p| match p {
                        Some(n) if *n > 0 => Some(n),
                        _ => None,
                    }) {
                        *r += 1;
                        report(&mut index, &blocks, b);
                    }
                }
                // Unpin: decref a random valid page; at zero the page goes
                // invalid — possibly flipping the block into (or up) the
                // candidate set mid-scan.
                6..=8 => {
                    let b = rng.next_below(u64::from(BLOCKS)) as u32;
                    let m = &mut blocks[b as usize];
                    if let Some(r) = m.pages.iter_mut().find_map(|p| match p {
                        Some(n) if *n > 0 => Some(n),
                        _ => None,
                    }) {
                        *r -= 1;
                        report(&mut index, &blocks, b);
                    }
                }
                // Erase: collect the current victim if it is fully
                // released, pushing it back to the pool with bumped wear;
                // otherwise SWL-reposition a random free block in place.
                _ => {
                    let cursor = rng.next_below(u64::from(BLOCKS)) as u32;
                    let victim = index.select(cursor);
                    match victim {
                        Some(b) if blocks[b as usize].valid() == 0 && open != Some(b) => {
                            let m = &mut blocks[b as usize];
                            m.pages.fill(None);
                            m.free = true;
                            m.wear += 1;
                            ladder.push(b, m.wear);
                            shadow_free.push(b);
                            report(&mut index, &blocks, b);
                        }
                        _ => {
                            // In-place SWL erase of a free block: its wear
                            // bumps without leaving the pool.
                            if let Some(&b) = shadow_free.first() {
                                let old = blocks[b as usize].wear;
                                blocks[b as usize].wear = old + 1;
                                ladder.reposition(b, old, old + 1);
                            }
                        }
                    }
                }
            }

            // The index must agree with the literal scan from an arbitrary
            // cursor after *every* transition.
            let states: Vec<(bool, u32, u32)> = blocks
                .iter()
                .map(|m| (m.eligible(), m.invalid(), m.valid()))
                .collect();
            let cursor = rng.next_below(u64::from(BLOCKS)) as u32;
            prop_assert_eq!(
                index.select(cursor),
                reference_select(&states, cursor),
                "victim index diverged from the linear scan at cursor {}",
                cursor
            );
            prop_assert_eq!(ladder.len(), shadow_free.len());
        }
    }
}
