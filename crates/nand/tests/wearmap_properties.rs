//! Property tests of the wear-map rendering.

use proptest::prelude::*;

use nand::WearMap;

const RAMP_ORDER: [char; 6] = ['.', '-', '=', '+', '#', '@'];

fn ramp_rank(c: char) -> usize {
    RAMP_ORDER.iter().position(|&r| r == c).expect("known glyph")
}

proptest! {
    /// Glyphs are monotone in the underlying count: a block with more
    /// erases never renders lighter than one with fewer.
    #[test]
    fn glyphs_are_monotone(counts in prop::collection::vec(0u64..100_000, 1..200)) {
        let map = WearMap::from_counts(&counts);
        let mut indexed: Vec<(u64, usize)> =
            counts.iter().copied().zip(0..counts.len()).collect();
        indexed.sort_unstable();
        for pair in indexed.windows(2) {
            let (low_count, low_idx) = pair[0];
            let (high_count, high_idx) = pair[1];
            if low_count <= high_count {
                prop_assert!(
                    ramp_rank(map.glyph(low_idx)) <= ramp_rank(map.glyph(high_idx)),
                    "count {low_count} rendered heavier than {high_count}"
                );
            }
        }
        // Extremes: zero is always '.', the maximum is always '@' (when
        // any wear exists).
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                prop_assert_eq!(map.glyph(i), '.');
            }
        }
        if map.stats().max > 0 {
            let hottest = counts.iter().position(|&c| c == map.stats().max).unwrap();
            prop_assert_eq!(map.glyph(hottest), '@');
        }
    }

    /// The histogram partitions the blocks: bucket counts always sum to
    /// the block count, for any bucket granularity.
    #[test]
    fn histogram_partitions_blocks(
        counts in prop::collection::vec(0u64..10_000, 1..200),
        buckets in 1usize..20,
    ) {
        let map = WearMap::from_counts(&counts);
        let histogram = map.histogram(buckets);
        prop_assert_eq!(histogram.len(), buckets);
        prop_assert_eq!(histogram.iter().sum::<usize>(), counts.len());
    }

    /// Rendering contains exactly one glyph per block regardless of row
    /// width.
    #[test]
    fn rendering_covers_every_block(
        counts in prop::collection::vec(0u64..1_000, 1..150),
        row_width in 1usize..80,
    ) {
        let map = WearMap::from_counts(&counts).with_row_width(row_width);
        let rendered = map.to_string();
        let glyphs: usize = rendered
            .lines()
            .skip(1) // stats header
            .map(|line| line.chars().count())
            .sum();
        prop_assert_eq!(glyphs, counts.len());
    }
}
