//! The simulated NAND chip.

use crate::block::{Block, BlockState};
use crate::cell::CellSpec;
use crate::error::NandError;
use crate::fault::{FaultDecision, FaultPlan, FaultState};
use crate::geometry::Geometry;
use crate::page::{PageAddr, SpareArea};
use crate::stats::EraseStats;
use crate::DeviceNanos;
use flash_telemetry::{Cause, Event, FaultKind, NullSink, Sink, SCHEMA_VERSION};

/// What the device does when a block is erased past its rated endurance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WearPolicy {
    /// Record the first failure and keep operating (the paper's Table 4
    /// simulations run for 10 years "even though some blocks were worn
    /// out").
    #[default]
    RecordAndContinue,
    /// Refuse to erase worn-out blocks with [`NandError::BlockWornOut`].
    FailWornBlocks,
}

/// The first wear-out event observed on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureRecord {
    /// Block that first reached its endurance limit.
    pub block: u32,
    /// Total erases across the chip at that moment.
    pub total_erases: u64,
    /// Device busy time at that moment.
    pub at_ns: DeviceNanos,
}

/// Monotonic operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceCounters {
    /// Page reads served.
    pub reads: u64,
    /// Page programs performed.
    pub programs: u64,
    /// Block erases performed.
    pub erases: u64,
}

/// Result of a page read: payload token plus the spare area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// The data token written by the last program of this page.
    pub data: u64,
    /// Spare-area metadata written alongside it.
    pub spare: SpareArea,
}

/// A simulated NAND chip.
///
/// Generic over a telemetry [`Sink`]; the default [`NullSink`] disables all
/// emission sites at compile time, so `NandDevice` in type position keeps
/// the uninstrumented behaviour (and cost) it always had. Attach a real sink
/// with [`with_sink`](NandDevice::with_sink).
///
/// See the [crate-level documentation](crate) for the model and an example.
#[derive(Debug, Clone)]
pub struct NandDevice<S: Sink = NullSink> {
    geometry: Geometry,
    spec: CellSpec,
    policy: WearPolicy,
    blocks: Vec<Block>,
    counters: DeviceCounters,
    busy_ns: DeviceNanos,
    first_failure: Option<FailureRecord>,
    worn_blocks: u32,
    faults: Option<FaultState>,
    sink: S,
}

impl NandDevice {
    /// A fresh chip with every page erased and zero wear.
    pub fn new(geometry: Geometry, spec: CellSpec) -> Self {
        let blocks = (0..geometry.blocks())
            .map(|_| Block::new(geometry.pages_per_block()))
            .collect();
        Self {
            geometry,
            spec,
            policy: WearPolicy::default(),
            blocks,
            counters: DeviceCounters::default(),
            busy_ns: 0,
            first_failure: None,
            worn_blocks: 0,
            faults: None,
            sink: NullSink,
        }
    }
}

impl<S: Sink> NandDevice<S> {
    /// Sets the wear policy (builder style).
    pub fn with_wear_policy(mut self, policy: WearPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the telemetry sink (builder style), discarding the previous
    /// one. Emits an [`Event::Meta`] stream header carrying the schema
    /// version and geometry, followed by an [`Event::Endurance`] header with
    /// the cell spec's rated endurance (schema v4), so JSONL logs are
    /// self-describing — health replay can forecast lifetime without
    /// out-of-band configuration.
    pub fn with_sink<S2: Sink>(self, mut sink: S2) -> NandDevice<S2> {
        if S2::ENABLED {
            sink.event(Event::Meta {
                version: SCHEMA_VERSION,
                blocks: self.geometry.blocks(),
                pages_per_block: self.geometry.pages_per_block(),
            });
            sink.event(Event::Endurance {
                limit: self.spec.endurance as u64,
            });
        }
        NandDevice {
            geometry: self.geometry,
            spec: self.spec,
            policy: self.policy,
            blocks: self.blocks,
            counters: self.counters,
            busy_ns: self.busy_ns,
            first_failure: self.first_failure,
            worn_blocks: self.worn_blocks,
            faults: self.faults,
            sink,
        }
    }

    /// Like [`NandDevice::with_sink`] but without the [`Event::Meta`] stream
    /// header. For multi-chip arrays where several devices share one sink:
    /// the enclosing layer emits a single array-level header instead of one
    /// per chip.
    pub fn with_sink_silent<S2: Sink>(self, sink: S2) -> NandDevice<S2> {
        NandDevice {
            geometry: self.geometry,
            spec: self.spec,
            policy: self.policy,
            blocks: self.blocks,
            counters: self.counters,
            busy_ns: self.busy_ns,
            first_failure: self.first_failure,
            worn_blocks: self.worn_blocks,
            faults: self.faults,
            sink,
        }
    }

    /// Attaches a deterministic [`FaultPlan`] (builder style). A device
    /// without a plan — or with a plan whose knobs are all disarmed —
    /// behaves bit-identically to one that never heard of faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultState::new(plan, self.geometry.blocks()));
        self
    }

    /// The attached fault plan, if any. Reflects consumed state: a fired
    /// power cut no longer reports its operation index.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Whether `block` is grown-bad (a program or erase fault has
    /// permanently damaged it). Always `false` without a fault plan.
    pub fn is_bad_block(&self, block: u32) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_bad(block))
    }

    /// Whether the fault plan's power cut has fired and the chip is
    /// unpowered. Every operation fails with [`NandError::PowerCut`] until
    /// [`power_cycle`](Self::power_cycle) runs.
    pub fn power_is_cut(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.power_is_cut())
    }

    /// Restores power after a cut. The consumed cut point stays consumed;
    /// use [`rearm_power_cut`](Self::rearm_power_cut) to schedule another.
    pub fn power_cycle(&mut self) {
        if let Some(f) = &mut self.faults {
            f.power_cycle();
        }
    }

    /// Schedules a new power cut at mutating-operation index `op` (see
    /// [`FaultPlan::with_power_cut`]) and restores power if it was cut.
    /// No-op without a fault plan.
    pub fn rearm_power_cut(&mut self, op: u64, torn: bool) {
        if let Some(f) = &mut self.faults {
            f.rearm_power_cut(op, torn);
        }
    }

    /// Removes a still-armed cut point and restores power. Multi-channel
    /// harnesses call this on the chips whose cut never fired before
    /// remounting: one shared power rail dies once, so a cut consumed on
    /// any chip of the array is consumed on all of them. No-op without a
    /// fault plan.
    pub fn disarm_power_cut(&mut self) {
        if let Some(f) = &mut self.faults {
            f.disarm_power_cut();
        }
    }

    /// Mutating operations (programs + erases) the fault layer has counted,
    /// including the one a power cut consumed. `0` without a fault plan.
    /// Sweep harnesses use this to enumerate cut points.
    pub fn fault_ops(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.ops())
    }

    /// Mutable access to the attached sink, for layers above the device that
    /// emit their own events (host ops, GC picks, live copies) into the same
    /// stream.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the device and returns the sink (e.g. to flush and inspect a
    /// JSONL log after a run).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Chip geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Cell behaviour (endurance, timing).
    pub fn spec(&self) -> CellSpec {
        self.spec
    }

    /// Immutable view of a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range; use [`Geometry::contains_block`]
    /// to check first.
    pub fn block(&self, block: u32) -> &Block {
        &self.blocks[block as usize]
    }

    /// Operation counters so far.
    pub fn counters(&self) -> DeviceCounters {
        self.counters
    }

    /// Accumulated device busy time.
    pub fn busy_ns(&self) -> DeviceNanos {
        self.busy_ns
    }

    /// The first wear-out event, if any block has reached its endurance.
    pub fn first_failure(&self) -> Option<FailureRecord> {
        self.first_failure
    }

    /// Number of blocks currently past their endurance rating.
    pub fn worn_blocks(&self) -> u32 {
        self.worn_blocks
    }

    /// Erase-count statistics across all blocks (Table 4 metrics).
    pub fn erase_stats(&self) -> EraseStats {
        EraseStats::from_counts(self.blocks.iter().map(|b| b.erase_count()))
    }

    /// Per-block erase counts, indexed by block.
    pub fn erase_counts(&self) -> Vec<u64> {
        self.blocks.iter().map(|b| b.erase_count()).collect()
    }

    /// Number of grown-bad blocks retired from rotation by the fault layer.
    /// Always 0 without a fault plan (organic endurance exhaustion is
    /// tracked by [`worn_blocks`](Self::worn_blocks) instead).
    pub fn retired_blocks(&self) -> u32 {
        (0..self.geometry.blocks())
            .filter(|&b| self.is_bad_block(b))
            .count() as u32
    }

    /// Erase cycles left on the most-worn block before it reaches the
    /// spec's rated endurance (0 once any block is at or past its rating).
    /// The health plane's forecast divides this headroom by the observed
    /// tail wear rate.
    pub fn wear_headroom(&self) -> u64 {
        let max = self
            .blocks
            .iter()
            .map(|b| b.erase_count())
            .max()
            .unwrap_or(0);
        (self.spec.endurance as u64).saturating_sub(max)
    }

    fn check_power(&self) -> Result<(), NandError> {
        if self.power_is_cut() {
            return Err(NandError::PowerCut);
        }
        Ok(())
    }

    fn check_addr(&self, addr: PageAddr) -> Result<(), NandError> {
        if !self.geometry.contains_block(addr.block) {
            return Err(NandError::BlockOutOfRange {
                block: addr.block,
                blocks: self.geometry.blocks(),
            });
        }
        if addr.page >= self.geometry.pages_per_block() {
            return Err(NandError::PageOutOfRange {
                addr,
                pages_per_block: self.geometry.pages_per_block(),
            });
        }
        Ok(())
    }

    /// Reads a page.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BlockOutOfRange`] / [`NandError::PageOutOfRange`]
    /// for bad addresses and [`NandError::ReadOfFreePage`] when the page has
    /// not been programmed since its last erase.
    pub fn read(&mut self, addr: PageAddr) -> Result<ReadResult, NandError> {
        self.check_power()?;
        self.check_addr(addr)?;
        let block = &self.blocks[addr.block as usize];
        if block.page_state(addr.page).is_free() {
            return Err(NandError::ReadOfFreePage { addr });
        }
        self.counters.reads += 1;
        self.busy_ns += self.spec.timing.read_ns;
        Ok(ReadResult {
            data: block.data(addr.page),
            spare: block.spare(addr.page),
        })
    }

    /// Programs a free page with a data token and spare-area metadata.
    ///
    /// # Errors
    ///
    /// Returns an address error for bad addresses and
    /// [`NandError::ProgramOnUsedPage`] if the page is not free. With a
    /// [`FaultPlan`] attached it can also fail with
    /// [`NandError::ProgramFailed`] (the page is consumed and the block
    /// grown-bad — remap the write elsewhere) or [`NandError::PowerCut`].
    pub fn program(
        &mut self,
        addr: PageAddr,
        data: u64,
        spare: SpareArea,
    ) -> Result<(), NandError> {
        self.check_power()?;
        self.check_addr(addr)?;
        if !self.blocks[addr.block as usize]
            .page_state(addr.page)
            .is_free()
        {
            return Err(NandError::ProgramOnUsedPage { addr });
        }
        if let Some(faults) = &mut self.faults {
            match faults.decide_program(addr) {
                FaultDecision::Proceed => {}
                FaultDecision::Fail(error) => {
                    faults.mark_bad(addr.block);
                    self.blocks[addr.block as usize].tear_program(addr.page);
                    self.busy_ns += self.spec.timing.program_ns;
                    if S::ENABLED {
                        self.sink.event(Event::FaultInjected {
                            block: addr.block,
                            kind: FaultKind::ProgramFail,
                        });
                    }
                    return Err(error);
                }
                FaultDecision::Cut { torn, at_op } => {
                    if torn {
                        self.blocks[addr.block as usize].tear_program(addr.page);
                    }
                    if S::ENABLED {
                        self.sink.event(Event::PowerCut { at_op, torn });
                    }
                    return Err(NandError::PowerCut);
                }
            }
        }
        self.blocks[addr.block as usize].program(addr.page, data, spare);
        self.counters.programs += 1;
        self.busy_ns += self.spec.timing.program_ns;
        if S::ENABLED {
            self.sink.event(Event::Program {
                block: addr.block,
                page: addr.page,
            });
        }
        Ok(())
    }

    /// Programs the firmware bad-block marker ([`SpareArea::bad_block`])
    /// into page 0 of `block`. Translation layers call this when they retire
    /// a block so that a later mount rediscovers the retirement from flash
    /// instead of resurrecting stale contents. Like
    /// [`invalidate`](Self::invalidate), this models a spare-area status
    /// program: it charges no latency and cannot be torn.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BlockOutOfRange`] for a bad index and
    /// [`NandError::PowerCut`] while power is cut.
    pub fn mark_bad(&mut self, block: u32) -> Result<(), NandError> {
        self.check_power()?;
        if !self.geometry.contains_block(block) {
            return Err(NandError::BlockOutOfRange {
                block,
                blocks: self.geometry.blocks(),
            });
        }
        self.blocks[block as usize].mark_bad();
        Ok(())
    }

    /// Marks a valid page as invalid (out-place update bookkeeping).
    ///
    /// Real chips implement this as a status-byte program in the spare area;
    /// we charge no latency for it.
    ///
    /// # Errors
    ///
    /// Returns an address error for bad addresses and
    /// [`NandError::InvalidateNonValidPage`] if the page is not valid.
    pub fn invalidate(&mut self, addr: PageAddr) -> Result<(), NandError> {
        self.check_power()?;
        self.check_addr(addr)?;
        let block = &mut self.blocks[addr.block as usize];
        if !block.page_state(addr.page).is_valid() {
            return Err(NandError::InvalidateNonValidPage { addr });
        }
        block.invalidate(addr.page);
        Ok(())
    }

    /// Erases a block, freeing all of its pages and incrementing its wear.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BlockOutOfRange`] for a bad index. Under
    /// [`WearPolicy::FailWornBlocks`], returns [`NandError::BlockWornOut`]
    /// once the block has reached its endurance.
    pub fn erase(&mut self, block: u32) -> Result<(), NandError> {
        self.erase_as(block, Cause::External)
    }

    /// [`erase`](NandDevice::erase) with explicit cause attribution for the
    /// telemetry stream. Translation layers call this so erase events carry
    /// their GC-vs-SWL provenance; behaviour is otherwise identical.
    ///
    /// # Errors
    ///
    /// As for [`erase`](NandDevice::erase). With a [`FaultPlan`] attached it
    /// can also fail with [`NandError::EraseFailed`] (the block is bad and
    /// must be retired) or [`NandError::PowerCut`].
    pub fn erase_as(&mut self, block: u32, cause: Cause) -> Result<(), NandError> {
        self.check_power()?;
        if !self.geometry.contains_block(block) {
            return Err(NandError::BlockOutOfRange {
                block,
                blocks: self.geometry.blocks(),
            });
        }
        let endurance = self.spec.endurance;
        let erase_count = self.blocks[block as usize].erase_count();
        if self.policy == WearPolicy::FailWornBlocks
            && self.blocks[block as usize].state(endurance) == BlockState::WornOut
        {
            return Err(NandError::BlockWornOut { block, erase_count });
        }
        if let Some(faults) = &mut self.faults {
            match faults.decide_erase(block, erase_count) {
                FaultDecision::Proceed => {}
                FaultDecision::Fail(error) => {
                    self.busy_ns += self.spec.timing.erase_ns;
                    if S::ENABLED {
                        self.sink.event(Event::FaultInjected {
                            block,
                            kind: FaultKind::EraseFail,
                        });
                    }
                    return Err(error);
                }
                FaultDecision::Cut { torn, at_op } => {
                    if torn {
                        self.blocks[block as usize].tear_erase();
                    }
                    if S::ENABLED {
                        self.sink.event(Event::PowerCut { at_op, torn });
                    }
                    return Err(NandError::PowerCut);
                }
            }
        }
        let blk = &mut self.blocks[block as usize];
        let was_healthy = blk.state(endurance) == BlockState::Healthy;
        blk.erase();
        self.counters.erases += 1;
        self.busy_ns += self.spec.timing.erase_ns;
        if S::ENABLED {
            let wear = self.blocks[block as usize].erase_count();
            self.sink.event(Event::Erase { block, wear, cause });
        }
        let blk = &mut self.blocks[block as usize];
        if was_healthy && blk.state(endurance) == BlockState::WornOut {
            self.worn_blocks += 1;
            if self.first_failure.is_none() {
                self.first_failure = Some(FailureRecord {
                    block,
                    total_erases: self.counters.erases,
                    at_ns: self.busy_ns,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn tiny_device(endurance: u32) -> NandDevice {
        let g = Geometry::new(4, 4, 512);
        NandDevice::new(g, CellKind::Mlc2.spec().with_endurance(endurance))
    }

    #[test]
    fn program_read_round_trip() {
        let mut d = tiny_device(10);
        let addr = PageAddr::new(1, 2);
        d.program(addr, 99, SpareArea::valid(5)).unwrap();
        let r = d.read(addr).unwrap();
        assert_eq!(r.data, 99);
        assert_eq!(r.spare.lba(), Some(5));
        assert_eq!(d.counters().programs, 1);
        assert_eq!(d.counters().reads, 1);
    }

    #[test]
    fn double_program_rejected() {
        let mut d = tiny_device(10);
        let addr = PageAddr::new(0, 0);
        d.program(addr, 1, SpareArea::valid(0)).unwrap();
        assert_eq!(
            d.program(addr, 2, SpareArea::valid(0)),
            Err(NandError::ProgramOnUsedPage { addr })
        );
        // Even an invalidated page cannot be re-programmed without erase.
        d.invalidate(addr).unwrap();
        assert!(matches!(
            d.program(addr, 2, SpareArea::valid(0)),
            Err(NandError::ProgramOnUsedPage { .. })
        ));
    }

    #[test]
    fn erase_frees_pages_for_reprogramming() {
        let mut d = tiny_device(10);
        let addr = PageAddr::new(0, 0);
        d.program(addr, 1, SpareArea::valid(0)).unwrap();
        d.invalidate(addr).unwrap();
        d.erase(0).unwrap();
        d.program(addr, 2, SpareArea::valid(0)).unwrap();
        assert_eq!(d.read(addr).unwrap().data, 2);
        assert_eq!(d.block(0).erase_count(), 1);
    }

    #[test]
    fn read_of_free_page_rejected() {
        let mut d = tiny_device(10);
        assert_eq!(
            d.read(PageAddr::new(0, 0)),
            Err(NandError::ReadOfFreePage {
                addr: PageAddr::new(0, 0)
            })
        );
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let mut d = tiny_device(10);
        assert!(matches!(
            d.read(PageAddr::new(99, 0)),
            Err(NandError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            d.program(PageAddr::new(0, 99), 0, SpareArea::valid(0)),
            Err(NandError::PageOutOfRange { .. })
        ));
        assert!(matches!(
            d.erase(99),
            Err(NandError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn invalidate_requires_valid_page() {
        let mut d = tiny_device(10);
        let addr = PageAddr::new(0, 0);
        assert!(matches!(
            d.invalidate(addr),
            Err(NandError::InvalidateNonValidPage { .. })
        ));
        d.program(addr, 0, SpareArea::valid(0)).unwrap();
        d.invalidate(addr).unwrap();
        assert!(matches!(
            d.invalidate(addr),
            Err(NandError::InvalidateNonValidPage { .. })
        ));
    }

    #[test]
    fn first_failure_recorded_at_endurance() {
        let mut d = tiny_device(3);
        assert!(d.first_failure().is_none());
        d.erase(2).unwrap();
        d.erase(2).unwrap();
        assert!(d.first_failure().is_none());
        d.erase(2).unwrap();
        let f = d.first_failure().expect("failure after third erase");
        assert_eq!(f.block, 2);
        assert_eq!(f.total_erases, 3);
        assert_eq!(d.worn_blocks(), 1);
        // A later wear-out does not displace the first record.
        for _ in 0..3 {
            d.erase(1).unwrap();
        }
        assert_eq!(d.first_failure().unwrap().block, 2);
        assert_eq!(d.worn_blocks(), 2);
    }

    #[test]
    fn record_and_continue_allows_erasing_worn_blocks() {
        let mut d = tiny_device(1);
        d.erase(0).unwrap();
        d.erase(0).unwrap(); // worn, but still permitted
        assert_eq!(d.block(0).erase_count(), 2);
    }

    #[test]
    fn fail_worn_blocks_policy_rejects() {
        let mut d = tiny_device(1).with_wear_policy(WearPolicy::FailWornBlocks);
        d.erase(0).unwrap();
        assert_eq!(
            d.erase(0),
            Err(NandError::BlockWornOut {
                block: 0,
                erase_count: 1
            })
        );
    }

    #[test]
    fn busy_time_accumulates_per_op() {
        let timing = crate::Timing {
            read_ns: 1,
            program_ns: 10,
            erase_ns: 100,
        };
        let g = Geometry::new(1, 2, 512);
        let mut d = NandDevice::new(g, CellKind::Slc.spec().with_timing(timing));
        d.program(PageAddr::new(0, 0), 0, SpareArea::valid(0))
            .unwrap();
        d.read(PageAddr::new(0, 0)).unwrap();
        d.erase(0).unwrap();
        assert_eq!(d.busy_ns(), 111);
    }

    #[test]
    fn sink_sees_meta_programs_and_attributed_erases() {
        use flash_telemetry::VecSink;

        let d = tiny_device(10).with_sink(VecSink::default());
        let mut d = d;
        d.program(PageAddr::new(1, 0), 7, SpareArea::valid(3)).unwrap();
        d.erase_as(2, Cause::Swl).unwrap();
        d.erase(2).unwrap(); // plain erase attributes to External
        let events = d.into_sink().events;
        assert_eq!(
            events,
            vec![
                Event::Meta {
                    version: SCHEMA_VERSION,
                    blocks: 4,
                    pages_per_block: 4,
                },
                Event::Endurance { limit: 10 },
                Event::Program { block: 1, page: 0 },
                Event::Erase {
                    block: 2,
                    wear: 1,
                    cause: Cause::Swl,
                },
                Event::Erase {
                    block: 2,
                    wear: 2,
                    cause: Cause::External,
                },
            ]
        );
    }

    #[test]
    fn null_sink_device_matches_instrumented_device() {
        let mut plain = tiny_device(10);
        let mut probed = tiny_device(10).with_sink(flash_telemetry::CountSink::default());
        for b in [0u32, 1, 0] {
            plain.erase(b).unwrap();
            probed.erase(b).unwrap();
        }
        assert_eq!(plain.erase_counts(), probed.erase_counts());
        assert_eq!(plain.counters(), probed.counters());
        assert_eq!(probed.sink_mut().events, 5); // meta + endurance + 3 erases
    }

    #[test]
    fn erase_stats_reflect_wear() {
        let mut d = tiny_device(100);
        d.erase(0).unwrap();
        d.erase(0).unwrap();
        d.erase(1).unwrap();
        let s = d.erase_stats();
        assert_eq!(s.total, 3);
        assert_eq!(s.max, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.blocks, 4);
        assert_eq!(d.erase_counts(), vec![2, 1, 0, 0]);
    }
}
