//! An incrementally maintained index for greedy GC victim selection.
//!
//! Both translation layers of this workspace pick garbage-collection
//! victims the same way (the paper's greedy cost/benefit Cleaner): scan
//! cyclically from a cursor, take the **first** candidate whose invalid
//! pages outnumber its valid pages, and if none qualifies fall back to the
//! **first candidate in cyclic order holding the maximum** invalid count.
//! Done literally, that is an O(candidates) walk on *every* collection.
//!
//! [`VictimIndex`] maintains the same decision incrementally: a bitset of
//! *qualifying* candidates (invalid > valid) answers the common case with
//! one cyclic word scan, and per-invalid-count bucket bitsets (indexed by
//! exact invalid count, which is bounded by pages per block) answer the
//! fallback from the highest non-empty bucket. Updates on page
//! invalidation, erase, or retirement are O(1); selection is O(words)
//! word-level scanning — the same trick the BET's `next_clear` uses.
//!
//! The index is deliberately *choice-identical* to the linear scan, so the
//! layers keep the old scan as a `debug_assert!` oracle.

/// Fixed-capacity bitset with a cyclic first-set query.
#[derive(Debug, Clone, Default)]
struct CyclicBitSet {
    words: Vec<u64>,
}

impl CyclicBitSet {
    fn new(bits: u32) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64) as usize],
        }
    }

    fn set(&mut self, bit: u32) {
        self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    fn clear(&mut self, bit: u32) {
        self.words[(bit / 64) as usize] &= !(1u64 << (bit % 64));
    }

    /// First set bit at or after `from` in cyclic order, if any.
    fn next_set_cyclic(&self, from: u32) -> Option<u32> {
        let n = self.words.len();
        if n == 0 {
            return None;
        }
        let start_word = (from / 64) as usize % n;
        let first = self.words[start_word] & (u64::MAX << (from % 64));
        if first != 0 {
            return Some(start_word as u32 * 64 + first.trailing_zeros());
        }
        // Wrapping back to start_word is deliberate: its low bits (before
        // `from`) are cyclically last and were masked out above.
        for step in 1..=n {
            let w = (start_word + step) % n;
            if self.words[w] != 0 {
                return Some(w as u32 * 64 + self.words[w].trailing_zeros());
            }
        }
        None
    }
}

/// Per-candidate garbage-collection statistics, indexed for O(1) greedy
/// victim selection. Candidates are dense `u32` keys: physical blocks for
/// the page-mapping FTL, virtual block addresses for the NFTL.
#[derive(Debug, Clone)]
pub struct VictimIndex {
    /// Last reported invalid count per key (meaningful while indexed).
    invalid: Vec<u32>,
    /// Last reported valid count per key (meaningful while indexed).
    valid: Vec<u32>,
    /// Whether the key currently participates (eligible and invalid > 0).
    indexed: Vec<bool>,
    /// Keys with invalid > valid: the immediate-win set.
    qualifying: CyclicBitSet,
    /// `buckets[i]` = indexed keys with exactly `i` invalid pages
    /// (allocated lazily; bucket 0 is never populated).
    buckets: Vec<Option<CyclicBitSet>>,
    bucket_len: Vec<u32>,
    /// No non-empty bucket exists above this index (lazily tightened).
    max_bucket: usize,
    /// Number of currently indexed keys.
    indexed_count: u32,
    keys: u32,
}

impl VictimIndex {
    /// An index over candidates `0..keys`, all initially absent.
    pub fn new(keys: u32) -> Self {
        Self {
            invalid: vec![0; keys as usize],
            valid: vec![0; keys as usize],
            indexed: vec![false; keys as usize],
            qualifying: CyclicBitSet::new(keys),
            buckets: Vec::new(),
            bucket_len: Vec::new(),
            max_bucket: 0,
            indexed_count: 0,
            keys,
        }
    }

    /// Number of candidate keys the index covers.
    pub fn keys(&self) -> u32 {
        self.keys
    }

    /// Number of candidates currently indexed (eligible with invalid > 0) —
    /// a depth gauge for telemetry. O(1).
    pub fn candidates(&self) -> u32 {
        self.indexed_count
    }

    /// Reports the current state of one candidate: whether it may be
    /// collected at all, and its invalid/valid page counts. O(1).
    ///
    /// Ineligible candidates (free blocks, retired blocks, open write
    /// frontiers, closed replacement pairs) and candidates with nothing to
    /// reclaim (invalid = 0) leave the index.
    pub fn update(&mut self, key: u32, eligible: bool, invalid: u32, valid: u32) {
        let k = key as usize;
        if self.indexed[k] {
            let old_invalid = self.invalid[k];
            let bucket = self.buckets[old_invalid as usize]
                .as_mut()
                .expect("indexed key has a bucket");
            bucket.clear(key);
            self.bucket_len[old_invalid as usize] -= 1;
            if old_invalid > self.valid[k] {
                self.qualifying.clear(key);
            }
        }
        self.invalid[k] = invalid;
        self.valid[k] = valid;
        let now_indexed = eligible && invalid > 0;
        if now_indexed != self.indexed[k] {
            if now_indexed {
                self.indexed_count += 1;
            } else {
                self.indexed_count -= 1;
            }
        }
        self.indexed[k] = now_indexed;
        if now_indexed {
            let i = invalid as usize;
            if i >= self.buckets.len() {
                self.buckets.resize(i + 1, None);
                self.bucket_len.resize(i + 1, 0);
            }
            let keys = self.keys;
            self.buckets[i]
                .get_or_insert_with(|| CyclicBitSet::new(keys))
                .set(key);
            self.bucket_len[i] += 1;
            self.max_bucket = self.max_bucket.max(i);
            if invalid > valid {
                self.qualifying.set(key);
            }
        }
    }

    /// Greedy victim choice, cyclic from `cursor`: the first qualifying
    /// candidate (invalid > valid), else the cyclically-first candidate
    /// holding the maximum invalid count, else `None`.
    ///
    /// Takes `&mut self` only to tighten the lazy max-bucket cursor; the
    /// choice itself is a pure function of the reported states and is
    /// identical to a full linear scan from `cursor`.
    pub fn select(&mut self, cursor: u32) -> Option<u32> {
        debug_assert!(cursor < self.keys.max(1));
        if let Some(key) = self.qualifying.next_set_cyclic(cursor) {
            return Some(key);
        }
        while self.max_bucket > 0 && self.bucket_len[self.max_bucket] == 0 {
            self.max_bucket -= 1;
        }
        if self.max_bucket == 0 {
            return None;
        }
        self.buckets[self.max_bucket]
            .as_ref()
            .expect("non-empty bucket is allocated")
            .next_set_cyclic(cursor)
    }

    /// Whether any candidate is currently selectable.
    pub fn is_empty(&mut self) -> bool {
        while self.max_bucket > 0 && self.bucket_len[self.max_bucket] == 0 {
            self.max_bucket -= 1;
        }
        self.max_bucket == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linear scan the index replaces, as an oracle.
    fn reference_select(
        states: &[(bool, u32, u32)], // (eligible, invalid, valid)
        cursor: u32,
    ) -> Option<u32> {
        let n = states.len() as u32;
        let mut fallback: Option<(u32, u32)> = None;
        for step in 0..n {
            let k = (cursor + step) % n;
            let (eligible, invalid, valid) = states[k as usize];
            if !eligible || invalid == 0 {
                continue;
            }
            if invalid > valid {
                return Some(k);
            }
            if fallback.is_none_or(|(best, _)| invalid > best) {
                fallback = Some((invalid, k));
            }
        }
        fallback.map(|(_, k)| k)
    }

    #[test]
    fn qualifying_candidate_wins_in_cyclic_order() {
        let mut index = VictimIndex::new(8);
        index.update(2, true, 3, 1); // qualifies
        index.update(5, true, 4, 1); // qualifies
        assert_eq!(index.select(0), Some(2));
        assert_eq!(index.select(3), Some(5));
        assert_eq!(index.select(6), Some(2)); // wraps
    }

    #[test]
    fn fallback_takes_cyclically_first_max_invalid() {
        let mut index = VictimIndex::new(8);
        index.update(1, true, 2, 6);
        index.update(3, true, 3, 6); // max invalid
        index.update(6, true, 3, 6); // tied max, later from cursor 0
        assert_eq!(index.select(0), Some(3));
        assert_eq!(index.select(4), Some(6)); // cyclic order flips the tie
        index.update(3, true, 4, 6);
        assert_eq!(index.select(4), Some(3)); // strictly larger wins again
    }

    #[test]
    fn empty_and_ineligible_candidates_are_skipped() {
        let mut index = VictimIndex::new(4);
        assert_eq!(index.select(0), None);
        index.update(1, true, 2, 5);
        index.update(2, false, 9, 0); // ineligible despite high invalid
        index.update(3, true, 0, 4); // nothing to reclaim
        assert_eq!(index.select(0), Some(1));
        index.update(1, false, 2, 5);
        assert_eq!(index.select(0), None);
        assert!(index.is_empty());
    }

    #[test]
    fn agrees_with_linear_scan_under_random_churn() {
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let keys = 67u32; // crosses a word boundary
        let mut index = VictimIndex::new(keys);
        let mut shadow = vec![(false, 0u32, 0u32); keys as usize];
        for _ in 0..20_000 {
            let k = (next() % u64::from(keys)) as u32;
            let eligible = next() % 4 != 0;
            let invalid = (next() % 17) as u32;
            let valid = (next() % 17) as u32;
            index.update(k, eligible, invalid, valid);
            shadow[k as usize] = (eligible, invalid, valid);
            let cursor = (next() % u64::from(keys)) as u32;
            assert_eq!(
                index.select(cursor),
                reference_select(&shadow, cursor),
                "divergence at cursor {cursor}"
            );
        }
    }

    #[test]
    fn candidates_gauge_tracks_membership() {
        let mut index = VictimIndex::new(8);
        assert_eq!(index.candidates(), 0);
        index.update(1, true, 3, 1);
        index.update(2, true, 1, 5);
        assert_eq!(index.candidates(), 2);
        index.update(1, true, 4, 0); // re-report keeps membership
        assert_eq!(index.candidates(), 2);
        index.update(2, false, 1, 5); // ineligible leaves
        index.update(1, true, 0, 4); // nothing to reclaim leaves
        assert_eq!(index.candidates(), 0);
    }

    #[test]
    fn cyclic_bitset_wraps_to_low_bits_of_start_word() {
        let mut bits = CyclicBitSet::new(70);
        bits.set(3);
        assert_eq!(bits.next_set_cyclic(5), Some(3));
        bits.set(65);
        assert_eq!(bits.next_set_cyclic(5), Some(65));
        bits.clear(65);
        bits.clear(3);
        assert_eq!(bits.next_set_cyclic(5), None);
    }
}
