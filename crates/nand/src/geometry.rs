//! Chip geometry: block count, pages per block, page size.

use std::fmt;

/// Physical organisation of a NAND chip.
///
/// The paper's three reference configurations are available as constructors:
///
/// | preset | page | pages/block | typical cell |
/// |---|---|---|---|
/// | [`Geometry::small_block_slc`] | 512 B | 32 | SLC |
/// | [`Geometry::large_block_slc`] | 2 KiB | 64 | SLC |
/// | [`Geometry::mlc2_1gib`] | 2 KiB | 128 | MLC×2 |
///
/// # Example
///
/// ```
/// use nand::Geometry;
///
/// let g = Geometry::mlc2_1gib();
/// assert_eq!(g.blocks(), 4096);
/// assert_eq!(g.pages_per_block(), 128);
/// assert_eq!(g.capacity_bytes(), 1 << 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    blocks: u32,
    pages_per_block: u32,
    page_bytes: u32,
}

impl Geometry {
    /// Creates a geometry from raw dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(blocks: u32, pages_per_block: u32, page_bytes: u32) -> Self {
        assert!(blocks > 0, "geometry must have at least one block");
        assert!(pages_per_block > 0, "blocks must have at least one page");
        assert!(page_bytes > 0, "pages must be at least one byte");
        Self {
            blocks,
            pages_per_block,
            page_bytes,
        }
    }

    /// Small-block SLC flash: 512 B pages, 32 pages per block.
    ///
    /// `capacity_bytes` is rounded down to a whole number of blocks.
    pub fn small_block_slc(capacity_bytes: u64) -> Self {
        Self::for_capacity(capacity_bytes, 32, 512)
    }

    /// Large-block SLC flash: 2 KiB pages, 64 pages per block.
    pub fn large_block_slc(capacity_bytes: u64) -> Self {
        Self::for_capacity(capacity_bytes, 64, 2048)
    }

    /// The paper's evaluation chip: 1 GiB MLC×2, 2 KiB pages, 128 pages per
    /// block — 4096 blocks in total.
    pub fn mlc2_1gib() -> Self {
        Self::for_capacity(1 << 30, 128, 2048)
    }

    /// MLC×2 flash of an arbitrary capacity (2 KiB pages, 128 pages/block).
    pub fn mlc2(capacity_bytes: u64) -> Self {
        Self::for_capacity(capacity_bytes, 128, 2048)
    }

    fn for_capacity(capacity_bytes: u64, pages_per_block: u32, page_bytes: u32) -> Self {
        let block_bytes = u64::from(pages_per_block) * u64::from(page_bytes);
        let blocks = capacity_bytes / block_bytes;
        assert!(blocks > 0, "capacity smaller than a single block");
        assert!(blocks <= u64::from(u32::MAX), "capacity too large");
        Self::new(blocks as u32, pages_per_block, page_bytes)
    }

    /// Returns a copy with the block count replaced.
    ///
    /// Useful for shrinking a standard geometry so that tests and
    /// scaled-down experiments run quickly while preserving the page layout.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn with_blocks(self, blocks: u32) -> Self {
        Self::new(blocks, self.pages_per_block, self.page_bytes)
    }

    /// Number of erase blocks on the chip.
    pub fn blocks(&self) -> u32 {
        self.blocks
    }

    /// Number of pages in each erase block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// User-data bytes per page (spare area not included).
    pub fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    /// Total number of pages on the chip.
    pub fn total_pages(&self) -> u64 {
        u64::from(self.blocks) * u64::from(self.pages_per_block)
    }

    /// Total user-data capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * u64::from(self.page_bytes)
    }

    /// Bytes held by one erase block.
    pub fn block_bytes(&self) -> u64 {
        u64::from(self.pages_per_block) * u64::from(self.page_bytes)
    }

    /// Flat page index of `(block, page)`, the inverse of
    /// [`Geometry::split_page_index`].
    pub fn page_index(&self, block: u32, page: u32) -> u64 {
        debug_assert!(block < self.blocks && page < self.pages_per_block);
        u64::from(block) * u64::from(self.pages_per_block) + u64::from(page)
    }

    /// Splits a flat page index back into `(block, page)`.
    pub fn split_page_index(&self, index: u64) -> (u32, u32) {
        let ppb = u64::from(self.pages_per_block);
        ((index / ppb) as u32, (index % ppb) as u32)
    }

    /// Checks that a block index is on-chip.
    pub fn contains_block(&self, block: u32) -> bool {
        block < self.blocks
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} blocks x {} pages x {} B ({} MiB)",
            self.blocks,
            self.pages_per_block,
            self.page_bytes,
            self.capacity_bytes() >> 20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let small = Geometry::small_block_slc(128 << 20);
        assert_eq!(small.page_bytes(), 512);
        assert_eq!(small.pages_per_block(), 32);
        assert_eq!(small.capacity_bytes(), 128 << 20);

        let large = Geometry::large_block_slc(1 << 30);
        assert_eq!(large.page_bytes(), 2048);
        assert_eq!(large.pages_per_block(), 64);

        let mlc = Geometry::mlc2_1gib();
        assert_eq!(mlc.blocks(), 4096);
        assert_eq!(mlc.pages_per_block(), 128);
        assert_eq!(mlc.page_bytes(), 2048);
        assert_eq!(mlc.capacity_bytes(), 1 << 30);
    }

    #[test]
    fn mlc_lba_space_matches_paper() {
        // The paper reports 2,097,152 LBAs for the 1 GiB MLC×2 chip
        // (one LBA per 512 B sector... no: per 2 KiB page would be 524,288;
        // the paper's 2,097,152 counts 512 B sectors). Our device addresses
        // pages; the trace crate maps sectors onto pages.
        let g = Geometry::mlc2_1gib();
        assert_eq!(g.total_pages(), 524_288);
        assert_eq!(g.capacity_bytes() / 512, 2_097_152);
    }

    #[test]
    fn page_index_round_trips() {
        let g = Geometry::new(10, 16, 512);
        for block in 0..10 {
            for page in 0..16 {
                let idx = g.page_index(block, page);
                assert_eq!(g.split_page_index(idx), (block, page));
            }
        }
    }

    #[test]
    fn with_blocks_overrides_count() {
        let g = Geometry::mlc2_1gib().with_blocks(64);
        assert_eq!(g.blocks(), 64);
        assert_eq!(g.pages_per_block(), 128);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        Geometry::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "capacity smaller")]
    fn sub_block_capacity_rejected() {
        Geometry::small_block_slc(1);
    }

    #[test]
    fn display_mentions_dimensions() {
        let g = Geometry::mlc2_1gib();
        let s = g.to_string();
        assert!(s.contains("4096 blocks"));
        assert!(s.contains("1024 MiB"));
    }
}
