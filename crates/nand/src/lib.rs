//! # `nand` — a NAND flash memory device simulator
//!
//! This crate models the raw NAND flash chip that a flash translation layer
//! (FTL/NFTL) manages: blocks made of pages, program/erase semantics,
//! per-block wear, cell endurance, and operation timing. It is the substrate
//! for the DAC 2007 static wear leveling reproduction, but it is a
//! general-purpose simulator usable for any FTL research.
//!
//! ## Model
//!
//! - A chip is a [`Geometry`]: `blocks × pages_per_block × page_size` bytes.
//! - Reads and programs operate on single pages; erases operate on blocks
//!   (the smallest erasable unit), exactly as in real NAND.
//! - A page can be programmed **once** between erases; re-programming a page
//!   without an intervening block erase is rejected (out-place update is
//!   therefore forced onto the layer above).
//! - Each page carries a small **spare area** ([`SpareArea`]) in which the
//!   translation layer stores the owning LBA and a status word, mirroring the
//!   out-of-band region of real chips.
//! - Every block counts its erases. When a block exceeds the endurance of its
//!   [`CellKind`] (100 000 cycles for SLC, 10 000 for MLC×2), the device
//!   records the **first failure** — the primary endurance metric of the
//!   paper — and, depending on [`WearPolicy`], either keeps simulating or
//!   starts failing erases.
//! - The device accumulates busy time from per-op latencies ([`Timing`]), so
//!   experiments can report simulated device time without wall-clock cost.
//!
//! ## Example
//!
//! ```
//! use nand::{CellKind, Geometry, NandDevice, PageAddr, SpareArea};
//!
//! # fn main() -> Result<(), nand::NandError> {
//! let geometry = Geometry::mlc2_1gib().with_blocks(16);
//! let mut device = NandDevice::new(geometry, CellKind::Mlc2.spec());
//!
//! let page = PageAddr::new(0, 0);
//! device.program(page, 0xDEAD_BEEF, SpareArea::valid(42))?;
//! let read = device.read(page)?;
//! assert_eq!(read.data, 0xDEAD_BEEF);
//! assert_eq!(read.spare.lba(), Some(42));
//!
//! device.erase(0)?;
//! assert_eq!(device.block(0).erase_count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod block;
mod cell;
mod channels;
mod device;
mod error;
pub mod fault;
pub mod freelist;
mod geometry;
mod page;
mod stats;
pub mod victim;
mod wearmap;

pub use block::{Block, BlockState};
pub use cell::{CellKind, CellSpec, Timing};
pub use channels::ChannelGeometry;
pub use device::{DeviceCounters, FailureRecord, NandDevice, ReadResult, WearPolicy};
pub use error::NandError;
pub use fault::FaultPlan;
pub use freelist::FreeBlockLadder;
pub use geometry::Geometry;
pub use page::{PageAddr, PageState, SpareArea};
pub use stats::EraseStats;
pub use victim::VictimIndex;
pub use wearmap::WearMap;

/// Simulated time in nanoseconds since the device was powered on.
///
/// The device advances this clock by the latency of every operation it
/// performs, so it measures *device busy time*, not host wall-clock time.
pub type DeviceNanos = u64;

/// A logical block address as seen by the host (a 512 B–4 KiB sector index,
/// depending on the page size of the underlying geometry).
pub type Lba = u64;
