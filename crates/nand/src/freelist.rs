//! A wear-bucketed free-block list with O(1) amortized min-wear pop.
//!
//! The Cleaner of the paper allocates the free block with the *lowest* erase
//! count (dynamic wear leveling). A plain `Vec` makes that an O(free) scan
//! on every frontier allocation — one of the hottest paths of a simulated
//! run. Erase counts only ever grow, and grow by one per erase, so an
//! indexed bucket ladder (bucket = absolute erase count) gives O(1) push
//! and O(1) amortized pop: the minimum cursor only moves backward when a
//! lower-wear block is pushed, which itself bounds the forward re-scans.
//!
//! Shared by the page-mapping FTL and the NFTL (both of this workspace's
//! translation layers allocate the same way).

use std::collections::VecDeque;

/// Free blocks bucketed by absolute erase count; pops lowest wear first,
/// FIFO within a wear level (deterministic).
#[derive(Debug, Clone, Default)]
pub struct FreeBlockLadder {
    /// `buckets[w]` holds the free blocks with erase count `w`.
    buckets: Vec<VecDeque<u32>>,
    /// No non-empty bucket exists below this index.
    min_hint: usize,
    len: usize,
}

impl FreeBlockLadder {
    /// An empty ladder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of free blocks held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ladder holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `block` with the given erase count.
    pub fn push(&mut self, block: u32, wear: u64) {
        let wear = usize::try_from(wear).expect("erase count fits usize");
        if wear >= self.buckets.len() {
            self.buckets.resize_with(wear + 1, VecDeque::new);
        }
        self.buckets[wear].push_back(block);
        if self.len == 0 || wear < self.min_hint {
            self.min_hint = wear;
        }
        self.len += 1;
    }

    /// Removes and returns a block with the lowest erase count (FIFO among
    /// equals), or `None` when empty.
    pub fn pop_min(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.min_hint].is_empty() {
            self.min_hint += 1;
        }
        let block = self.buckets[self.min_hint].pop_front().expect("non-empty");
        self.len -= 1;
        Some(block)
    }

    /// Removes a specific block, given the erase count it was pushed with.
    /// Returns whether it was present. O(bucket) — used only on the rare
    /// retire path.
    pub fn remove(&mut self, block: u32, wear: u64) -> bool {
        let wear = wear as usize;
        let Some(bucket) = self.buckets.get_mut(wear) else {
            return false;
        };
        match bucket.iter().position(|&b| b == block) {
            Some(at) => {
                bucket.remove(at);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Moves a block from one wear level to another, preserving FIFO age at
    /// the new level. Needed when the SW Leveler erases a block *while it
    /// sits in the free pool* (in-place leveling of free blocks bumps their
    /// wear without an allocate/free round trip).
    pub fn reposition(&mut self, block: u32, old_wear: u64, new_wear: u64) {
        let removed = self.remove(block, old_wear);
        debug_assert!(removed, "repositioned block {block} was not in the ladder");
        if removed {
            self.push(block, new_wear);
        }
    }

    /// Removes every block.
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.min_hint = 0;
        self.len = 0;
    }

    /// Iterates over all held blocks in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.buckets.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_lowest_wear_first() {
        let mut ladder = FreeBlockLadder::new();
        ladder.push(7, 3);
        ladder.push(1, 1);
        ladder.push(2, 2);
        assert_eq!(ladder.pop_min(), Some(1));
        assert_eq!(ladder.pop_min(), Some(2));
        assert_eq!(ladder.pop_min(), Some(7));
        assert_eq!(ladder.pop_min(), None);
    }

    #[test]
    fn fifo_within_a_wear_level() {
        let mut ladder = FreeBlockLadder::new();
        ladder.push(5, 2);
        ladder.push(9, 2);
        ladder.push(3, 2);
        assert_eq!(ladder.pop_min(), Some(5));
        assert_eq!(ladder.pop_min(), Some(9));
        assert_eq!(ladder.pop_min(), Some(3));
    }

    #[test]
    fn min_cursor_moves_back_on_fresh_push() {
        let mut ladder = FreeBlockLadder::new();
        ladder.push(1, 10);
        assert_eq!(ladder.pop_min(), Some(1));
        ladder.push(2, 10);
        ladder.push(3, 4); // fresher block arrives later
        assert_eq!(ladder.pop_min(), Some(3));
        assert_eq!(ladder.pop_min(), Some(2));
    }

    #[test]
    fn remove_and_reposition() {
        let mut ladder = FreeBlockLadder::new();
        ladder.push(1, 0);
        ladder.push(2, 0);
        assert!(ladder.remove(1, 0));
        assert!(!ladder.remove(1, 0));
        assert_eq!(ladder.len(), 1);
        // Block 2 erased in place: 0 → 1.
        ladder.reposition(2, 0, 1);
        ladder.push(4, 0);
        assert_eq!(ladder.pop_min(), Some(4));
        assert_eq!(ladder.pop_min(), Some(2));
        assert!(ladder.is_empty());
    }

    #[test]
    fn matches_linear_scan_reference() {
        // Randomized push/pop agree with a brute-force min scan that
        // replicates the old Vec behavior's *choice of wear level* (the
        // old swap_remove order within a level was arbitrary).
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ladder = FreeBlockLadder::new();
        let mut shadow: Vec<(u32, u64)> = Vec::new();
        for i in 0..4000u32 {
            if shadow.is_empty() || next() % 3 != 0 {
                let wear = next() % 32;
                ladder.push(i, wear);
                shadow.push((i, wear));
            } else {
                let popped = ladder.pop_min().unwrap();
                let min_wear = shadow.iter().map(|&(_, w)| w).min().unwrap();
                let (b, w) = shadow
                    .iter()
                    .copied()
                    .find(|&(b, _)| b == popped)
                    .expect("popped block tracked");
                assert_eq!(w, min_wear, "pop_min returned non-minimal wear");
                shadow.retain(|&(bb, _)| bb != b);
            }
            assert_eq!(ladder.len(), shadow.len());
        }
    }
}
