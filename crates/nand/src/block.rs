//! Erase blocks: page payloads, per-page state, and wear.

use crate::page::{PageState, SpareArea};

/// Wear status of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockState {
    /// Within its rated endurance.
    #[default]
    Healthy,
    /// Erase count has reached or passed the rated endurance.
    WornOut,
}

/// One erase block: payload + spare area per page, page states, erase count.
///
/// Page *data* is modelled as a `u64` token rather than a byte buffer — the
/// wear-leveling study never inspects page contents, only their identity, and
/// a token keeps a 4096-block chip affordable in RAM while still letting
/// tests assert exact read-your-writes behaviour.
#[derive(Debug, Clone)]
pub struct Block {
    states: Vec<PageState>,
    data: Vec<u64>,
    spare: Vec<SpareArea>,
    erase_count: u64,
    valid_pages: u32,
    invalid_pages: u32,
}

impl Block {
    /// A fresh (erased, never-worn) block with `pages` pages.
    pub(crate) fn new(pages: u32) -> Self {
        Self {
            states: vec![PageState::Free; pages as usize],
            data: vec![0; pages as usize],
            spare: vec![SpareArea::default(); pages as usize],
            erase_count: 0,
            valid_pages: 0,
            invalid_pages: 0,
        }
    }

    /// Number of times this block has been erased.
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// Count of pages currently holding live data.
    pub fn valid_pages(&self) -> u32 {
        self.valid_pages
    }

    /// Count of pages holding superseded data.
    pub fn invalid_pages(&self) -> u32 {
        self.invalid_pages
    }

    /// Count of erased, programmable pages.
    pub fn free_pages(&self) -> u32 {
        self.states.len() as u32 - self.valid_pages - self.invalid_pages
    }

    /// State of page `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page_state(&self, page: u32) -> PageState {
        self.states[page as usize]
    }

    /// Spare-area contents of page `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn spare(&self, page: u32) -> SpareArea {
        self.spare[page as usize]
    }

    pub(crate) fn data(&self, page: u32) -> u64 {
        self.data[page as usize]
    }

    pub(crate) fn program(&mut self, page: u32, data: u64, spare: SpareArea) {
        debug_assert!(self.states[page as usize].is_free());
        self.states[page as usize] = PageState::Valid;
        self.data[page as usize] = data;
        self.spare[page as usize] = spare;
        self.valid_pages += 1;
    }

    pub(crate) fn invalidate(&mut self, page: u32) {
        debug_assert!(self.states[page as usize].is_valid());
        self.states[page as usize] = PageState::Invalid;
        self.valid_pages -= 1;
        self.invalid_pages += 1;
    }

    /// Models a program torn by a fault or power cut: the page is consumed
    /// (free → invalid) but carries no readable metadata, exactly how the
    /// translation layers treat a half-programmed page at mount time.
    pub(crate) fn tear_program(&mut self, page: u32) {
        debug_assert!(self.states[page as usize].is_free());
        self.states[page as usize] = PageState::Invalid;
        self.spare[page as usize] = SpareArea::default();
        self.invalid_pages += 1;
    }

    /// Models an erase torn by a power cut: the erase pulse started, so every
    /// page's contents are untrustworthy, but the pages never reached the
    /// clean free state. All non-free pages collapse to invalid with default
    /// spares; the erase count does not advance (the cycle never completed).
    pub(crate) fn tear_erase(&mut self) {
        for (i, state) in self.states.iter_mut().enumerate() {
            if state.is_valid() {
                self.valid_pages -= 1;
                self.invalid_pages += 1;
            }
            if !state.is_free() {
                *state = PageState::Invalid;
                self.spare[i] = SpareArea::default();
            }
        }
    }

    /// Programs the bad-block marker into the spare area of page 0,
    /// regardless of the page's state (spare bytes of real chips can be
    /// programmed independently of the data area). Page states and counts
    /// are untouched: the marker is out-of-band metadata only.
    pub(crate) fn mark_bad(&mut self) {
        self.spare[0] = SpareArea::bad_block();
    }

    pub(crate) fn erase(&mut self) {
        for state in &mut self.states {
            *state = PageState::Free;
        }
        for spare in &mut self.spare {
            *spare = SpareArea::default();
        }
        self.erase_count += 1;
        self.valid_pages = 0;
        self.invalid_pages = 0;
    }

    /// Wear status relative to `endurance` rated cycles.
    pub fn state(&self, endurance: u32) -> BlockState {
        if self.erase_count >= u64::from(endurance) {
            BlockState::WornOut
        } else {
            BlockState::Healthy
        }
    }

    /// Iterates over `(page_index, state)` pairs.
    pub fn page_states(&self) -> impl Iterator<Item = (u32, PageState)> + '_ {
        self.states.iter().enumerate().map(|(i, s)| (i as u32, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_all_free() {
        let b = Block::new(8);
        assert_eq!(b.free_pages(), 8);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.invalid_pages(), 0);
        assert_eq!(b.erase_count(), 0);
        assert!(b.page_states().all(|(_, s)| s.is_free()));
    }

    #[test]
    fn program_then_invalidate_tracks_counts() {
        let mut b = Block::new(4);
        b.program(1, 0xAA, SpareArea::valid(9));
        assert_eq!(b.valid_pages(), 1);
        assert_eq!(b.free_pages(), 3);
        assert_eq!(b.spare(1).lba(), Some(9));
        assert_eq!(b.data(1), 0xAA);

        b.invalidate(1);
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.invalid_pages(), 1);
        assert!(b.page_state(1).is_invalid());
    }

    #[test]
    fn erase_resets_pages_and_bumps_count() {
        let mut b = Block::new(4);
        b.program(0, 1, SpareArea::valid(0));
        b.program(1, 2, SpareArea::valid(1));
        b.invalidate(0);
        b.erase();
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.free_pages(), 4);
        assert!(b.page_states().all(|(_, s)| s.is_free()));
        assert_eq!(b.spare(0).lba(), None);
    }

    #[test]
    fn wear_state_transitions_at_endurance() {
        let mut b = Block::new(1);
        for _ in 0..3 {
            b.erase();
        }
        assert_eq!(b.state(4), BlockState::Healthy);
        assert_eq!(b.state(3), BlockState::WornOut);
        assert_eq!(b.state(2), BlockState::WornOut);
    }
}
