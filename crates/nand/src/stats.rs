//! Erase-count statistics across the chip (Table 4 of the paper).

use std::fmt;

/// Summary statistics of per-block erase counts.
///
/// This is the quantity Table 4 of the paper reports: average, standard
/// deviation, and maximum erase counts after a long simulation — the
/// footprint of (un)even wear.
///
/// # Example
///
/// ```
/// use nand::EraseStats;
///
/// let stats = EraseStats::from_counts([2, 4, 6].iter().copied());
/// assert_eq!(stats.mean, 4.0);
/// assert_eq!(stats.max, 6);
/// assert_eq!(stats.min, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EraseStats {
    /// Mean erase count.
    pub mean: f64,
    /// Population standard deviation of erase counts.
    pub std_dev: f64,
    /// Largest per-block erase count.
    pub max: u64,
    /// Smallest per-block erase count.
    pub min: u64,
    /// Number of blocks sampled.
    pub blocks: usize,
    /// Sum of all erase counts.
    pub total: u64,
}

impl EraseStats {
    /// Computes statistics from an iterator of per-block erase counts.
    ///
    /// Returns an all-zero summary when the iterator is empty.
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        let mut n = 0usize;
        let mut sum = 0u64;
        let mut sum_sq = 0f64;
        let mut max = 0u64;
        let mut min = u64::MAX;
        for c in counts {
            n += 1;
            sum += c;
            sum_sq += (c as f64) * (c as f64);
            max = max.max(c);
            min = min.min(c);
        }
        if n == 0 {
            return Self {
                mean: 0.0,
                std_dev: 0.0,
                max: 0,
                min: 0,
                blocks: 0,
                total: 0,
            };
        }
        let mean = sum as f64 / n as f64;
        let variance = (sum_sq / n as f64 - mean * mean).max(0.0);
        Self {
            mean,
            std_dev: variance.sqrt(),
            max,
            min,
            blocks: n,
            total: sum,
        }
    }

    /// Unevenness indicator: `max / mean` (1.0 is perfectly even).
    ///
    /// Returns 0.0 when no erase has happened.
    pub fn max_over_mean(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

impl fmt::Display for EraseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "avg {:.1}, dev {:.1}, max {}, min {} over {} blocks",
            self.mean, self.std_dev, self.max, self.min, self.blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = EraseStats::from_counts(std::iter::empty());
        assert_eq!(s.blocks, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max_over_mean(), 0.0);
    }

    #[test]
    fn uniform_counts_have_zero_deviation() {
        let s = EraseStats::from_counts([5, 5, 5, 5].iter().copied());
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 5);
        assert_eq!(s.total, 20);
        assert!((s.max_over_mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_deviation() {
        // counts 2, 4, 4, 4, 5, 5, 7, 9 → mean 5, population std dev 2.
        let s = EraseStats::from_counts([2, 4, 4, 4, 5, 5, 7, 9].iter().copied());
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 9);
        assert_eq!(s.min, 2);
    }

    #[test]
    fn display_is_compact() {
        let s = EraseStats::from_counts([1, 3].iter().copied());
        let msg = s.to_string();
        assert!(msg.contains("avg 2.0"));
        assert!(msg.contains("2 blocks"));
    }
}
