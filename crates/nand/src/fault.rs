//! Deterministic fault injection for the simulated chip.
//!
//! A [`FaultPlan`] is a pure description of the faults a run should see,
//! seeded through [`swl_core::rng::SplitMix64`] so every decision is
//! reproducible bit-for-bit: the same plan against the same workload fires
//! the same faults at the same operations on every platform. Attach one with
//! [`NandDevice::with_fault_plan`](crate::NandDevice::with_fault_plan).
//!
//! Four fault classes are modelled, matching what translation layers must
//! survive on real NAND:
//!
//! - **Program failures** ([`NandError::ProgramFailed`]): each program draws
//!   against [`FaultPlan::with_program_fail_prob`]. A failed program consumes
//!   the page (torn to invalid, no readable spare) and marks the block
//!   *grown-bad*, so its next erase fails too — the layer must remap the
//!   write and retire the block.
//! - **Erase failures** ([`NandError::EraseFailed`]): drawn against
//!   [`FaultPlan::with_erase_fail_prob`]; grown-bad blocks always fail.
//!   Erase failures are permanent.
//! - **Endurance retirement**: each block gets a private endurance limit
//!   drawn uniformly from [`FaultPlan::with_endurance_range`]; an erase at or
//!   past the limit fails. This models the per-block failure-onset spread of
//!   real chips instead of the single rated constant of
//!   [`CellSpec::endurance`](crate::CellSpec).
//! - **Power cuts** ([`NandError::PowerCut`]): the plan names one mutating
//!   operation (program or erase, counted together from 0) at which power
//!   dies. The in-flight operation is either *torn* — a program leaves the
//!   page invalid with no metadata, an erase collapses the block's pages to
//!   invalid without completing the cycle — or dropped cleanly. Every later
//!   operation fails with [`NandError::PowerCut`] until the harness calls
//!   [`NandDevice::power_cycle`](crate::NandDevice::power_cycle).
//!
//! The per-block endurance limit is derived from the seed and the block
//! index alone (not from the shared draw stream), so it is independent of
//! operation order. A plan with zero probabilities, no endurance range, and
//! no cut point injects nothing and leaves device behaviour bit-identical to
//! having no plan at all.

use swl_core::rng::SplitMix64;

use crate::error::NandError;
use crate::page::PageAddr;

/// A deterministic schedule of device faults; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    program_fail_prob: f64,
    erase_fail_prob: f64,
    endurance_range: Option<(u64, u64)>,
    power_cut_at: Option<u64>,
    torn_cut: bool,
}

impl FaultPlan {
    /// A plan that injects nothing, seeded for later knobs.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            program_fail_prob: 0.0,
            erase_fail_prob: 0.0,
            endurance_range: None,
            power_cut_at: None,
            torn_cut: true,
        }
    }

    /// Each page program fails with probability `p` (builder style).
    pub fn with_program_fail_prob(mut self, p: f64) -> Self {
        self.program_fail_prob = p;
        self
    }

    /// Each block erase fails with probability `p` (builder style).
    pub fn with_erase_fail_prob(mut self, p: f64) -> Self {
        self.erase_fail_prob = p;
        self
    }

    /// Every block draws a private endurance limit uniformly from
    /// `[lo, hi]` erases; an erase at or past the limit fails permanently
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo == 0`.
    pub fn with_endurance_range(mut self, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "endurance range must be non-empty");
        assert!(lo > 0, "a zero endurance limit would fail the first erase");
        self.endurance_range = Some((lo, hi));
        self
    }

    /// Power dies at the `op`-th mutating operation (programs and erases
    /// share one 0-based counter). With `torn = true` the in-flight
    /// operation is partially applied; with `false` it is dropped cleanly
    /// (builder style).
    pub fn with_power_cut(mut self, op: u64, torn: bool) -> Self {
        self.power_cut_at = Some(op);
        self.torn_cut = torn;
        self
    }

    /// The seed the plan's draw streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured power-cut operation index, if one is (still) armed.
    pub fn power_cut_at(&self) -> Option<u64> {
        self.power_cut_at
    }

    /// The endurance limit `block` drew from the configured range, if any.
    ///
    /// Deterministic in `(seed, block)` only, so the limit does not depend
    /// on the order in which blocks are touched.
    pub fn endurance_limit(&self, block: u32) -> Option<u64> {
        let (lo, hi) = self.endurance_range?;
        // A throwaway stream keyed by the block index; the multiplier is an
        // arbitrary odd constant to decorrelate adjacent blocks.
        let key = self
            .seed
            .wrapping_add((u64::from(block) + 1).wrapping_mul(0xA076_1D64_78BD_642F));
        Some(SplitMix64::new(key).range_inclusive_u64(lo, hi))
    }
}

/// Live fault-injection state carried by the device: the immutable plan plus
/// the draw stream, grown-bad marks, and the power switch.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
    bad: Vec<bool>,
    ops: u64,
    power_cut: bool,
}

/// What the fault layer decided about one mutating operation.
pub(crate) enum FaultDecision {
    /// No fault; perform the operation normally.
    Proceed,
    /// Fail the operation with this error (the caller applies side effects
    /// such as tearing pages before returning it).
    Fail(NandError),
    /// The power-cut point fired on this operation. `torn` says whether the
    /// in-flight operation must be partially applied.
    Cut {
        /// Tear the in-flight operation rather than dropping it cleanly.
        torn: bool,
        /// Operation index at which the cut fired (for telemetry).
        at_op: u64,
    },
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, blocks: u32) -> Self {
        Self {
            plan,
            rng: SplitMix64::new(plan.seed),
            bad: vec![false; blocks as usize],
            ops: 0,
            power_cut: false,
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn is_bad(&self, block: u32) -> bool {
        self.bad.get(block as usize).copied().unwrap_or(false)
    }

    pub(crate) fn mark_bad(&mut self, block: u32) {
        self.bad[block as usize] = true;
    }

    pub(crate) fn power_is_cut(&self) -> bool {
        self.power_cut
    }

    /// Restores power. The consumed cut point stays consumed; arm a new one
    /// with [`rearm_power_cut`](Self::rearm_power_cut) for sweep harnesses.
    pub(crate) fn power_cycle(&mut self) {
        self.power_cut = false;
    }

    pub(crate) fn rearm_power_cut(&mut self, op: u64, torn: bool) {
        self.plan.power_cut_at = Some(op);
        self.plan.torn_cut = torn;
        self.power_cut = false;
    }

    /// Removes a still-armed cut point and restores power. Multi-chip
    /// harnesses use this on the chips whose cut never fired: one shared
    /// power rail dies once, so a cut consumed on any chip is consumed on
    /// all of them.
    pub(crate) fn disarm_power_cut(&mut self) {
        self.plan.power_cut_at = None;
        self.power_cut = false;
    }

    pub(crate) fn ops(&self) -> u64 {
        self.ops
    }

    /// Runs the shared pre-operation checks for one mutating operation:
    /// consumes the op index, fires the power cut if this is the planned
    /// operation, and otherwise draws the given failure probability.
    ///
    /// Exactly one RNG draw happens per operation with a non-zero
    /// probability, so fault schedules do not shift when unrelated knobs
    /// change.
    fn decide(&mut self, fail_prob: f64, fail: NandError) -> FaultDecision {
        let at_op = self.ops;
        self.ops += 1;
        if self.plan.power_cut_at == Some(at_op) {
            self.plan.power_cut_at = None;
            self.power_cut = true;
            return FaultDecision::Cut {
                torn: self.plan.torn_cut,
                at_op,
            };
        }
        if fail_prob > 0.0 && self.rng.chance(fail_prob) {
            return FaultDecision::Fail(fail);
        }
        FaultDecision::Proceed
    }

    pub(crate) fn decide_program(&mut self, addr: PageAddr) -> FaultDecision {
        self.decide(
            self.plan.program_fail_prob,
            NandError::ProgramFailed { addr },
        )
    }

    pub(crate) fn decide_erase(&mut self, block: u32, erase_count: u64) -> FaultDecision {
        if self.is_bad(block) {
            // Grown-bad blocks fail every erase without consuming an op slot
            // or a draw: the operation is refused up front.
            return FaultDecision::Fail(NandError::EraseFailed { block });
        }
        if let Some(limit) = self.plan.endurance_limit(block) {
            if erase_count >= limit {
                self.mark_bad(block);
                return FaultDecision::Fail(NandError::EraseFailed { block });
            }
        }
        match self.decide(self.plan.erase_fail_prob, NandError::EraseFailed { block }) {
            FaultDecision::Fail(e) => {
                self.mark_bad(block);
                FaultDecision::Fail(e)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endurance_limit_is_order_independent_and_in_range() {
        let plan = FaultPlan::new(99).with_endurance_range(50, 60);
        let a = plan.endurance_limit(7).unwrap();
        let b = plan.endurance_limit(3).unwrap();
        assert_eq!(plan.endurance_limit(7).unwrap(), a);
        assert_eq!(plan.endurance_limit(3).unwrap(), b);
        assert!((50..=60).contains(&a));
        assert!((50..=60).contains(&b));
    }

    #[test]
    fn limits_spread_across_blocks() {
        let plan = FaultPlan::new(1).with_endurance_range(1, 1000);
        let limits: Vec<u64> = (0..32).map(|b| plan.endurance_limit(b).unwrap()).collect();
        let distinct: std::collections::HashSet<u64> = limits.iter().copied().collect();
        assert!(distinct.len() > 20, "limits barely vary: {limits:?}");
    }

    #[test]
    fn no_range_means_no_limit() {
        assert_eq!(FaultPlan::new(5).endurance_limit(0), None);
    }

    #[test]
    fn power_cut_fires_once_at_planned_op() {
        let plan = FaultPlan::new(0).with_power_cut(2, true);
        let mut state = FaultState::new(plan, 4);
        let addr = PageAddr::new(0, 0);
        assert!(matches!(state.decide_program(addr), FaultDecision::Proceed));
        assert!(matches!(state.decide_program(addr), FaultDecision::Proceed));
        match state.decide_program(addr) {
            FaultDecision::Cut { torn: true, at_op: 2 } => {}
            _ => panic!("cut expected at op 2"),
        }
        assert!(state.power_is_cut());
        state.power_cycle();
        assert!(!state.power_is_cut());
        // The cut point is consumed: the same op index does not re-fire.
        assert!(matches!(state.decide_program(addr), FaultDecision::Proceed));
    }

    #[test]
    fn grown_bad_blocks_fail_erases_forever() {
        let mut state = FaultState::new(FaultPlan::new(0), 4);
        assert!(matches!(state.decide_erase(1, 0), FaultDecision::Proceed));
        state.mark_bad(1);
        assert!(matches!(
            state.decide_erase(1, 0),
            FaultDecision::Fail(NandError::EraseFailed { block: 1 })
        ));
        assert!(matches!(
            state.decide_erase(1, 5),
            FaultDecision::Fail(NandError::EraseFailed { block: 1 })
        ));
    }

    #[test]
    fn endurance_limit_marks_block_bad() {
        let plan = FaultPlan::new(3).with_endurance_range(2, 2);
        let mut state = FaultState::new(plan, 2);
        assert!(matches!(state.decide_erase(0, 0), FaultDecision::Proceed));
        assert!(matches!(state.decide_erase(0, 1), FaultDecision::Proceed));
        assert!(matches!(
            state.decide_erase(0, 2),
            FaultDecision::Fail(NandError::EraseFailed { block: 0 })
        ));
        assert!(state.is_bad(0));
    }

    #[test]
    fn program_failures_track_probability() {
        let plan = FaultPlan::new(11).with_program_fail_prob(0.25);
        let mut state = FaultState::new(plan, 1);
        let addr = PageAddr::new(0, 0);
        let fails = (0..4000)
            .filter(|_| matches!(state.decide_program(addr), FaultDecision::Fail(_)))
            .count();
        let rate = fails as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate} drifted");
    }
}
