//! Multi-channel array geometry.
//!
//! A real SSD spreads many chips over several independent *channels* (buses).
//! Chips on the same channel share the bus and serialize their transfers;
//! chips on different channels run concurrently. This module models the
//! array shape only — the per-channel devices themselves stay ordinary
//! [`NandDevice`](crate::NandDevice)s, one per channel, where a channel's
//! `chips_per_channel` chips are folded into one device with proportionally
//! more blocks (bus sharing makes them sequential anyway).
//!
//! Logical pages are striped round-robin across channels: host page `lba`
//! lives on channel `lba % channels` at lane-local page `lba / channels`,
//! so consecutive host pages land on different channels and a multi-page
//! host request can overlap its sub-requests.

use std::fmt;

use crate::geometry::Geometry;

/// Shape of a `channels × chips-per-channel` NAND array.
///
/// # Example
///
/// ```
/// use nand::{ChannelGeometry, Geometry};
///
/// let chip = Geometry::new(64, 32, 2048);
/// let array = ChannelGeometry::new(4, 2, chip);
/// assert_eq!(array.channels(), 4);
/// assert_eq!(array.lane_geometry().blocks(), 128); // 2 chips fold into one lane
/// assert_eq!(array.total_blocks(), 512);
/// assert_eq!(array.channel_of(5), 1);
/// assert_eq!(array.lane_lba(5), 1);
/// assert_eq!(array.host_lba(1, 1), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelGeometry {
    channels: u32,
    chips_per_channel: u32,
    chip: Geometry,
}

impl ChannelGeometry {
    /// An array of `channels × chips_per_channel` chips of `chip` geometry.
    ///
    /// # Panics
    ///
    /// Panics when `channels` or `chips_per_channel` is zero.
    pub fn new(channels: u32, chips_per_channel: u32, chip: Geometry) -> Self {
        assert!(channels > 0, "array needs at least one channel");
        assert!(chips_per_channel > 0, "channel needs at least one chip");
        Self {
            channels,
            chips_per_channel,
            chip,
        }
    }

    /// The degenerate single-chip array (`1 × 1`), matching a plain
    /// [`NandDevice`](crate::NandDevice) exactly.
    pub fn single(chip: Geometry) -> Self {
        Self::new(1, 1, chip)
    }

    /// Number of independent channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Chips sharing each channel's bus.
    pub fn chips_per_channel(&self) -> u32 {
        self.chips_per_channel
    }

    /// Geometry of one chip.
    pub fn chip(&self) -> Geometry {
        self.chip
    }

    /// Geometry of one channel's device: the channel's chips folded into a
    /// single device with `chips_per_channel ×` the blocks (the shared bus
    /// serializes them, so one device models the lane faithfully).
    pub fn lane_geometry(&self) -> Geometry {
        self.chip
            .with_blocks(self.chip.blocks() * self.chips_per_channel)
    }

    /// Physical blocks across the whole array.
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.lane_geometry().blocks()) * u64::from(self.channels)
    }

    /// Physical pages across the whole array.
    pub fn total_pages(&self) -> u64 {
        self.lane_geometry().total_pages() * u64::from(self.channels)
    }

    /// Channel that owns host page `lba` (round-robin striping).
    pub fn channel_of(&self, lba: u64) -> u32 {
        (lba % u64::from(self.channels)) as u32
    }

    /// Lane-local page index of host page `lba` on its channel.
    pub fn lane_lba(&self, lba: u64) -> u64 {
        lba / u64::from(self.channels)
    }

    /// Inverse of the striping: host page for `(channel, lane_lba)`.
    pub fn host_lba(&self, channel: u32, lane_lba: u64) -> u64 {
        lane_lba * u64::from(self.channels) + u64::from(channel)
    }

    /// Flat array-wide index of lane-local `block` on `channel`
    /// (lane-major), for reports that need one namespace over all blocks.
    pub fn flat_block(&self, channel: u32, block: u32) -> u64 {
        u64::from(channel) * u64::from(self.lane_geometry().blocks()) + u64::from(block)
    }
}

impl fmt::Display for ChannelGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch × {}chip ({} blocks)",
            self.channels,
            self.chips_per_channel,
            self.total_blocks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Geometry {
        Geometry::new(16, 4, 2048)
    }

    #[test]
    fn striping_round_trips() {
        let g = ChannelGeometry::new(3, 1, chip());
        for lba in 0..100u64 {
            let c = g.channel_of(lba);
            let l = g.lane_lba(lba);
            assert!(c < 3);
            assert_eq!(g.host_lba(c, l), lba);
        }
    }

    #[test]
    fn single_matches_plain_chip() {
        let g = ChannelGeometry::single(chip());
        assert_eq!(g.channels(), 1);
        assert_eq!(g.lane_geometry(), chip());
        assert_eq!(g.total_blocks(), u64::from(chip().blocks()));
        for lba in 0..50u64 {
            assert_eq!(g.channel_of(lba), 0);
            assert_eq!(g.lane_lba(lba), lba);
        }
    }

    #[test]
    fn chips_fold_into_lane_blocks() {
        let g = ChannelGeometry::new(2, 4, chip());
        assert_eq!(g.lane_geometry().blocks(), 64);
        assert_eq!(g.total_blocks(), 128);
        assert_eq!(g.total_pages(), 128 * 4);
    }

    #[test]
    fn flat_block_is_lane_major() {
        let g = ChannelGeometry::new(2, 1, chip());
        assert_eq!(g.flat_block(0, 3), 3);
        assert_eq!(g.flat_block(1, 3), 19);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = ChannelGeometry::new(0, 1, chip());
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chips_rejected() {
        let _ = ChannelGeometry::new(1, 0, chip());
    }

    #[test]
    fn display_is_compact() {
        let g = ChannelGeometry::new(4, 2, chip());
        assert_eq!(g.to_string(), "4ch × 2chip (128 blocks)");
    }
}
