//! Pages: addressing, state, and the spare (out-of-band) area.

use std::fmt;

use crate::Lba;

/// Physical page address: an erase-block index plus a page offset inside it.
///
/// # Example
///
/// ```
/// use nand::{Geometry, PageAddr};
///
/// let g = Geometry::new(8, 4, 512);
/// let addr = PageAddr::new(2, 3);
/// assert_eq!(addr.flat_index(&g), 11);
/// assert_eq!(PageAddr::from_flat_index(&g, 11), addr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddr {
    /// Erase-block index.
    pub block: u32,
    /// Page offset within the block.
    pub page: u32,
}

impl PageAddr {
    /// Creates a page address.
    pub fn new(block: u32, page: u32) -> Self {
        Self { block, page }
    }

    /// Flat page index under `geometry`.
    pub fn flat_index(&self, geometry: &crate::Geometry) -> u64 {
        geometry.page_index(self.block, self.page)
    }

    /// Reconstructs an address from a flat page index.
    pub fn from_flat_index(geometry: &crate::Geometry, index: u64) -> Self {
        let (block, page) = geometry.split_page_index(index);
        Self { block, page }
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.block, self.page)
    }
}

/// Lifecycle state of a physical page.
///
/// The translation layer drives the `Free → Valid → Invalid → (erase) → Free`
/// cycle; the device enforces that only free pages are programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageState {
    /// Erased and ready to be programmed.
    #[default]
    Free,
    /// Holds live data for some LBA.
    Valid,
    /// Held data that has since been superseded; reclaimed by erasing the
    /// containing block.
    Invalid,
}

impl PageState {
    /// `true` for [`PageState::Free`].
    pub fn is_free(&self) -> bool {
        matches!(self, PageState::Free)
    }

    /// `true` for [`PageState::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, PageState::Valid)
    }

    /// `true` for [`PageState::Invalid`].
    pub fn is_invalid(&self) -> bool {
        matches!(self, PageState::Invalid)
    }
}

/// The out-of-band ("spare") area a translation layer writes next to each
/// page: the owning LBA and a free-form status word.
///
/// Real chips reserve 16–64 bytes per page for this; we model only the fields
/// the translation layers need. `lba == u64::MAX` encodes "no LBA recorded"
/// (e.g. metadata pages), exposed as `None` by [`SpareArea::lba`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpareArea {
    raw_lba: u64,
    status: u32,
}

/// Status word value for a freshly written live page.
pub const STATUS_LIVE: u32 = 0;

/// Status word of the on-flash bad-block marker (all bits set — the
/// "non-clean byte in the spare area" convention of real chips).
pub const STATUS_BAD_BLOCK: u32 = u32::MAX;

impl SpareArea {
    /// Spare area recording that the page holds live data for `lba`.
    pub fn valid(lba: Lba) -> Self {
        Self {
            raw_lba: lba,
            status: STATUS_LIVE,
        }
    }

    /// Spare area with an explicit status word (translation-layer defined).
    pub fn with_status(lba: Lba, status: u32) -> Self {
        Self {
            raw_lba: lba,
            status,
        }
    }

    /// Spare area carrying no LBA (metadata / bookkeeping pages).
    pub fn metadata(status: u32) -> Self {
        Self {
            raw_lba: u64::MAX,
            status,
        }
    }

    /// The firmware bad-block marker. Programmed into the spare area of
    /// page 0 when a translation layer retires a block, so that a later
    /// mount rediscovers the retirement instead of resurrecting stale data
    /// (real chips use a designated non-clean spare byte the same way).
    pub fn bad_block() -> Self {
        Self {
            raw_lba: u64::MAX,
            status: STATUS_BAD_BLOCK,
        }
    }

    /// Whether this spare area carries the bad-block marker.
    pub fn is_bad_block_marker(&self) -> bool {
        self.raw_lba == u64::MAX && self.status == STATUS_BAD_BLOCK
    }

    /// The LBA recorded in the spare area, if any.
    pub fn lba(&self) -> Option<Lba> {
        (self.raw_lba != u64::MAX).then_some(self.raw_lba)
    }

    /// The translation-layer status word.
    pub fn status(&self) -> u32 {
        self.status
    }
}

impl Default for SpareArea {
    fn default() -> Self {
        Self::metadata(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Geometry;

    #[test]
    fn page_addr_round_trips_flat_index() {
        let g = Geometry::new(4, 8, 512);
        for flat in 0..g.total_pages() {
            let addr = PageAddr::from_flat_index(&g, flat);
            assert_eq!(addr.flat_index(&g), flat);
        }
    }

    #[test]
    fn state_predicates() {
        assert!(PageState::Free.is_free());
        assert!(PageState::Valid.is_valid());
        assert!(PageState::Invalid.is_invalid());
        assert!(!PageState::Free.is_valid());
        assert_eq!(PageState::default(), PageState::Free);
    }

    #[test]
    fn spare_area_records_lba() {
        let spare = SpareArea::valid(77);
        assert_eq!(spare.lba(), Some(77));
        assert_eq!(spare.status(), STATUS_LIVE);
    }

    #[test]
    fn metadata_spare_has_no_lba() {
        let spare = SpareArea::metadata(9);
        assert_eq!(spare.lba(), None);
        assert_eq!(spare.status(), 9);
    }

    #[test]
    fn display_shows_block_and_page() {
        assert_eq!(PageAddr::new(3, 12).to_string(), "(3,12)");
    }
}
