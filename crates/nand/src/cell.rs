//! Cell technology: endurance limits and operation timing.

use std::fmt;

/// NAND cell technology.
///
/// Endurance figures follow the paper: SLC blocks survive ~100 000
/// program/erase cycles, MLC×2 blocks only ~10 000.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Single-level cell: one bit per cell, 100 000-cycle endurance.
    Slc,
    /// Two-bit multi-level cell: 10 000-cycle endurance, slower erases.
    Mlc2,
}

impl CellKind {
    /// Rated program/erase cycles before a block wears out.
    pub fn endurance(&self) -> u32 {
        match self {
            CellKind::Slc => 100_000,
            CellKind::Mlc2 => 10_000,
        }
    }

    /// Default operation latencies for this technology.
    ///
    /// Returns the exported constant table ([`Timing::SLC`] /
    /// [`Timing::MLC2`]) — the single source every consumer of device
    /// timing shares: the device's busy-time accounting (and therefore the
    /// span stamps in telemetry logs), the simulator's latency histograms,
    /// and the bench latency study all see the same numbers.
    pub fn timing(&self) -> Timing {
        match self {
            CellKind::Slc => Timing::SLC,
            CellKind::Mlc2 => Timing::MLC2,
        }
    }

    /// Bundles endurance and timing into a [`CellSpec`].
    pub fn spec(&self) -> CellSpec {
        CellSpec {
            kind: *self,
            endurance: self.endurance(),
            timing: self.timing(),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Slc => f.write_str("SLC"),
            CellKind::Mlc2 => f.write_str("MLCx2"),
        }
    }
}

/// Per-operation latencies in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timing {
    /// Page read latency.
    pub read_ns: u64,
    /// Page program latency.
    pub program_ns: u64,
    /// Block erase latency.
    pub erase_ns: u64,
}

impl Timing {
    /// SLC timing, following typical large-block SLC datasheets.
    pub const SLC: Timing = Timing {
        read_ns: 25_000,
        program_ns: 200_000,
        erase_ns: 1_000_000,
    };

    /// MLC×2 timing. The 1.5 ms erase is quoted in the paper (§4.2, from
    /// the STMicroelectronics NAND08G part).
    pub const MLC2: Timing = Timing {
        read_ns: 50_000,
        program_ns: 600_000,
        erase_ns: 1_500_000,
    };
}

impl Default for Timing {
    fn default() -> Self {
        Timing::MLC2
    }
}

/// Full cell behaviour: technology, endurance, and timing.
///
/// Experiments that need to finish quickly can scale down `endurance`
/// (see `CellSpec::with_endurance`); the first-failure *ratio* between two
/// translation layers is preserved because wear accumulates linearly.
///
/// # Example
///
/// ```
/// use nand::CellKind;
///
/// let spec = CellKind::Mlc2.spec().with_endurance(512);
/// assert_eq!(spec.endurance, 512);
/// assert_eq!(spec.kind, CellKind::Mlc2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellSpec {
    /// Cell technology.
    pub kind: CellKind,
    /// Program/erase cycles before wear-out.
    pub endurance: u32,
    /// Operation latencies.
    pub timing: Timing,
}

impl CellSpec {
    /// Replaces the endurance rating (for scaled-down experiments).
    ///
    /// # Panics
    ///
    /// Panics if `endurance` is zero.
    pub fn with_endurance(mut self, endurance: u32) -> Self {
        assert!(endurance > 0, "endurance must be positive");
        self.endurance = endurance;
        self
    }

    /// Replaces the timing model.
    pub fn with_timing(mut self, timing: Timing) -> Self {
        self.timing = timing;
        self
    }
}

impl Default for CellSpec {
    fn default() -> Self {
        CellKind::Mlc2.spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endurance_matches_paper() {
        assert_eq!(CellKind::Slc.endurance(), 100_000);
        assert_eq!(CellKind::Mlc2.endurance(), 10_000);
    }

    #[test]
    fn mlc_erase_time_matches_paper() {
        assert_eq!(CellKind::Mlc2.timing().erase_ns, 1_500_000);
    }

    #[test]
    fn timing_comes_from_the_exported_table() {
        assert_eq!(CellKind::Slc.timing(), Timing::SLC);
        assert_eq!(CellKind::Mlc2.timing(), Timing::MLC2);
        assert_eq!(Timing::default(), Timing::MLC2);
    }

    #[test]
    fn spec_bundles_kind() {
        let spec = CellKind::Slc.spec();
        assert_eq!(spec.kind, CellKind::Slc);
        assert_eq!(spec.endurance, 100_000);
    }

    #[test]
    fn with_endurance_scales() {
        let spec = CellKind::Mlc2.spec().with_endurance(100);
        assert_eq!(spec.endurance, 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_endurance_rejected() {
        let _ = CellKind::Mlc2.spec().with_endurance(0);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::Slc.to_string(), "SLC");
        assert_eq!(CellKind::Mlc2.to_string(), "MLCx2");
    }
}
