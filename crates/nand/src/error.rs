//! Error type for device operations.

use std::error::Error;
use std::fmt;

use crate::page::PageAddr;

/// Errors raised by [`crate::NandDevice`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NandError {
    /// The block index is outside the chip geometry.
    BlockOutOfRange {
        /// Offending block index.
        block: u32,
        /// Number of blocks on the chip.
        blocks: u32,
    },
    /// The page offset is outside the block.
    PageOutOfRange {
        /// Offending address.
        addr: PageAddr,
        /// Pages per block on this chip.
        pages_per_block: u32,
    },
    /// Attempt to program a page that is not in the free state
    /// (NAND pages must be erased before they can be programmed again).
    ProgramOnUsedPage {
        /// Offending address.
        addr: PageAddr,
    },
    /// Attempt to read a page that has never been programmed since the last
    /// erase; real chips return all-`0xFF`, we surface it as an error so the
    /// translation layers catch mapping bugs immediately.
    ReadOfFreePage {
        /// Offending address.
        addr: PageAddr,
    },
    /// Attempt to invalidate a page that is not valid.
    InvalidateNonValidPage {
        /// Offending address.
        addr: PageAddr,
    },
    /// Erase refused because the block is worn out and the device runs under
    /// [`crate::WearPolicy::FailWornBlocks`].
    BlockWornOut {
        /// The worn-out block.
        block: u32,
        /// Its erase count at the time of the refused erase.
        erase_count: u64,
    },
    /// A page program failed (injected by the [`crate::FaultPlan`]). The
    /// target page is consumed — torn to the invalid state with no readable
    /// metadata — and the containing block is marked grown-bad, so its next
    /// erase will fail with [`NandError::EraseFailed`]. The translation layer
    /// must retry the write on a different block.
    ProgramFailed {
        /// Address of the page that failed to program.
        addr: PageAddr,
    },
    /// A block erase failed permanently (injected by the
    /// [`crate::FaultPlan`]: a grown-bad block, a per-block endurance limit,
    /// or a probabilistic erase fault). The block must be retired from
    /// rotation; retrying will fail again.
    EraseFailed {
        /// The bad block.
        block: u32,
    },
    /// The fault plan's power-cut point has fired: simulated power is off and
    /// every device operation fails until the harness calls
    /// [`crate::NandDevice::power_cycle`].
    PowerCut,
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::BlockOutOfRange { block, blocks } => {
                write!(f, "block {block} out of range (chip has {blocks} blocks)")
            }
            NandError::PageOutOfRange {
                addr,
                pages_per_block,
            } => write!(
                f,
                "page {addr} out of range (blocks have {pages_per_block} pages)"
            ),
            NandError::ProgramOnUsedPage { addr } => {
                write!(f, "program on non-free page {addr}")
            }
            NandError::ReadOfFreePage { addr } => {
                write!(f, "read of never-programmed page {addr}")
            }
            NandError::InvalidateNonValidPage { addr } => {
                write!(f, "invalidate on non-valid page {addr}")
            }
            NandError::BlockWornOut { block, erase_count } => {
                write!(f, "block {block} worn out after {erase_count} erases")
            }
            NandError::ProgramFailed { addr } => {
                write!(f, "program failed at page {addr} (block is grown-bad)")
            }
            NandError::EraseFailed { block } => {
                write!(f, "erase failed on bad block {block}")
            }
            NandError::PowerCut => {
                write!(f, "power is cut; device needs a power cycle")
            }
        }
    }
}

impl Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = NandError::BlockOutOfRange {
            block: 9,
            blocks: 4,
        };
        let msg = e.to_string();
        assert!(msg.starts_with("block 9"));
        assert!(msg.contains('4'));

        let e = NandError::ProgramOnUsedPage {
            addr: PageAddr::new(1, 2),
        };
        assert!(e.to_string().contains("(1,2)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NandError>();
    }
}
