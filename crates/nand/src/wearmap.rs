//! Visualising wear: textual per-block wear maps and histograms.
//!
//! Endurance studies live and die by seeing *where* the wear sits. This
//! module renders the per-block erase counts of a chip as a compact ASCII
//! map (one glyph per block) and as a bucketed histogram — the terminal
//! equivalent of the heat maps flash vendors print in endurance reports.

use std::fmt;

use crate::stats::EraseStats;

/// Glyph ramp from no wear to heavy wear.
const RAMP: [char; 6] = ['.', '-', '=', '+', '#', '@'];

/// A textual rendering of a chip's wear distribution.
///
/// # Example
///
/// ```
/// use nand::WearMap;
///
/// let map = WearMap::from_counts(&[0, 3, 3, 12, 1, 0, 7, 3]);
/// let text = map.to_string();
/// assert!(text.contains('@'), "hottest block renders as @: {text}");
/// assert!(text.contains('.'), "untouched blocks render as .: {text}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WearMap {
    counts: Vec<u64>,
    stats: EraseStats,
    row_width: usize,
}

impl WearMap {
    /// Builds a map from per-block erase counts.
    pub fn from_counts(counts: &[u64]) -> Self {
        Self {
            counts: counts.to_vec(),
            stats: EraseStats::from_counts(counts.iter().copied()),
            row_width: 64,
        }
    }

    /// Changes the number of blocks rendered per row (default 64).
    ///
    /// # Panics
    ///
    /// Panics if `row_width` is zero.
    pub fn with_row_width(mut self, row_width: usize) -> Self {
        assert!(row_width > 0, "rows must hold at least one block");
        self.row_width = row_width;
        self
    }

    /// The summary statistics behind the map.
    pub fn stats(&self) -> EraseStats {
        self.stats
    }

    /// Glyph for one block, scaled against the maximum count.
    pub fn glyph(&self, block: usize) -> char {
        let count = self.counts[block];
        if count == 0 {
            return RAMP[0];
        }
        if self.stats.max == 0 {
            return RAMP[0];
        }
        let bucket = (count * (RAMP.len() as u64 - 1)).div_ceil(self.stats.max) as usize;
        RAMP[bucket.min(RAMP.len() - 1)]
    }

    /// A bucketed histogram: how many blocks fall into each of `buckets`
    /// equal-width erase-count ranges `[0, max]`.
    pub fn histogram(&self, buckets: usize) -> Vec<usize> {
        assert!(buckets > 0, "need at least one bucket");
        let mut histogram = vec![0usize; buckets];
        if self.stats.max == 0 {
            histogram[0] = self.counts.len();
            return histogram;
        }
        for &count in &self.counts {
            let bucket = (count * buckets as u64 / (self.stats.max + 1)) as usize;
            histogram[bucket.min(buckets - 1)] += 1;
        }
        histogram
    }
}

impl fmt::Display for WearMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.stats)?;
        for (i, _) in self.counts.iter().enumerate() {
            if i > 0 && i % self.row_width == 0 {
                writeln!(f)?;
            }
            write!(f, "{}", self.glyph(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_chip_is_all_dots() {
        let map = WearMap::from_counts(&[0; 16]);
        assert!(map
            .to_string()
            .lines()
            .last()
            .unwrap()
            .chars()
            .all(|c| c == '.'));
    }

    #[test]
    fn hottest_block_gets_heaviest_glyph() {
        let map = WearMap::from_counts(&[1, 2, 10]);
        assert_eq!(map.glyph(2), '@');
        assert_ne!(map.glyph(0), '@');
        assert_eq!(map.glyph(0), map.glyph(0));
    }

    #[test]
    fn zero_count_always_renders_dot() {
        let map = WearMap::from_counts(&[0, 100]);
        assert_eq!(map.glyph(0), '.');
    }

    #[test]
    fn rows_wrap_at_width() {
        let map = WearMap::from_counts(&[1; 10]).with_row_width(4);
        let rendered = map.to_string();
        let body: Vec<&str> = rendered.lines().skip(1).collect();
        assert_eq!(body.len(), 3);
        assert_eq!(body[0].len(), 4);
        assert_eq!(body[2].len(), 2);
    }

    #[test]
    fn histogram_counts_blocks() {
        let map = WearMap::from_counts(&[0, 0, 5, 9]);
        let h = map.histogram(2);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[0], 2, "the two zeros land in the low bucket: {h:?}");
        assert_eq!(h[1], 2);
    }

    #[test]
    fn histogram_of_pristine_chip() {
        let map = WearMap::from_counts(&[0; 8]);
        assert_eq!(map.histogram(4), vec![8, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_row_width_rejected() {
        let _ = WearMap::from_counts(&[0]).with_row_width(0);
    }
}
