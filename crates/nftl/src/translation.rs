//! The block-mapping translation layer: primary/replacement blocks, merges.

use std::collections::BTreeMap;

use flash_telemetry::{Cause, Event, MergeKind, NullSink, Sink, SpanKind, SpanTracker};
use nand::{FreeBlockLadder, NandDevice, PageAddr, SpareArea, VictimIndex};
use swl_core::{LevelOutcome, SwLeveler, SwlCleaner, SwlConfig};

use crate::config::NftlConfig;
use crate::counters::NftlCounters;
use crate::error::NftlError;

/// Sentinel for "no physical block assigned".
const NO_BLOCK: u32 = u32::MAX;

/// Spare-area status marker for pages written into a primary block.
pub(crate) const STATUS_PRIMARY: u32 = 1;
/// Spare-area status marker for pages appended to a replacement block.
pub(crate) const STATUS_REPL: u32 = 2;
/// Low status bits carrying the page kind; the bits above hold the merge
/// generation of primary pages.
const STATUS_KIND_MASK: u32 = 0xFF;
/// Shift from the status word to the merge generation.
const GEN_SHIFT: u32 = 8;

/// Status word for a primary page of merge generation `gen`. The generation
/// lets a remount tell a complete primary from the half-written successor a
/// power cut left behind: every merge writes its copies with the old
/// generation plus one, and erases the old pair only after the new block is
/// complete — so the *lower* generation is always the trustworthy one.
/// (24 bits of generation wrap after ~16M merges of one virtual block;
/// beyond that, duplicate resolution degrades to the valid-page tiebreak.)
fn primary_status(gen: u32) -> u32 {
    STATUS_PRIMARY | ((gen & (u32::MAX >> GEN_SHIFT)) << GEN_SHIFT)
}

/// What a physical block is currently used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockRole {
    Free,
    Primary(u32),
    Replacement(u32),
    /// Worn out and withdrawn from circulation (bad-block management).
    Retired,
}

/// RAM state of an open replacement block (a real NFTL rebuilds this from
/// spare areas at mount time).
#[derive(Debug, Clone)]
struct ReplState {
    block: u32,
    /// Next append position.
    next: u32,
    /// Per offset: newest replacement page + 1; 0 = offset not in this block.
    latest: Box<[u32]>,
}

/// Why a merge ran, for counter attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeCause {
    ReplacementFull,
    GarbageCollection,
    WearLeveling,
}

impl MergeCause {
    /// Erase/copy cause attribution for the telemetry stream.
    fn telemetry_cause(self) -> Cause {
        match self {
            MergeCause::WearLeveling => Cause::Swl,
            _ => Cause::Gc,
        }
    }
}

#[derive(Debug)]
pub(crate) struct Inner<S: Sink = NullSink> {
    device: NandDevice<S>,
    config: NftlConfig,
    virtual_blocks: u32,
    logical_pages: u64,
    /// Per VBA: primary physical block (`NO_BLOCK` when unassigned).
    primary: Vec<u32>,
    /// Per VBA: merge generation of the current primary (see
    /// [`primary_status`]).
    gen: Vec<u32>,
    /// Open replacement blocks, keyed by VBA (ordered for determinism).
    repl: BTreeMap<u32, ReplState>,
    role: Vec<BlockRole>,
    /// Free blocks bucketed by wear; allocation pops the lowest.
    free: FreeBlockLadder,
    /// Incremental index of merge candidates (keyed by VBA; a VBA is a
    /// candidate while it has an open replacement block).
    victims: VictimIndex,
    /// Cyclic cursor for GC victim selection over VBAs.
    gc_scan_vba: u32,
    free_target: u32,
    counters: NftlCounters,
    in_swl: bool,
    /// Causal-span bookkeeping (ids + open stack); dormant under `NullSink`.
    spans: SpanTracker,
}

impl<S: Sink> Inner<S> {
    fn new(device: NandDevice<S>, config: NftlConfig) -> Result<Self, NftlError> {
        let geometry = device.geometry();
        let blocks = geometry.blocks();
        let reserved = config.reserved_blocks.min(blocks.saturating_sub(1));
        let virtual_blocks = blocks - reserved;
        let logical_pages = u64::from(virtual_blocks) * u64::from(geometry.pages_per_block());
        let free_target = config.free_target(blocks);
        let mut free = FreeBlockLadder::new();
        for b in 0..blocks {
            free.push(b, device.block(b).erase_count());
        }
        Ok(Self {
            virtual_blocks,
            logical_pages,
            primary: vec![NO_BLOCK; virtual_blocks as usize],
            gen: vec![0; virtual_blocks as usize],
            repl: BTreeMap::new(),
            role: vec![BlockRole::Free; blocks as usize],
            free,
            victims: VictimIndex::new(virtual_blocks),
            gc_scan_vba: 0,
            free_target,
            counters: NftlCounters::default(),
            device,
            config,
            in_swl: false,
            spans: SpanTracker::new(),
        })
    }

    /// Opens a causal span stamped with the device's cumulative busy time.
    /// Returns the span id, or 0 (which [`Self::span_end`] ignores) when the
    /// sink is compiled out — the disabled path is two constant branches.
    fn span_begin(&mut self, kind: SpanKind) -> u64 {
        if !S::ENABLED {
            return 0;
        }
        let at_ns = self.device.busy_ns();
        let (id, parent) = self.spans.begin();
        self.device.sink_mut().event(Event::SpanBegin {
            id,
            parent,
            kind,
            at_ns,
        });
        id
    }

    /// Closes span `id`, first closing any descendants an error path left
    /// open so the emitted stream stays balanced.
    fn span_end(&mut self, id: u64) {
        if !S::ENABLED || id == 0 {
            return;
        }
        let at_ns = self.device.busy_ns();
        let Self { spans, device, .. } = self;
        spans.end(id, |popped| {
            device.sink_mut().event(Event::SpanEnd { id: popped, at_ns });
        });
    }

    /// Rebuilds all RAM tables from the spare areas of an existing chip —
    /// what real NFTL firmware does at attach time.
    ///
    /// Hardened against the debris a power cut can leave behind:
    ///
    /// - Blocks carrying the on-flash bad-block marker (programmed by
    ///   bad-block management in an earlier session) come back as retired.
    /// - Pages torn mid-program carry no spare metadata and are skipped;
    ///   blocks holding nothing but torn pages (e.g. a torn erase) are
    ///   scrubbed back into the free pool.
    /// - Duplicate primaries for one virtual block — the old pair plus the
    ///   half-finished successor of an interrupted merge — are resolved by
    ///   merge generation: the lower generation is complete (the merge
    ///   erases it only after finishing the new copy), so it wins and the
    ///   other is scrubbed.
    fn mount(device: NandDevice<S>, config: NftlConfig) -> Result<Self, NftlError> {
        let mut inner = Self::new(device, config)?;
        inner.free.clear();
        let blocks = inner.device.geometry().blocks();
        let pages_per_block = inner.device.geometry().pages_per_block();
        // (vba, block, generation) primary candidates; resolved below.
        let mut primaries: Vec<(u32, u32, u32)> = Vec::new();
        let mut scrub: Vec<u32> = Vec::new();

        for b in 0..blocks {
            if inner.device.block(b).spare(0).is_bad_block_marker() {
                inner.role[b as usize] = BlockRole::Retired;
                continue;
            }
            // Classify the block from its first page whose spare metadata
            // survived (torn pages carry none).
            let mut marker: Option<(u32, u64)> = None; // (status, lba)
            let mut programmed = false;
            for (page, state) in inner.device.block(b).page_states() {
                if state.is_free() {
                    continue;
                }
                programmed = true;
                let spare = inner.device.block(b).spare(page);
                if let Some(lba) = spare.lba() {
                    marker = Some((spare.status(), lba));
                    break;
                }
            }
            let Some((status, lba)) = marker else {
                if programmed {
                    // Nothing but torn pages: crash debris, recycle it.
                    scrub.push(b);
                } else {
                    let wear = inner.device.block(b).erase_count();
                    inner.role[b as usize] = BlockRole::Free;
                    inner.free.push(b, wear);
                }
                continue;
            };
            if lba >= inner.logical_pages {
                return Err(NftlError::MountCorrupt { block: b });
            }
            let (vba, _) = inner.split(lba);
            match status & STATUS_KIND_MASK {
                STATUS_PRIMARY => {
                    primaries.push((vba, b, status >> GEN_SHIFT));
                }
                STATUS_REPL => {
                    let mut latest = vec![0u32; pages_per_block as usize].into_boxed_slice();
                    let mut next = 0u32;
                    for (page, state) in inner.device.block(b).page_states() {
                        if state.is_free() {
                            break; // appends are contiguous from page 0
                        }
                        next = page + 1;
                        if !state.is_valid() {
                            continue;
                        }
                        let spare = inner.device.block(b).spare(page);
                        let page_lba = spare.lba().ok_or(NftlError::MountCorrupt { block: b })?;
                        let (page_vba, offset) = inner.split(page_lba);
                        if page_vba != vba {
                            return Err(NftlError::MountCorrupt { block: b });
                        }
                        latest[offset as usize] = page + 1;
                    }
                    let previous = inner.repl.insert(
                        vba,
                        ReplState {
                            block: b,
                            next,
                            latest,
                        },
                    );
                    if previous.is_some() {
                        return Err(NftlError::MountCorrupt { block: b });
                    }
                    inner.role[b as usize] = BlockRole::Replacement(vba);
                }
                _ => return Err(NftlError::MountCorrupt { block: b }),
            }
        }

        // Resolve duplicate primaries: lowest generation wins; ties (only
        // reachable through injected program faults, never through power
        // cuts alone) favour the block serving more live pages, then the
        // lower block number. Losers are crash debris and get scrubbed.
        primaries.sort_by_key(|&(vba, b, gen)| {
            let valid = inner.device.block(b).valid_pages();
            (vba, gen, std::cmp::Reverse(valid), b)
        });
        let mut prev_vba = None;
        for (vba, b, gen) in primaries {
            if prev_vba == Some(vba) {
                scrub.push(b);
                continue;
            }
            prev_vba = Some(vba);
            inner.primary[vba as usize] = b;
            inner.gen[vba as usize] = gen;
            inner.role[b as usize] = BlockRole::Primary(vba);
        }
        for b in scrub {
            inner.scrub_block(b)?;
        }

        // Every replacement must hang off an assigned primary.
        for (&vba, rs) in &inner.repl {
            if inner.primary[vba as usize] == NO_BLOCK {
                return Err(NftlError::MountCorrupt { block: rs.block });
            }
        }
        let vbas: Vec<u32> = inner.repl.keys().copied().collect();
        for vba in vbas {
            inner.refresh_victim(vba);
        }
        Ok(inner)
    }

    fn split(&self, lba: u64) -> (u32, u32) {
        let ppb = u64::from(self.device.geometry().pages_per_block());
        ((lba / ppb) as u32, (lba % ppb) as u32)
    }

    fn lba_of(&self, vba: u32, offset: u32) -> u64 {
        u64::from(vba) * u64::from(self.device.geometry().pages_per_block()) + u64::from(offset)
    }

    fn check_lba(&self, lba: u64) -> Result<(), NftlError> {
        if lba >= self.logical_pages {
            return Err(NftlError::LbaOutOfRange {
                lba,
                logical_pages: self.logical_pages,
            });
        }
        Ok(())
    }

    /// Whether serving a write to `(vba, offset)` would need a fresh block.
    fn write_needs_alloc(&self, vba: u32, offset: u32) -> bool {
        let p = self.primary[vba as usize];
        if p == NO_BLOCK {
            return true;
        }
        if self.device.block(p).page_state(offset).is_free() {
            return false;
        }
        !self.repl.contains_key(&vba)
    }

    fn host_write(&mut self, lba: u64, data: u64, erased: &mut Vec<u32>) -> Result<(), NftlError> {
        self.check_lba(lba)?;
        let (vba, offset) = self.split(lba);

        match self.ensure_free(erased) {
            Ok(()) => {}
            Err(NftlError::NoReclaimableSpace) => {
                // Nothing mergeable yet. Proceed while a merge reserve
                // remains, or when this write allocates nothing.
                let safe = self.free.len() >= 2 || !self.write_needs_alloc(vba, offset);
                if !safe {
                    return Err(NftlError::NoReclaimableSpace);
                }
            }
            Err(other) => return Err(other),
        }

        if self.primary[vba as usize] == NO_BLOCK {
            let p = self.pop_freshest_free()?;
            self.role[p as usize] = BlockRole::Primary(vba);
            self.primary[vba as usize] = p;
        }

        // Retry loop: an injected program failure consumes the target page,
        // so each pass routes the write to the next viable place — the
        // in-place slot, then the replacement block, then (once the
        // replacement fills) a merge that folds the data into a fresh
        // primary. Terminates because every retry consumes pages and the
        // free pool is finite.
        loop {
            let p = self.primary[vba as usize];
            if self.device.block(p).page_state(offset).is_free() {
                // In-place slot still available in the primary block.
                debug_assert!(self
                    .repl
                    .get(&vba)
                    .is_none_or(|rs| rs.latest[offset as usize] == 0));
                let spare = SpareArea::with_status(lba, primary_status(self.gen[vba as usize]));
                match self.device.program(PageAddr::new(p, offset), data, spare) {
                    Ok(()) => {}
                    Err(nand::NandError::ProgramFailed { .. }) => {
                        // Slot consumed, primary grown-bad: fall through to
                        // the replacement path.
                        self.refresh_victim(vba);
                        continue;
                    }
                    Err(other) => {
                        self.refresh_victim(vba);
                        return Err(other.into());
                    }
                }
                // An open replacement makes this VBA a merge candidate whose
                // valid count just grew.
                self.refresh_victim(vba);
                self.counters.host_writes += 1;
                if S::ENABLED {
                    self.device.sink_mut().event(Event::HostWrite { lba });
                }
                return Ok(());
            }

            // Overwrite: goes to the replacement block.
            if !self.repl.contains_key(&vba) {
                let r = self.pop_freshest_free()?;
                self.role[r as usize] = BlockRole::Replacement(vba);
                let pages = self.device.geometry().pages_per_block() as usize;
                self.repl.insert(
                    vba,
                    ReplState {
                        block: r,
                        next: 0,
                        latest: vec![0; pages].into_boxed_slice(),
                    },
                );
            }

            let pages_per_block = self.device.geometry().pages_per_block();
            if self.repl[&vba].next == pages_per_block {
                // Replacement full: merge, folding the incoming data into
                // the fresh primary in place of the offset's old copy. The
                // data lands *before* the merge erases the old pair, so a
                // power cut can never destroy the only surviving copy of
                // the last acknowledged write.
                self.counters.full_merges += 1;
                if S::ENABLED {
                    self.device.sink_mut().event(Event::Merge {
                        vba,
                        kind: MergeKind::Full,
                    });
                }
                self.merge(vba, Some((offset, data)), MergeCause::ReplacementFull, erased)?;
                self.counters.host_writes += 1;
                if S::ENABLED {
                    self.device.sink_mut().event(Event::HostWrite { lba });
                }
                return Ok(());
            }

            let rs = self.repl.get_mut(&vba).expect("replacement just ensured");
            let slot = rs.next;
            let block = rs.block;
            let prev = rs.latest[offset as usize];
            rs.next += 1;
            match self.device.program(
                PageAddr::new(block, slot),
                data,
                SpareArea::with_status(lba, STATUS_REPL),
            ) {
                Ok(()) => {}
                Err(nand::NandError::ProgramFailed { .. }) => {
                    // Slot consumed, replacement grown-bad: the next pass
                    // appends to the following slot or merges once full.
                    self.refresh_victim(vba);
                    continue;
                }
                Err(other) => {
                    self.refresh_victim(vba);
                    return Err(other.into());
                }
            }
            let rs = self.repl.get_mut(&vba).expect("replacement just ensured");
            rs.latest[offset as usize] = slot + 1;
            // Invalidate the superseded copy (replacement page or primary
            // slot). A primary slot consumed by an earlier fault carries no
            // live copy to invalidate.
            if prev != 0 {
                self.device.invalidate(PageAddr::new(block, prev - 1))?;
            } else if self.device.block(p).page_state(offset).is_valid() {
                self.device.invalidate(PageAddr::new(p, offset))?;
            }
            self.refresh_victim(vba);
            self.counters.host_writes += 1;
            if S::ENABLED {
                self.device.sink_mut().event(Event::HostWrite { lba });
            }
            return Ok(());
        }
    }

    fn host_read(&mut self, lba: u64) -> Result<Option<u64>, NftlError> {
        self.check_lba(lba)?;
        let (vba, offset) = self.split(lba);
        self.counters.host_reads += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::HostRead { lba });
        }
        if let Some(rs) = self.repl.get(&vba) {
            let latest = rs.latest[offset as usize];
            if latest != 0 {
                let addr = PageAddr::new(rs.block, latest - 1);
                return Ok(Some(self.device.read(addr)?.data));
            }
        }
        let p = self.primary[vba as usize];
        if p != NO_BLOCK && self.device.block(p).page_state(offset).is_valid() {
            return Ok(Some(self.device.read(PageAddr::new(p, offset))?.data));
        }
        Ok(None)
    }

    /// Keeps the free pool at its target by merging replacement pairs.
    fn ensure_free(&mut self, erased: &mut Vec<u32>) -> Result<(), NftlError> {
        let mut guard = 0u32;
        while (self.free.len() as u32) < self.free_target {
            self.gc_merge_one(erased)?;
            guard += 1;
            if guard > self.device.geometry().blocks() * 2 {
                return Err(NftlError::FreeExhausted);
            }
        }
        Ok(())
    }

    /// Re-reports one VBA to the victim index. Must be called after any
    /// event that changes the VBA's merge stats or candidacy: opening or
    /// closing its replacement block, or programming/invalidating pages in
    /// either block of the pair.
    fn refresh_victim(&mut self, vba: u32) {
        let (eligible, invalid, valid) = match self.repl.get(&vba) {
            Some(rs) => {
                let pb = self.device.block(self.primary[vba as usize]);
                let rb = self.device.block(rs.block);
                (
                    true,
                    pb.invalid_pages() + rb.invalid_pages(),
                    pb.valid_pages() + rb.valid_pages(),
                )
            }
            None => (false, 0, 0),
        };
        self.victims.update(vba, eligible, invalid, valid);
    }

    /// The pre-index cyclic scan over open replacements, kept as the oracle
    /// the incremental [`VictimIndex`] is checked against under
    /// `debug_assertions`. Pure: does not advance `gc_scan_vba`.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn reference_select_victim(&self) -> Option<u32> {
        let start = self.gc_scan_vba;
        let mut fallback: Option<(u64, u32)> = None; // (invalid, vba)
        let keys = self
            .repl
            .range(start..)
            .map(|(&v, _)| v)
            .chain(self.repl.range(..start).map(|(&v, _)| v));
        for vba in keys {
            let rs = &self.repl[&vba];
            let p = self.primary[vba as usize];
            let pb = self.device.block(p);
            let rb = self.device.block(rs.block);
            let invalid = u64::from(pb.invalid_pages()) + u64::from(rb.invalid_pages());
            let valid = u64::from(pb.valid_pages()) + u64::from(rb.valid_pages());
            if invalid > valid {
                return Some(vba);
            }
            if invalid > 0 && fallback.is_none_or(|(best, _)| invalid > best) {
                fallback = Some((invalid, vba));
            }
        }
        fallback.map(|(_, v)| v)
    }

    /// Greedy victim selection over open replacements (cyclic over VBAs):
    /// first pair whose invalid pages outnumber their valid pages, falling
    /// back to the pair with the most invalid pages. Answered by the
    /// incremental [`VictimIndex`] instead of a linear scan.
    fn gc_merge_one(&mut self, erased: &mut Vec<u32>) -> Result<(), NftlError> {
        // One GC episode under a `gc` span; the merge it runs opens its own
        // nested `merge` span, so the pick/bookkeeping cost and the copy
        // cascade are attributed separately.
        let span = self.span_begin(SpanKind::Gc);
        let result = self.gc_merge_one_inner(erased);
        self.span_end(span);
        result
    }

    fn gc_merge_one_inner(&mut self, erased: &mut Vec<u32>) -> Result<(), NftlError> {
        let choice = self.victims.select(self.gc_scan_vba);
        debug_assert_eq!(
            choice,
            self.reference_select_victim(),
            "victim index diverged from the linear-scan oracle"
        );
        let vba = choice.ok_or(NftlError::NoReclaimableSpace)?;
        self.gc_scan_vba = vba.wrapping_add(1) % self.virtual_blocks.max(1);
        self.counters.gc_collections += 1;
        self.counters.gc_merges += 1;
        if S::ENABLED {
            let (invalid, valid) = match self.repl.get(&vba) {
                Some(rs) => {
                    let pb = self.device.block(self.primary[vba as usize]);
                    let rb = self.device.block(rs.block);
                    (
                        pb.invalid_pages() + rb.invalid_pages(),
                        pb.valid_pages() + rb.valid_pages(),
                    )
                }
                None => (0, 0),
            };
            let free_depth = self.free.len() as u32;
            let candidates = self.victims.candidates();
            self.device.sink_mut().event(Event::GcPick {
                key: vba,
                invalid,
                valid,
                free_depth,
                candidates,
            });
            self.device.sink_mut().event(Event::Merge {
                vba,
                kind: MergeKind::Gc,
            });
        }
        self.merge(vba, None, MergeCause::GarbageCollection, erased)
    }

    /// Folds a VBA's newest data into a fresh primary block and erases the
    /// old primary (and replacement, if open). `fill` programs host data
    /// into an offset in place of its old copy — the overwrite that
    /// triggered a full merge — so the data is safely on flash *before* the
    /// old pair is destroyed.
    ///
    /// Crash ordering: copies (and the fill) land in the fresh block with
    /// generation `gen+1` first; the old pair is erased only afterwards. A
    /// power cut therefore leaves either the old pair intact (the partial
    /// successor is scrubbed at mount, resolved by generation) or the new
    /// primary complete — never a state that loses acknowledged data.
    fn merge(
        &mut self,
        vba: u32,
        fill: Option<(u32, u64)>,
        cause: MergeCause,
        erased: &mut Vec<u32>,
    ) -> Result<(), NftlError> {
        let span = self.span_begin(SpanKind::Merge);
        let result = self.merge_inner(vba, fill, cause, erased);
        self.span_end(span);
        result
    }

    fn merge_inner(
        &mut self,
        vba: u32,
        fill: Option<(u32, u64)>,
        cause: MergeCause,
        erased: &mut Vec<u32>,
    ) -> Result<(), NftlError> {
        let old_primary = self.primary[vba as usize];
        debug_assert_ne!(old_primary, NO_BLOCK, "merge requires a primary");
        let rs = self.repl.remove(&vba);
        let new_gen = self.gen[vba as usize].wrapping_add(1);
        let pages_per_block = self.device.geometry().pages_per_block();

        // Copy phase, restarted on another fresh block when an injected
        // program failure strikes mid-merge (the half-written block is
        // retired; the sources are still intact, so the copies repeat).
        let fresh = 'attempt: loop {
            let fresh = match self.pop_freshest_free() {
                Ok(fresh) => fresh,
                Err(e) => {
                    self.undo_merge(vba, rs);
                    return Err(e);
                }
            };
            for offset in 0..pages_per_block {
                let lba = self.lba_of(vba, offset);
                // `copied_from` is `None` for the host fill (not a copy).
                let (data, copied_from) = match fill {
                    Some((fill_offset, fill_data)) if fill_offset == offset => (fill_data, None),
                    _ => {
                        let src = match &rs {
                            Some(rs) if rs.latest[offset as usize] != 0 => {
                                Some(PageAddr::new(rs.block, rs.latest[offset as usize] - 1))
                            }
                            _ => {
                                let state = self.device.block(old_primary).page_state(offset);
                                state
                                    .is_valid()
                                    .then_some(PageAddr::new(old_primary, offset))
                            }
                        };
                        let Some(src) = src else { continue };
                        match self.device.read(src) {
                            Ok(content) => (content.data, Some(src.block)),
                            Err(e) => {
                                self.role[fresh as usize] = BlockRole::Retired;
                                self.undo_merge(vba, rs);
                                return Err(e.into());
                            }
                        }
                    }
                };
                match self.device.program(
                    PageAddr::new(fresh, offset),
                    data,
                    SpareArea::with_status(lba, primary_status(new_gen)),
                ) {
                    Ok(()) => {}
                    Err(nand::NandError::ProgramFailed { .. }) => {
                        self.retire_block(fresh, false);
                        continue 'attempt;
                    }
                    Err(e) => {
                        // Power cut (or a dead device): RAM state is about
                        // to be discarded; park the half-written block out
                        // of circulation so the audit stays coherent.
                        self.role[fresh as usize] = BlockRole::Retired;
                        self.undo_merge(vba, rs);
                        return Err(e.into());
                    }
                }
                if let Some(from_block) = copied_from {
                    match cause {
                        MergeCause::WearLeveling => self.counters.swl_live_copies += 1,
                        _ => self.counters.gc_live_copies += 1,
                    }
                    if S::ENABLED {
                        self.device.sink_mut().event(Event::LiveCopy {
                            from_block,
                            to_block: fresh,
                            cause: cause.telemetry_cause(),
                        });
                    }
                }
            }
            break fresh;
        };

        self.primary[vba as usize] = fresh;
        self.role[fresh as usize] = BlockRole::Primary(vba);
        self.gen[vba as usize] = new_gen;
        if let Err(e) = self.erase_and_free(old_primary, cause, erased) {
            // Power cut mid-erase: park the stragglers (RAM dies with us).
            self.role[old_primary as usize] = BlockRole::Retired;
            if let Some(rs) = rs {
                self.role[rs.block as usize] = BlockRole::Retired;
            }
            self.refresh_victim(vba);
            return Err(e);
        }
        if let Some(rs) = rs {
            if let Err(e) = self.erase_and_free(rs.block, cause, erased) {
                self.role[rs.block as usize] = BlockRole::Retired;
                self.refresh_victim(vba);
                return Err(e);
            }
        }
        // The replacement (if any) is gone: the VBA stops being a merge
        // candidate.
        self.refresh_victim(vba);
        Ok(())
    }

    /// Restores RAM state after a merge failed before committing: the
    /// replacement (if any) goes back into the map and the victim index is
    /// re-synced. The on-flash sources were not touched, so the layer keeps
    /// serving correct data.
    fn undo_merge(&mut self, vba: u32, rs: Option<ReplState>) {
        if let Some(rs) = rs {
            self.repl.insert(vba, rs);
        }
        self.refresh_victim(vba);
    }

    /// Relocates a primary block that has no replacement (SWL eviction of
    /// fully cold data): offset-aligned copy into a fresh block.
    fn relocate_primary(&mut self, vba: u32, erased: &mut Vec<u32>) -> Result<(), NftlError> {
        debug_assert!(!self.repl.contains_key(&vba));
        self.merge(vba, None, MergeCause::WearLeveling, erased)
    }

    fn erase_and_free(
        &mut self,
        block: u32,
        cause: MergeCause,
        erased: &mut Vec<u32>,
    ) -> Result<(), NftlError> {
        let pre_wear = self.device.block(block).erase_count();
        match self.device.erase_as(block, cause.telemetry_cause()) {
            Ok(()) => {}
            Err(nand::NandError::BlockWornOut { .. } | nand::NandError::EraseFailed { .. }) => {
                // Bad-block management: withdraw the block, stale contents
                // and all. Covers wear-out under `FailWornBlocks` and erase
                // faults injected by the device's `FaultPlan`.
                let in_ladder = self.role[block as usize] == BlockRole::Free;
                self.retire_block(block, in_ladder);
                return Ok(());
            }
            Err(other) => return Err(other.into()),
        }
        match cause {
            MergeCause::WearLeveling => self.counters.swl_erases += 1,
            _ => self.counters.gc_erases += 1,
        }
        let wear = self.device.block(block).erase_count();
        if self.role[block as usize] != BlockRole::Free {
            self.role[block as usize] = BlockRole::Free;
            self.free.push(block, wear);
        } else {
            // SWL erased a block while it sat in the free pool; move it up
            // the wear ladder in place.
            self.free.reposition(block, pre_wear, wear);
        }
        erased.push(block);
        Ok(())
    }

    /// Withdraws a block from circulation and programs the on-flash
    /// bad-block marker so a later mount rediscovers the retirement instead
    /// of resurrecting stale contents. `in_free_ladder` says whether the
    /// block currently sits in the free ladder (merge abandons hand over
    /// freshly popped blocks that do not).
    fn retire_block(&mut self, block: u32, in_free_ladder: bool) {
        if in_free_ladder {
            let wear = self.device.block(block).erase_count();
            let removed = self.free.remove(block, wear);
            debug_assert!(removed, "free block {block} missing from the ladder");
        }
        self.role[block as usize] = BlockRole::Retired;
        // A spare-area status program: free and uncuttable; it can only
        // fail once power is already cut, when the RAM state is about to be
        // discarded anyway.
        let _ = self.device.mark_bad(block);
        self.counters.retired_blocks += 1;
        if S::ENABLED {
            self.device.sink_mut().event(Event::Retire { block });
        }
    }

    /// Erases a block whose contents did not survive a crash — torn pages
    /// only, or the half-written successor of an interrupted merge — and
    /// returns it to the free pool. A block that refuses to erase is
    /// retired. Mount-time only.
    fn scrub_block(&mut self, block: u32) -> Result<(), NftlError> {
        match self.device.erase_as(block, Cause::Gc) {
            Ok(()) => {
                self.counters.gc_erases += 1;
                let wear = self.device.block(block).erase_count();
                self.role[block as usize] = BlockRole::Free;
                self.free.push(block, wear);
                Ok(())
            }
            Err(nand::NandError::BlockWornOut { .. } | nand::NandError::EraseFailed { .. }) => {
                self.retire_block(block, false);
                Ok(())
            }
            Err(other) => Err(other.into()),
        }
    }

    /// Pops the free block with the lowest erase count (dynamic wear
    /// leveling). O(1) amortized via the wear bucket ladder.
    fn pop_freshest_free(&mut self) -> Result<u32, NftlError> {
        let Some(block) = self.free.pop_min() else {
            return Err(NftlError::FreeExhausted);
        };
        self.role[block as usize] = BlockRole::Free; // refined by the caller
        Ok(block)
    }

    /// Debug audit: roles, free list and replacement maps are consistent
    /// with device page states.
    #[cfg(test)]
    fn check_consistency(&self) {
        let blocks = self.device.geometry().blocks();
        let mut free_set = std::collections::HashSet::new();
        for b in self.free.iter() {
            assert!(free_set.insert(b), "block {b} twice in free list");
            assert_eq!(self.role[b as usize], BlockRole::Free);
        }
        for b in 0..blocks {
            match self.role[b as usize] {
                BlockRole::Free => assert!(
                    free_set.contains(&b),
                    "free-role block {b} missing from free list"
                ),
                BlockRole::Primary(v) => {
                    assert_eq!(self.primary[v as usize], b, "primary map mismatch")
                }
                BlockRole::Replacement(v) => {
                    assert_eq!(self.repl[&v].block, b, "replacement map mismatch")
                }
                BlockRole::Retired => {
                    assert!(!free_set.contains(&b), "retired block {b} in free list")
                }
            }
        }
        for (&vba, rs) in &self.repl {
            assert_eq!(self.role[rs.block as usize], BlockRole::Replacement(vba));
            for (offset, &latest) in rs.latest.iter().enumerate() {
                if latest != 0 {
                    assert!(
                        self.device
                            .block(rs.block)
                            .page_state(latest - 1)
                            .is_valid(),
                        "latest pointer of vba {vba} offset {offset} is stale"
                    );
                }
            }
        }
    }
}

impl<S: Sink> SwlCleaner for Inner<S> {
    type Error = NftlError;

    fn emit_telemetry(&mut self, event: Event) {
        if S::ENABLED {
            self.device.sink_mut().event(event);
        }
    }

    /// Recycles the requested block set for the SW Leveler: primaries are
    /// merged (or relocated when no replacement is open), replacements are
    /// merged with their primary, free blocks are erased in place.
    fn erase_block_set(
        &mut self,
        first_block: u32,
        count: u32,
        erased: &mut Vec<u32>,
    ) -> Result<(), NftlError> {
        self.in_swl = true;
        let result = (|| {
            let blocks = self.device.geometry().blocks();
            for b in first_block..(first_block + count).min(blocks) {
                if matches!(
                    self.role[b as usize],
                    BlockRole::Primary(_) | BlockRole::Replacement(_)
                ) && self.free.is_empty()
                {
                    self.gc_merge_one(erased)?;
                }
                match self.role[b as usize] {
                    BlockRole::Retired => {}
                    BlockRole::Free => {
                        self.erase_and_free(b, MergeCause::WearLeveling, erased)?;
                    }
                    BlockRole::Primary(vba) => {
                        self.counters.swl_merges += 1;
                        if S::ENABLED {
                            self.device.sink_mut().event(Event::Merge {
                                vba,
                                kind: MergeKind::Swl,
                            });
                        }
                        if self.repl.contains_key(&vba) {
                            self.merge(vba, None, MergeCause::WearLeveling, erased)?;
                        } else {
                            self.relocate_primary(vba, erased)?;
                        }
                    }
                    BlockRole::Replacement(vba) => {
                        self.counters.swl_merges += 1;
                        if S::ENABLED {
                            self.device.sink_mut().event(Event::Merge {
                                vba,
                                kind: MergeKind::Swl,
                            });
                        }
                        self.merge(vba, None, MergeCause::WearLeveling, erased)?;
                    }
                }
            }
            Ok(())
        })();
        self.in_swl = false;
        result
    }
}

/// A block-mapping NFTL with an optional static wear leveler.
///
/// See the [crate-level documentation](crate) for the design and an example.
#[derive(Debug)]
pub struct BlockMappedNftl<S: Sink = NullSink> {
    inner: Inner<S>,
    swl: Option<SwLeveler>,
    erased_buf: Vec<u32>,
}

impl<S: Sink> BlockMappedNftl<S> {
    /// Builds an NFTL over `device` without static wear leveling.
    ///
    /// # Errors
    ///
    /// Reserved for configuration validation.
    pub fn new(device: NandDevice<S>, config: NftlConfig) -> Result<Self, NftlError> {
        Ok(Self {
            inner: Inner::new(device, config)?,
            swl: None,
            erased_buf: Vec::new(),
        })
    }

    /// Builds an NFTL with the SW Leveler attached.
    ///
    /// # Errors
    ///
    /// Returns [`NftlError::Swl`] when the leveler configuration is invalid.
    pub fn with_swl(
        device: NandDevice<S>,
        config: NftlConfig,
        swl_config: SwlConfig,
    ) -> Result<Self, NftlError> {
        let blocks = device.geometry().blocks();
        let swl = SwLeveler::new(blocks, swl_config)?;
        let mut nftl = Self::new(device, config)?;
        nftl.swl = Some(swl);
        Ok(nftl)
    }

    /// Re-attaches a previously used chip, rebuilding the translation
    /// tables from the spare areas on flash — the firmware mount path.
    /// Pair with [`BlockMappedNftl::into_device`] to simulate power cycles.
    ///
    /// # Errors
    ///
    /// Returns [`NftlError::MountCorrupt`] when the on-flash state is not a
    /// consistent NFTL layout (torn roles, duplicate primaries, foreign
    /// data).
    pub fn mount(device: NandDevice<S>, config: NftlConfig) -> Result<Self, NftlError> {
        Ok(Self {
            inner: Inner::mount(device, config)?,
            swl: None,
            erased_buf: Vec::new(),
        })
    }

    /// Shuts the layer down, returning the chip (with all its data and
    /// wear) for a later [`BlockMappedNftl::mount`].
    pub fn into_device(self) -> NandDevice<S> {
        self.inner.device
    }

    /// Attaches (or replaces) a pre-built SW Leveler.
    pub fn attach_swl(&mut self, swl: SwLeveler) {
        self.swl = Some(swl);
    }

    /// Writes `data` to logical page `lba`, then gives the SW Leveler a
    /// chance to run.
    ///
    /// # Errors
    ///
    /// Returns [`NftlError::LbaOutOfRange`] for bad addresses and surfaces
    /// reclamation failures when the space is over-committed.
    pub fn write(&mut self, lba: u64, data: u64) -> Result<(), NftlError> {
        // Root span brackets the whole operation — merges, GC, and any SWL
        // pass the write triggers — mirroring the simulator's latency
        // bracket exactly.
        let span = self.inner.span_begin(SpanKind::HostWrite);
        let mut erased = std::mem::take(&mut self.erased_buf);
        erased.clear();
        let result = self.inner.host_write(lba, data, &mut erased);
        let follow_up = self.notify_swl(&erased);
        self.erased_buf = erased;
        self.inner.span_end(span);
        result.and(follow_up)
    }

    /// Reads logical page `lba`; `None` when it has never been written.
    ///
    /// # Errors
    ///
    /// Returns [`NftlError::LbaOutOfRange`] for bad addresses.
    pub fn read(&mut self, lba: u64) -> Result<Option<u64>, NftlError> {
        let span = self.inner.span_begin(SpanKind::HostRead);
        let result = self.inner.host_read(lba);
        self.inner.span_end(span);
        result
    }

    fn notify_swl(&mut self, erased: &[u32]) -> Result<(), NftlError> {
        let Some(swl) = self.swl.as_mut() else {
            return Ok(());
        };
        for &b in erased {
            swl.note_erase(b);
        }
        // In deferred mode an external coordinator (e.g. the multi-channel
        // striped layer) watches a global unevenness and drives
        // `run_swl_step`; the layer itself only feeds SWL-BETUpdate.
        if !swl.config().deferred && swl.needs_leveling() {
            let span = self.inner.span_begin(SpanKind::Swl);
            let result = swl.level(&mut self.inner);
            self.inner.span_end(span);
            result?;
        }
        Ok(())
    }

    /// Forces recycling of a block range, as an external wear leveling
    /// policy would: primaries/replacements are merged into fresh blocks,
    /// free blocks are erased in place, and any attached SW Leveler is
    /// notified. Returns the number of blocks erased.
    ///
    /// # Errors
    ///
    /// Propagates reclamation failures.
    pub fn force_recycle(&mut self, first_block: u32, count: u32) -> Result<u64, NftlError> {
        // Externally driven collection: a root `gc` span rather than a host
        // kind, since no host op is paying for it.
        let span = self.inner.span_begin(SpanKind::Gc);
        let mut erased = std::mem::take(&mut self.erased_buf);
        erased.clear();
        let result = self.inner.erase_block_set(first_block, count, &mut erased);
        let erase_count = erased.len() as u64;
        let follow_up = self.notify_swl(&erased);
        self.erased_buf = erased;
        self.inner.span_end(span);
        result.and(follow_up)?;
        Ok(erase_count)
    }

    /// Manually invokes SWL-Procedure (e.g. from a timer).
    ///
    /// # Errors
    ///
    /// Propagates reclamation failures.
    pub fn run_swl(&mut self) -> Result<LevelOutcome, NftlError> {
        match self.swl.as_mut() {
            Some(swl) => {
                let span = self.inner.span_begin(SpanKind::Swl);
                let result = swl.level(&mut self.inner);
                self.inner.span_end(span);
                result
            }
            None => Ok(LevelOutcome::Idle),
        }
    }

    /// Runs exactly one SWL-Procedure step, ignoring the local threshold —
    /// the entry point for an external multi-shard coordinator (see
    /// [`SwLeveler::level_step`]).
    ///
    /// # Errors
    ///
    /// Propagates reclamation failures.
    pub fn run_swl_step(&mut self) -> Result<LevelOutcome, NftlError> {
        match self.swl.as_mut() {
            Some(swl) => {
                let span = self.inner.span_begin(SpanKind::Swl);
                let result = swl.level_step(&mut self.inner);
                self.inner.span_end(span);
                result
            }
            None => Ok(LevelOutcome::Idle),
        }
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.inner.logical_pages
    }

    /// The underlying device.
    pub fn device(&self) -> &NandDevice<S> {
        &self.inner.device
    }

    /// Attribution counters.
    pub fn counters(&self) -> NftlCounters {
        self.inner.counters
    }

    /// The attached SW Leveler, if any.
    pub fn swl(&self) -> Option<&SwLeveler> {
        self.swl.as_ref()
    }

    /// The configuration in effect.
    pub fn config(&self) -> NftlConfig {
        self.inner.config
    }

    /// Number of currently open replacement blocks.
    pub fn open_replacements(&self) -> usize {
        self.inner.repl.len()
    }

    #[cfg(test)]
    pub(crate) fn check_consistency(&self) {
        self.inner.check_consistency();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand::{CellKind, Geometry};

    fn device(blocks: u32, pages: u32) -> NandDevice {
        NandDevice::new(
            Geometry::new(blocks, pages, 2048),
            CellKind::Mlc2.spec().with_endurance(1_000_000),
        )
    }

    fn nftl(blocks: u32, pages: u32) -> BlockMappedNftl {
        BlockMappedNftl::new(device(blocks, pages), NftlConfig::default()).unwrap()
    }

    #[test]
    fn read_your_writes_in_primary() {
        let mut n = nftl(8, 4);
        n.write(0, 10).unwrap();
        n.write(1, 11).unwrap();
        n.write(5, 15).unwrap(); // second virtual block
        assert_eq!(n.read(0).unwrap(), Some(10));
        assert_eq!(n.read(1).unwrap(), Some(11));
        assert_eq!(n.read(5).unwrap(), Some(15));
        assert_eq!(n.read(2).unwrap(), None);
        n.check_consistency();
    }

    #[test]
    fn overwrites_go_to_replacement() {
        let mut n = nftl(8, 4);
        n.write(0, 1).unwrap();
        n.write(0, 2).unwrap();
        n.write(0, 3).unwrap();
        assert_eq!(n.read(0).unwrap(), Some(3));
        assert_eq!(n.open_replacements(), 1);
        n.check_consistency();
    }

    #[test]
    fn paper_figure_2b_scenario() {
        // Figure 2(b): LBAs A=8, B=10, C=14 written 3, 7 and 1 times into a
        // primary + replacement pair (8 pages per block → all in VBA 1).
        let mut n = nftl(8, 8);
        for i in 0..3u64 {
            n.write(8, 100 + i).unwrap();
        }
        for i in 0..7u64 {
            n.write(10, 200 + i).unwrap();
        }
        n.write(14, 300).unwrap();
        assert_eq!(n.read(8).unwrap(), Some(102));
        assert_eq!(n.read(10).unwrap(), Some(206));
        assert_eq!(n.read(14).unwrap(), Some(300));
        n.check_consistency();
    }

    #[test]
    fn full_replacement_triggers_merge() {
        let mut n = nftl(8, 4);
        // 4-page replacement fills after 4 overwrites of offsets in VBA 0.
        n.write(0, 0).unwrap();
        for i in 1..=10u64 {
            n.write(0, i).unwrap();
        }
        assert_eq!(n.read(0).unwrap(), Some(10));
        assert!(n.counters().full_merges > 0, "{:?}", n.counters());
        n.check_consistency();
    }

    #[test]
    fn merge_preserves_sibling_offsets() {
        let mut n = nftl(8, 4);
        // Fill VBA 0 offsets 0..4 with distinct data.
        for off in 0..4u64 {
            n.write(off, 50 + off).unwrap();
        }
        // Hammer offset 1 until merges happen.
        for i in 0..20u64 {
            n.write(1, 1000 + i).unwrap();
        }
        assert_eq!(n.read(0).unwrap(), Some(50));
        assert_eq!(n.read(1).unwrap(), Some(1019));
        assert_eq!(n.read(2).unwrap(), Some(52));
        assert_eq!(n.read(3).unwrap(), Some(53));
        assert!(n.counters().full_merges >= 4);
        n.check_consistency();
    }

    #[test]
    fn lba_bounds_enforced() {
        let mut n = nftl(4, 4);
        let max = n.logical_pages();
        assert!(matches!(
            n.write(max, 0),
            Err(NftlError::LbaOutOfRange { .. })
        ));
        assert!(matches!(n.read(max), Err(NftlError::LbaOutOfRange { .. })));
    }

    #[test]
    fn reserved_blocks_shrink_logical_space() {
        let n = BlockMappedNftl::new(device(8, 4), NftlConfig::default().with_reserved_blocks(3))
            .unwrap();
        assert_eq!(n.logical_pages(), 5 * 4);
    }

    #[test]
    fn gc_merges_under_free_pressure() {
        // 8 blocks, 4 pages; write over several VBAs with overwrites so
        // replacements pile up and GC must merge to stay afloat.
        let mut n =
            BlockMappedNftl::new(device(8, 4), NftlConfig::default().with_reserved_blocks(4))
                .unwrap();
        for round in 0..30u64 {
            for lba in 0..n.logical_pages() {
                n.write(lba, round * 100 + lba).unwrap();
            }
        }
        for lba in 0..n.logical_pages() {
            assert_eq!(n.read(lba).unwrap(), Some(29 * 100 + lba));
        }
        assert!(n.counters().gc_merges + n.counters().full_merges > 0);
        n.check_consistency();
    }

    #[test]
    fn erase_attribution_covers_device() {
        let mut n = nftl(16, 4);
        for round in 0..40u64 {
            for lba in 0..12u64 {
                n.write(lba, round).unwrap();
            }
        }
        assert_eq!(
            n.counters().total_erases(),
            n.device().counters().erases,
            "every device erase must be attributed"
        );
    }

    #[test]
    fn swl_levels_cold_primaries() {
        let d = device(16, 4);
        let mut n =
            BlockMappedNftl::with_swl(d, NftlConfig::default(), SwlConfig::new(4, 0)).unwrap();
        // Cold data in VBAs 0..4 (write once).
        for lba in 0..16u64 {
            n.write(lba, 9000 + lba).unwrap();
        }
        // Hot updates on one LBA of VBA 5.
        for i in 0..400u64 {
            n.write(20, i).unwrap();
        }
        assert!(n.counters().swl_erases > 0, "{:?}", n.counters());
        for lba in 0..16u64 {
            assert_eq!(n.read(lba).unwrap(), Some(9000 + lba), "cold lba {lba}");
        }
        assert_eq!(n.read(20).unwrap(), Some(399));
        n.check_consistency();
    }

    #[test]
    fn swl_flattens_wear_distribution() {
        let run = |swl: bool| -> f64 {
            let d = device(16, 8);
            let mut n = if swl {
                BlockMappedNftl::with_swl(d, NftlConfig::default(), SwlConfig::new(8, 0)).unwrap()
            } else {
                BlockMappedNftl::new(d, NftlConfig::default()).unwrap()
            };
            for lba in 0..64u64 {
                n.write(lba, lba).unwrap();
            }
            for i in 0..4000u64 {
                n.write(64 + (i % 2), i).unwrap();
            }
            n.device().erase_stats().std_dev
        };
        let plain = run(false);
        let leveled = run(true);
        assert!(
            leveled < plain,
            "SWL must flatten NFTL wear: {leveled:.2} vs {plain:.2}"
        );
    }

    #[test]
    fn run_swl_without_leveler_is_idle() {
        let mut n = nftl(4, 4);
        assert_eq!(n.run_swl().unwrap(), LevelOutcome::Idle);
    }

    #[test]
    fn deterministic_behaviour() {
        let run = || {
            let mut n = nftl(16, 4);
            for round in 0..25u64 {
                for lba in 0..20u64 {
                    n.write(lba, round * 31 + lba).unwrap();
                }
            }
            (n.device().erase_counts(), n.counters())
        };
        let (a_counts, a_c) = run();
        let (b_counts, b_c) = run();
        assert_eq!(a_counts, b_counts);
        assert_eq!(a_c, b_c);
    }

    #[test]
    fn event_stream_reconstructs_counters_exactly() {
        use flash_telemetry::{MetricsAggregator, VecSink};

        let d = device(16, 4).with_sink(VecSink::default());
        let mut n =
            BlockMappedNftl::with_swl(d, NftlConfig::default(), SwlConfig::new(4, 0)).unwrap();
        for lba in 0..16u64 {
            n.write(lba, 9000 + lba).unwrap();
        }
        for i in 0..400u64 {
            n.write(20, i).unwrap();
            if i % 7 == 0 {
                n.read(i % 16).unwrap();
            }
        }
        let counters = n.counters();
        assert!(counters.swl_erases > 0, "scenario must exercise SWL");
        let mut agg = MetricsAggregator::new();
        for event in n.into_device().into_sink().events {
            agg.event(event);
        }
        assert_eq!(agg.counters(), counters);
        assert!(agg.swl_invokes() > 0);
    }

    #[test]
    fn spans_balance_and_attribute_all_device_time() {
        use flash_telemetry::{SpanCause, SpanReplayer, VecSink};

        let d = device(16, 4).with_sink(VecSink::default());
        let mut n =
            BlockMappedNftl::with_swl(d, NftlConfig::default(), SwlConfig::new(4, 0)).unwrap();
        let mut live_totals = Vec::new();
        let mut do_write = |n: &mut BlockMappedNftl<VecSink>, lba, data| {
            let before = n.device().busy_ns();
            n.write(lba, data).unwrap();
            live_totals.push(n.device().busy_ns() - before);
        };
        for lba in 0..16u64 {
            do_write(&mut n, lba, 9000 + lba);
        }
        for i in 0..400u64 {
            do_write(&mut n, 20, i);
        }
        assert!(n.counters().swl_erases > 0, "scenario must exercise SWL");

        let mut replay = SpanReplayer::new();
        let mut writes = Vec::new();
        let mut merge_time = 0u64;
        let mut swl_spans = 0u64;
        for event in &n.into_device().into_sink().events {
            if let flash_telemetry::Event::SpanBegin {
                kind: flash_telemetry::SpanKind::Swl,
                ..
            } = event
            {
                swl_spans += 1;
            }
            if let Some(op) = replay.observe(event) {
                if op.kind == flash_telemetry::SpanKind::HostWrite {
                    merge_time += op.ns(SpanCause::Merge);
                    writes.push(op);
                }
            }
        }
        assert!(replay.check().is_clean(), "{:?}", replay.check());
        assert_eq!(writes.len(), live_totals.len());
        for (op, &live) in writes.iter().zip(&live_totals) {
            assert_eq!(op.total_ns(), live);
            assert_eq!(op.cause_ns.iter().sum::<u64>(), op.total_ns());
        }
        // Merge cascades dominate NFTL overwrites. SWL passes open spans,
        // but their device time is all inside nested merges (innermost-span
        // attribution), so the `swl` *self* bucket may legitimately be 0.
        assert!(merge_time > 0, "merges must show up in the attribution");
        assert!(swl_spans > 0, "SWL passes must open spans");
    }

    #[test]
    fn instrumented_run_matches_null_sink_run() {
        fn work<S: Sink>(mut n: BlockMappedNftl<S>) -> (NftlCounters, Vec<u64>) {
            for lba in 0..16u64 {
                n.write(lba, 9000 + lba).unwrap();
            }
            for i in 0..400u64 {
                n.write(20, i).unwrap();
            }
            (n.counters(), n.device().erase_counts())
        }
        let plain = work(
            BlockMappedNftl::with_swl(device(16, 4), NftlConfig::default(), SwlConfig::new(4, 0))
                .unwrap(),
        );
        let probed = work(
            BlockMappedNftl::with_swl(
                device(16, 4).with_sink(flash_telemetry::CountSink::default()),
                NftlConfig::default(),
                SwlConfig::new(4, 0),
            )
            .unwrap(),
        );
        assert_eq!(plain, probed, "telemetry must not perturb behaviour");
    }

    #[test]
    fn program_failure_remaps_and_preserves_data() {
        use nand::FaultPlan;

        let d = device(24, 4).with_fault_plan(FaultPlan::new(11).with_program_fail_prob(0.02));
        let mut n = BlockMappedNftl::new(d, NftlConfig::default()).unwrap();
        let mut shadow = std::collections::HashMap::new();
        // Every program failure costs a whole block here (the grown-bad
        // block is retired at its next merge), so the pool can legitimately
        // run dry; stop cleanly when it does.
        'work: for round in 0..40u64 {
            for lba in 0..24u64 {
                let data = round * 1000 + lba;
                match n.write(lba, data) {
                    Ok(()) => {
                        shadow.insert(lba, data);
                    }
                    Err(NftlError::NoReclaimableSpace | NftlError::FreeExhausted) => break 'work,
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
        }
        let grown_bad = (0..24).filter(|&b| n.device().is_bad_block(b)).count();
        assert!(grown_bad > 0, "0.05 fail rate over ~1000 programs must bite");
        for (lba, data) in shadow {
            assert_eq!(n.read(lba).unwrap(), Some(data), "lba {lba}");
        }
        n.check_consistency();
    }

    #[test]
    fn erase_failure_retires_block_and_layer_survives() {
        use nand::FaultPlan;

        let d = device(24, 4).with_fault_plan(FaultPlan::new(5).with_endurance_range(4, 8));
        let mut n = BlockMappedNftl::new(d, NftlConfig::default()).unwrap();
        let mut shadow = std::collections::HashMap::new();
        'work: for round in 0..200u64 {
            for lba in 0..24u64 {
                let data = round * 1000 + lba;
                match n.write(lba, data) {
                    Ok(()) => {
                        shadow.insert(lba, data);
                    }
                    Err(NftlError::NoReclaimableSpace | NftlError::FreeExhausted) => break 'work,
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
        }
        assert!(
            n.counters().retired_blocks > 0,
            "endurance range must retire blocks: {:?}",
            n.counters()
        );
        for (lba, data) in shadow {
            assert_eq!(n.read(lba).unwrap(), Some(data), "lba {lba}");
        }
        n.check_consistency();
    }

    #[test]
    fn retirement_survives_remount_via_bad_block_marker() {
        use nand::FaultPlan;

        let d = device(24, 4).with_fault_plan(FaultPlan::new(5).with_endurance_range(4, 8));
        let mut n = BlockMappedNftl::new(d, NftlConfig::default()).unwrap();
        let mut shadow = std::collections::HashMap::new();
        'work: for round in 0..200u64 {
            for lba in 0..24u64 {
                match n.write(lba, round * 1000 + lba) {
                    Ok(()) => {
                        shadow.insert(lba, round * 1000 + lba);
                    }
                    Err(NftlError::NoReclaimableSpace | NftlError::FreeExhausted) => break 'work,
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
        }
        assert!(n.counters().retired_blocks > 0);
        let retired: Vec<u32> = (0..24)
            .filter(|&b| n.device().block(b).spare(0).is_bad_block_marker())
            .collect();
        assert!(!retired.is_empty(), "retired blocks must carry the marker");

        let mut n = BlockMappedNftl::mount(n.into_device(), NftlConfig::default()).unwrap();
        for (lba, data) in shadow {
            assert_eq!(n.read(lba).unwrap(), Some(data), "lba {lba} after remount");
        }
        n.check_consistency();
    }

    #[test]
    fn fault_free_plan_is_bit_identical() {
        use nand::FaultPlan;

        fn work(mut n: BlockMappedNftl) -> (NftlCounters, Vec<u64>) {
            for lba in 0..16u64 {
                n.write(lba, 9000 + lba).unwrap();
            }
            for i in 0..400u64 {
                n.write(20, i).unwrap();
            }
            (n.counters(), n.device().erase_counts())
        }
        let plain = work(
            BlockMappedNftl::with_swl(device(16, 4), NftlConfig::default(), SwlConfig::new(4, 0))
                .unwrap(),
        );
        let disarmed = work(
            BlockMappedNftl::with_swl(
                device(16, 4).with_fault_plan(FaultPlan::new(42)),
                NftlConfig::default(),
                SwlConfig::new(4, 0),
            )
            .unwrap(),
        );
        assert_eq!(plain, disarmed, "a disarmed FaultPlan must change nothing");
    }

    #[test]
    fn power_cut_and_remount_preserve_acked_writes() {
        use nand::FaultPlan;

        // Mini-sweep over early cut points (the exhaustive sweep lives in
        // the workspace-level crash-consistency harness); overwrite-heavy so
        // cuts land inside merges too.
        for cut_at in 0..160u64 {
            for torn in [false, true] {
                let plan = FaultPlan::new(1).with_power_cut(cut_at, torn);
                let d = device(8, 4).with_fault_plan(plan);
                let mut n = BlockMappedNftl::new(d, NftlConfig::default()).unwrap();
                let mut acked = std::collections::HashMap::new();
                let mut in_flight = None;
                let mut cut = false;
                'work: for round in 0..12u64 {
                    for lba in 0..8u64 {
                        let data = round * 100 + lba;
                        in_flight = Some((lba, data));
                        match n.write(lba, data) {
                            Ok(()) => {
                                acked.insert(lba, data);
                            }
                            Err(NftlError::Device(nand::NandError::PowerCut)) => {
                                cut = true;
                                break 'work;
                            }
                            Err(other) => panic!("unexpected error {other}"),
                        }
                    }
                }
                if !cut {
                    continue; // cut point beyond this workload
                }
                let mut dev = n.into_device();
                dev.power_cycle();
                let mut n = BlockMappedNftl::mount(dev, NftlConfig::default())
                    .unwrap_or_else(|e| panic!("mount after cut {cut_at} torn {torn}: {e}"));
                for (&lba, &want) in &acked {
                    let got = n.read(lba).unwrap();
                    let newer = in_flight == Some((lba, got.unwrap_or(u64::MAX)));
                    assert!(
                        got == Some(want) || newer,
                        "cut {cut_at} torn {torn}: lba {lba} read {got:?}, acked {want}"
                    );
                }
                // The layer keeps working after recovery.
                n.write(0, 777_777).unwrap();
                assert_eq!(n.read(0).unwrap(), Some(777_777));
                n.check_consistency();
            }
        }
    }

    #[test]
    fn over_committed_space_fails_cleanly() {
        // 4 blocks × 4 pages: using all 4 VBAs with overwrites needs more
        // blocks than exist.
        let mut n = nftl(4, 4);
        let mut hit_error = false;
        'outer: for round in 0..4u64 {
            for lba in 0..16u64 {
                match n.write(lba, round) {
                    Ok(()) => {}
                    Err(NftlError::NoReclaimableSpace | NftlError::FreeExhausted) => {
                        hit_error = true;
                        break 'outer;
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
            }
        }
        assert!(hit_error, "over-committed nftl must fail cleanly");
    }
}
