//! # `nftl` — a block-mapping NAND flash translation layer
//!
//! The coarse-grained baseline of the DAC 2007 static wear leveling study,
//! after the M-Systems NFTL design: a logical address splits into a *virtual
//! block address* (VBA) and a *block offset*; each VBA maps to a **primary**
//! physical block, written in place at the offset, plus (once offsets start
//! being overwritten) a **replacement** block that absorbs updates
//! sequentially. A full replacement block triggers a *merge*: the newest
//! copy of every offset is gathered into a fresh primary and the two old
//! blocks are erased.
//!
//! As in the paper's experiments:
//!
//! - garbage collection (merging the pair with the most invalid pages,
//!   found by cyclic scan) runs when free blocks drop under 0.2 % of
//!   capacity;
//! - the allocator takes the lowest-erase-count free block (dynamic wear
//!   leveling);
//! - the [`SwLeveler`](swl_core::SwLeveler) plugs in through
//!   [`swl_core::SwlCleaner`] to force cold blocks through recycling.
//!
//! ## Example
//!
//! ```
//! use nand::{CellKind, Geometry, NandDevice};
//! use nftl::{BlockMappedNftl, NftlConfig};
//!
//! # fn main() -> Result<(), nftl::NftlError> {
//! let device = NandDevice::new(Geometry::new(32, 8, 2048), CellKind::Mlc2.spec());
//! let mut nftl = BlockMappedNftl::new(device, NftlConfig::default())?;
//!
//! nftl.write(9, 0x11)?;
//! nftl.write(9, 0x22)?; // overwrite goes to a replacement block
//! assert_eq!(nftl.read(9)?, Some(0x22));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod counters;
mod error;
mod translation;

pub use config::NftlConfig;
pub use counters::NftlCounters;
pub use error::NftlError;
pub use translation::BlockMappedNftl;
