//! Attribution counters for overhead accounting.
//!
//! The counter definition is shared with `ftl` and `flash-sim`: it lives in
//! `flash-telemetry` ([`flash_telemetry::FlashCounters`]) so the metrics
//! aggregator can reconstruct the same totals from a replayed event log.
//! Page-mapping-only fields (`trims`) stay zero for this layer.

/// What the NFTL did, split by cause — inputs to the paper's Figures 6/7.
pub use flash_telemetry::FlashCounters as NftlCounters;
