//! Attribution counters for overhead accounting.

/// What the NFTL did, split by cause — inputs to the paper's Figures 6/7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NftlCounters {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Host page reads served.
    pub host_reads: u64,
    /// Merges forced by a full replacement block.
    pub full_merges: u64,
    /// Merges run by the garbage collector for free space.
    pub gc_merges: u64,
    /// Merges (or primary relocations) run on behalf of the SW Leveler.
    pub swl_merges: u64,
    /// Block erases by regular operation (full merges + GC merges).
    pub gc_erases: u64,
    /// Block erases on behalf of the SW Leveler.
    pub swl_erases: u64,
    /// Live pages copied by regular merges.
    pub gc_live_copies: u64,
    /// Live pages copied on behalf of the SW Leveler.
    pub swl_live_copies: u64,
    /// Blocks retired after exceeding their endurance (bad-block
    /// management under [`nand::WearPolicy::FailWornBlocks`]).
    pub retired_blocks: u64,
}

impl NftlCounters {
    /// All block erases, regardless of cause.
    pub fn total_erases(&self) -> u64 {
        self.gc_erases + self.swl_erases
    }

    /// All live-page copies, regardless of cause.
    pub fn total_live_copies(&self) -> u64 {
        self.gc_live_copies + self.swl_live_copies
    }

    /// Average live pages copied per regular erase — the paper's `L`.
    pub fn avg_live_copies_per_gc_erase(&self) -> f64 {
        if self.gc_erases == 0 {
            0.0
        } else {
            self.gc_live_copies as f64 / self.gc_erases as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_causes() {
        let c = NftlCounters {
            gc_erases: 4,
            swl_erases: 2,
            gc_live_copies: 8,
            swl_live_copies: 1,
            ..NftlCounters::default()
        };
        assert_eq!(c.total_erases(), 6);
        assert_eq!(c.total_live_copies(), 9);
        assert_eq!(c.avg_live_copies_per_gc_erase(), 2.0);
    }

    #[test]
    fn zero_denominator_handled() {
        assert_eq!(NftlCounters::default().avg_live_copies_per_gc_erase(), 0.0);
    }
}
