//! NFTL configuration.

/// Tunables of the block-mapping NFTL.
///
/// # Example
///
/// ```
/// use nftl::NftlConfig;
///
/// let config = NftlConfig::default().with_reserved_blocks(8);
/// assert_eq!(config.reserved_blocks, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NftlConfig {
    /// Physical blocks withheld from the virtual-block space (room for
    /// replacement blocks). The paper exports the full chip (0), viable
    /// because its workload touches only part of the space.
    pub reserved_blocks: u32,
    /// Garbage collection (forced merging) triggers when free blocks fall
    /// below this fraction of all blocks (paper: 0.2 %).
    pub gc_free_fraction: f64,
    /// Hard floor of free blocks maintained regardless of the fraction.
    pub min_free_blocks: u32,
}

impl NftlConfig {
    /// The paper's configuration.
    pub fn new() -> Self {
        Self {
            reserved_blocks: 0,
            gc_free_fraction: 0.002,
            min_free_blocks: 2,
        }
    }

    /// Replaces the reserved-block count.
    pub fn with_reserved_blocks(mut self, blocks: u32) -> Self {
        self.reserved_blocks = blocks;
        self
    }

    /// Replaces the GC trigger fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    pub fn with_gc_free_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "gc fraction must be in [0, 1)"
        );
        self.gc_free_fraction = fraction;
        self
    }

    /// Free blocks the garbage collector must maintain on a chip of
    /// `blocks` blocks.
    pub fn free_target(&self, blocks: u32) -> u32 {
        let frac = (f64::from(blocks) * self.gc_free_fraction).ceil() as u32;
        frac.max(self.min_free_blocks)
    }
}

impl Default for NftlConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = NftlConfig::default();
        assert_eq!(c.reserved_blocks, 0);
        assert_eq!(c.gc_free_fraction, 0.002);
        assert_eq!(c.free_target(4096), 9);
    }

    #[test]
    #[should_panic(expected = "gc fraction")]
    fn bad_fraction_rejected() {
        NftlConfig::default().with_gc_free_fraction(-0.1);
    }
}
