//! NFTL error type.

use std::error::Error;
use std::fmt;

use nand::NandError;
use swl_core::SwlError;

/// Errors surfaced by [`crate::BlockMappedNftl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NftlError {
    /// The logical address is beyond the exported capacity.
    LbaOutOfRange {
        /// Offending logical page address.
        lba: u64,
        /// Exported logical capacity in pages.
        logical_pages: u64,
    },
    /// No virtual block has a replacement to merge: nothing can be
    /// reclaimed. The virtual-block space is over-committed; reserve more
    /// blocks.
    NoReclaimableSpace,
    /// The free-block pool ran dry during a merge.
    FreeExhausted,
    /// Mounting found an inconsistent on-flash layout at this block.
    MountCorrupt {
        /// The block whose contents could not be interpreted.
        block: u32,
    },
    /// The underlying device rejected an operation.
    Device(NandError),
    /// The attached SW Leveler rejected its configuration.
    Swl(SwlError),
}

impl fmt::Display for NftlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NftlError::LbaOutOfRange { lba, logical_pages } => {
                write!(f, "lba {lba} out of range ({logical_pages} logical pages)")
            }
            NftlError::NoReclaimableSpace => {
                f.write_str("no reclaimable space: no replacement block to merge")
            }
            NftlError::FreeExhausted => f.write_str("free block pool exhausted during merge"),
            NftlError::MountCorrupt { block } => {
                write!(f, "mount found inconsistent state in block {block}")
            }
            NftlError::Device(e) => write!(f, "device error: {e}"),
            NftlError::Swl(e) => write!(f, "wear leveler error: {e}"),
        }
    }
}

impl Error for NftlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NftlError::Device(e) => Some(e),
            NftlError::Swl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NandError> for NftlError {
    fn from(e: NandError) -> Self {
        NftlError::Device(e)
    }
}

impl From<SwlError> for NftlError {
    fn from(e: SwlError) -> Self {
        NftlError::Swl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = NftlError::LbaOutOfRange {
            lba: 3,
            logical_pages: 2,
        };
        assert!(e.to_string().contains("lba 3"));
        assert!(e.source().is_none());
        let e = NftlError::Device(NandError::BlockOutOfRange {
            block: 0,
            blocks: 0,
        });
        assert!(e.source().is_some());
    }
}
