//! Merge-correctness and accounting invariants of the NFTL under
//! randomized workloads.

use proptest::prelude::*;

use nand::{CellKind, Geometry, NandDevice};
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::SwlConfig;

fn device(blocks: u32, pages: u32) -> NandDevice {
    NandDevice::new(
        Geometry::new(blocks, pages, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Merges (forced by replacement overflow, GC pressure, or the SW
    /// Leveler) never lose or reorder data: the newest write per LBA wins.
    #[test]
    fn newest_version_always_wins(
        writes in prop::collection::vec(0u64..96, 1..800),
        with_swl in any::<bool>(),
    ) {
        let mut nftl = if with_swl {
            BlockMappedNftl::with_swl(device(32, 8), NftlConfig::default(), SwlConfig::new(4, 0))
                .unwrap()
        } else {
            BlockMappedNftl::new(device(32, 8), NftlConfig::default()).unwrap()
        };
        let mut newest = std::collections::HashMap::new();
        for (version, lba) in writes.iter().enumerate() {
            nftl.write(*lba, version as u64).unwrap();
            newest.insert(*lba, version as u64);
        }
        for (lba, version) in newest {
            prop_assert_eq!(nftl.read(lba).unwrap(), Some(version));
        }
    }

    /// One replacement block at most per virtual block, and every open
    /// replacement belongs to a primary.
    #[test]
    fn replacement_accounting(writes in prop::collection::vec(0u64..128, 1..600)) {
        let mut nftl = BlockMappedNftl::new(device(48, 8), NftlConfig::default()).unwrap();
        for (i, lba) in writes.iter().enumerate() {
            nftl.write(*lba, i as u64).unwrap();
        }
        let virtual_blocks = (nftl.logical_pages() / 8) as usize;
        prop_assert!(nftl.open_replacements() <= virtual_blocks);
    }

    /// Erase and program attribution is exact against the device counters.
    #[test]
    fn counters_are_exact(
        writes in prop::collection::vec((0u64..120, any::<u64>()), 1..700),
        with_swl in any::<bool>(),
    ) {
        let mut nftl = if with_swl {
            BlockMappedNftl::with_swl(device(40, 8), NftlConfig::default(), SwlConfig::new(4, 1))
                .unwrap()
        } else {
            BlockMappedNftl::new(device(40, 8), NftlConfig::default()).unwrap()
        };
        for (lba, data) in &writes {
            nftl.write(*lba, *data).unwrap();
        }
        let c = nftl.counters();
        prop_assert_eq!(c.host_writes, writes.len() as u64);
        prop_assert_eq!(c.total_erases(), nftl.device().counters().erases);
        prop_assert_eq!(
            nftl.device().counters().programs,
            c.host_writes + c.total_live_copies()
        );
    }

    /// Sibling offsets in a virtual block survive any amount of hammering
    /// on one offset.
    #[test]
    fn siblings_survive_hammering(offset in 0u64..8, rounds in 50u64..400) {
        let mut nftl = BlockMappedNftl::new(device(16, 8), NftlConfig::default()).unwrap();
        for o in 0..8u64 {
            nftl.write(o, 1000 + o).unwrap();
        }
        for round in 0..rounds {
            nftl.write(offset, round).unwrap();
        }
        for o in 0..8u64 {
            let expected = if o == offset { rounds - 1 } else { 1000 + o };
            prop_assert_eq!(nftl.read(o).unwrap(), Some(expected));
        }
    }
}
